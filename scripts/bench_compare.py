#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` files and fail on performance regressions.

The bench harness (``sweb-repro bench``, see ``docs/PERFORMANCE.md``)
writes per-phase throughput into ``BENCH_kernel.json``.  This script
compares a baseline file against a new one, phase by phase, and exits
non-zero when any phase's ``per_s`` dropped by more than the threshold
(15 % by default) — the enforcement half of the kernel performance pass.

Usage::

    python scripts/bench_compare.py BASELINE.json NEW.json [--threshold 0.15]
    python scripts/bench_compare.py --check [FILE]

``--check`` validates that FILE (default: ``BENCH_kernel.json`` at the
repo root) exists and carries the expected schema — the test suite runs
it so a missing or malformed BENCH file fails fast.

Exit codes: 0 ok, 1 regression (or failed ``--check``), 2 bad input
(missing file, missing phase/metric, schema mismatch).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fractional slowdown tolerated before a phase counts as a regression.
DEFAULT_THRESHOLD = 0.15

#: Per-phase tolerance overrides, keyed by the base phase name (the part
#: before any ``@TIER`` tag).  The tournament phase mixes seven decision
#: kernels whose per-request costs differ (deque drains, hash walks),
#: so its rate is noisier than the single-kernel phases and gets a
#: looser budget.  An explicit ``--threshold`` beats these.
PHASE_THRESHOLDS: dict[str, float] = {
    "sched_tournament": 0.20,
    # every fuzz case is a different random deployment (some run faults,
    # some run 2x grid merges), so the cases/s rate mixes heterogeneous
    # work and deserves the looser budget too
    "fuzz_smoke": 0.20,
    # the geo phase interleaves three clusters, the placement daemon and
    # WAN transfers in one sim, so its requests/s mixes local hits with
    # multi-hop misses and is noisier than single-cluster phases
    "geo_cdn": 0.20,
}

#: Schema tag all BENCH files must carry (see ``repro.bench.SCHEMA``).
SCHEMA = "sweb-bench/1"

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_bench(path: Path) -> dict:
    """Load and minimally validate one BENCH file.

    Raises ``ValueError`` (bad content) or ``OSError`` (unreadable).
    """
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r}, "
                         f"expected {SCHEMA!r}")
    phases = doc.get("phases")
    if not isinstance(phases, dict) or not phases:
        raise ValueError(f"{path}: no phases recorded")
    for name, phase in phases.items():
        if "per_s" not in phase or "wall_s" not in phase:
            raise ValueError(f"{path}: phase {name!r} lacks per_s/wall_s")
    if "totals" not in doc or "events_per_s" not in doc["totals"]:
        raise ValueError(f"{path}: missing totals.events_per_s")
    return doc


def phase_tier(name: str) -> str | None:
    """The tier tag of a ``phase@TIER`` name, or None for base phases."""
    _, sep, tier = name.partition("@")
    return tier if sep else None


def phase_threshold(name: str, threshold: float | None = None) -> float:
    """The tolerance for one phase: explicit > per-phase table > default."""
    if threshold is not None:
        return threshold
    stem = name.partition("@")[0]
    return PHASE_THRESHOLDS.get(stem, DEFAULT_THRESHOLD)


def compare(base: dict, new: dict,
            threshold: float | None = None) -> tuple[list[str], bool]:
    """Compare two loaded BENCH docs.

    Returns ``(report_lines, ok)``; ``ok`` is False on any regression.
    ``threshold=None`` applies :func:`phase_threshold` per phase (the
    default budget plus the ``PHASE_THRESHOLDS`` overrides); an explicit
    float applies uniformly.  Raises ``KeyError`` if a baseline *base*
    phase is missing from ``new``.  Tier-tagged phases
    (``fluid_stream@L`` and friends) are optional: plain ``sweb-repro
    bench`` runs skip them, so a tier phase present only in the baseline
    is noted, not fatal — but when both files carry it, it regresses
    like any other phase, with the tier named in the verdict.
    """
    lines = [f"{'phase':<16} {'baseline/s':>14} {'new/s':>14} "
             f"{'speedup':>8}  verdict"]
    ok = True
    skipped_tiers: list[str] = []
    for name, base_phase in base["phases"].items():
        tier = phase_tier(name)
        if name not in new["phases"]:
            if tier is not None:
                skipped_tiers.append(name)
                continue
            raise KeyError(f"phase {name!r} present in baseline but "
                           f"missing from the new BENCH file")
        new_phase = new["phases"][name]
        base_rate = float(base_phase["per_s"])
        new_rate = float(new_phase["per_s"])
        ratio = new_rate / base_rate if base_rate > 0 else float("inf")
        budget = phase_threshold(name, threshold)
        if ratio < 1.0 - budget:
            verdict = f"REGRESSION (>{budget:.0%} slower)"
            if tier is not None:
                verdict += f" [tier {tier}]"
            ok = False
        elif ratio > 1.0 + budget:
            verdict = "improved"
        else:
            verdict = "ok"
        lines.append(f"{name:<16} {base_rate:>14,.0f} {new_rate:>14,.0f} "
                     f"{ratio:>7.2f}x  {verdict}")
    if skipped_tiers:
        lines.append(f"(tier phases not re-run, skipped: "
                     f"{', '.join(skipped_tiers)})")
    extra = [n for n in new["phases"] if n not in base["phases"]]
    if extra:
        lines.append(f"(new phases not in baseline: {', '.join(extra)})")
    return lines, ok


def check(path: Path) -> int:
    """--check mode: schema-validate one BENCH file; print the headline."""
    try:
        doc = load_bench(path)
    except OSError as exc:
        print(f"bench check FAILED: cannot read {path}: {exc}",
              file=sys.stderr)
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"bench check FAILED: {exc}", file=sys.stderr)
        return 2
    totals = doc["totals"]
    print(f"{path}: ok — {len(doc['phases'])} phases, "
          f"{totals['events_per_s']:,.0f} kernel events/s")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        description="compare BENCH_*.json files; fail on regressions")
    parser.add_argument("baseline", nargs="?", help="baseline BENCH file")
    parser.add_argument("new", nargs="?", help="new BENCH file to judge")
    parser.add_argument("--threshold", type=float, default=None,
                        help="uniform fractional slowdown that fails "
                             "(default: 0.15 with per-phase overrides)")
    parser.add_argument("--check", action="store_true",
                        help="validate a single BENCH file instead of "
                             "comparing two")
    args = parser.parse_args(argv)

    if args.check:
        target = Path(args.baseline) if args.baseline \
            else REPO_ROOT / "BENCH_kernel.json"
        return check(target)

    if not args.baseline or not args.new:
        parser.error("need BASELINE and NEW files (or --check)")
    try:
        base = load_bench(Path(args.baseline))
        new = load_bench(Path(args.new))
        lines, ok = compare(base, new, threshold=args.threshold)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"bench compare error: {exc}", file=sys.stderr)
        return 2
    print("\n".join(lines))
    if not ok:
        budget = (f"{args.threshold:.0%}" if args.threshold is not None
                  else "per-phase")
        print(f"performance regression beyond {budget} budget",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
