#!/usr/bin/env python
"""Docs consistency gate: index coverage, link resolution, CLI accuracy.

The handbook under ``docs/`` drifts in three characteristic ways, and
this script fails the build on each of them:

1. **Orphan pages** — a ``docs/*.md`` file that ``docs/README.md`` never
   links, so nobody finds it from the index.
2. **Dead relative links** — ``[text](FILE.md)`` targets (including the
   top-level ``README.md``'s links into ``docs/``) that do not resolve
   on disk.
3. **Stale CLI invocations** — ``sweb-repro ...`` command lines inside
   code blocks or inline code that name a subcommand or flag the real
   ``sweb-repro --help`` no longer has.  Flags are validated against the
   live ``repro.cli.build_parser()`` by introspection, so the docs can
   never silently disagree with the parser.  Flags that declare argparse
   ``choices`` (e.g. ``serve --scheduler``, whose values come from the
   live ``repro.sched`` policy registry) additionally have their
   documented *values* validated — a doc naming a scheduler that was
   never registered, or that got renamed, fails the gate.

Beyond ``docs/`` and the top-level ``README.md``, the generated
``EXPERIMENTS.md`` (when present) is scanned for links and CLI
invocations too, so its reproduce lines stay runnable.

Usage::

    python scripts/check_docs.py [--root DIR]

``--root`` (default: the repo this script lives in) points at an
alternate tree — the tests use throwaway fixture trees to exercise each
failure mode.  CLI validation always runs against *this* repo's parser.

Exit codes: 0 clean, 1 problems found, 2 bad invocation/missing docs dir.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: [text](target) — excludes image links' leading ! by matching it away.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: inline code spans (single backticks; fenced blocks handled separately)
_INLINE_CODE_RE = re.compile(r"`([^`\n]+)`")
_FENCE_RE = re.compile(r"^(```|~~~)")
#: shell tokens that end a sweb-repro invocation's argument list
_STOP_TOKENS = {"&&", "||", ";", "|", ">", ">>", "<", "#", "2>&1"}


def markdown_links(text: str) -> list[str]:
    """Every link/image target in a markdown document."""
    return _LINK_RE.findall(text)


def code_regions(text: str) -> list[str]:
    """All code content: fenced block lines plus inline code spans.

    Backslash line-continuations inside fences are joined so a wrapped
    invocation validates as one command line.
    """
    regions: list[str] = []
    in_fence = False
    pending = ""
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if in_fence:
            if line.rstrip().endswith("\\"):
                pending += line.rstrip()[:-1] + " "
                continue
            regions.append(pending + line)
            pending = ""
        else:
            regions.extend(_INLINE_CODE_RE.findall(line))
    return regions


def cli_invocations(text: str) -> list[str]:
    """``sweb-repro ...`` command lines found in the doc's code regions."""
    found = []
    for region in code_regions(text):
        for match in re.finditer(r"sweb-repro\s+([^\n]*)", region):
            found.append(match.group(1).strip())
        if re.search(r"sweb-repro\s*$", region.strip()):
            found.append("")
    return found


def _flag_choices(parser: argparse.ArgumentParser) -> dict[str, set[str]]:
    """flag string -> declared argparse ``choices`` values (as strings)."""
    choices: dict[str, set[str]] = {}
    for flag, action in parser._option_string_actions.items():
        if action.choices:
            choices[flag] = {str(c) for c in action.choices}
    return choices


def _cli_surface() -> tuple[dict[str, set[str]], set[str],
                            dict[str, dict[str, set[str]]]]:
    """Introspect the real parser: subcommand -> flags, global flags, and
    per-subcommand flag -> declared value choices.

    The choices map is keyed by subcommand name (``""`` for global
    flags); it is how documented ``--scheduler sweb`` values get checked
    against the live policy registry without a hand-kept list.
    """
    from repro.cli import build_parser

    parser = build_parser()
    subcommands: dict[str, set[str]] = {}
    choices: dict[str, dict[str, set[str]]] = {"": _flag_choices(parser)}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                subcommands[name] = set(sub._option_string_actions)
                choices[name] = _flag_choices(sub)
    return subcommands, set(parser._option_string_actions), choices


def check_invocation(invocation: str,
                     subcommands: dict[str, set[str]],
                     global_flags: set[str],
                     choices: dict[str, dict[str, set[str]]] | None = None,
                     ) -> list[str]:
    """Problems with one documented ``sweb-repro`` argument string."""
    tokens = invocation.split()
    if tokens and tokens[0] == "$":
        tokens = tokens[1:]
    problems = []
    subcommand = None
    choices = choices or {}
    pending_choices: set[str] | None = None  # the previous flag's choices
    pending_flag = ""
    for token in tokens:
        if token in _STOP_TOKENS:
            break
        flag, sep, inline_value = token.partition("=")
        if flag.startswith("-"):
            pending_choices = None
            allowed = global_flags | (subcommands.get(subcommand, set())
                                      if subcommand else set())
            if flag not in allowed:
                where = f"'sweb-repro {subcommand}'" if subcommand \
                    else "'sweb-repro'"
                problems.append(f"unknown flag {flag!r} for {where}")
                continue
            flag_choices = choices.get(subcommand or "", {}).get(flag) \
                or choices.get("", {}).get(flag)
            if flag_choices and sep:
                if inline_value not in flag_choices:
                    problems.append(
                        f"bad value {inline_value!r} for {flag}: choose "
                        f"from {', '.join(sorted(flag_choices))}")
            elif flag_choices:
                pending_choices = flag_choices
                pending_flag = flag
        elif pending_choices is not None:
            if token not in pending_choices:
                problems.append(
                    f"bad value {token!r} for {pending_flag}: choose "
                    f"from {', '.join(sorted(pending_choices))}")
            pending_choices = None
        elif subcommand is None:
            if token not in subcommands:
                problems.append(f"unknown subcommand {token!r} "
                                f"(have: {', '.join(sorted(subcommands))})")
                break
            subcommand = token
        # remaining bare tokens are positionals/values — not validated
    return problems


def check_tree(root: Path) -> list[str]:
    """All docs problems in one tree, as 'file: problem' strings."""
    problems: list[str] = []
    docs_dir = root / "docs"
    if not docs_dir.is_dir():
        return [f"{root}: no docs/ directory"]
    index = docs_dir / "README.md"
    pages = sorted(docs_dir.glob("*.md"))

    # 1. every docs page is reachable from the index
    if not index.is_file():
        problems.append("docs/README.md: missing (the index)")
        linked: set[str] = set()
    else:
        linked = {t.split("#", 1)[0] for t in
                  markdown_links(index.read_text())}
    for page in pages:
        if page == index:
            continue
        if page.name not in linked:
            problems.append(f"docs/{page.name}: not linked from "
                            f"docs/README.md index")

    # 2. relative links resolve (docs pages, the top-level README, and
    #    the generated experiment report when present)
    candidates = list(pages)
    for extra in ("README.md", "EXPERIMENTS.md"):
        extra_page = root / extra
        if extra_page.is_file():
            candidates.append(extra_page)
    for page in candidates:
        rel = page.relative_to(root)
        for target in markdown_links(page.read_text()):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (page.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: dead link -> {target}")

    # 3. documented CLI invocations match the real parser
    subcommands, global_flags, choices = _cli_surface()
    for page in candidates:
        rel = page.relative_to(root)
        for invocation in cli_invocations(page.read_text()):
            for problem in check_invocation(invocation, subcommands,
                                            global_flags, choices):
                problems.append(
                    f"{rel}: in `sweb-repro {invocation}`: {problem}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (see module docstring)."""
    parser = argparse.ArgumentParser(
        description="validate docs index, links and CLI invocations")
    parser.add_argument("--root", default=str(REPO_ROOT),
                        help="tree to check (default: this repo)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"check_docs: no such directory: {root}", file=sys.stderr)
        return 2
    problems = check_tree(root)
    if problems:
        for problem in problems:
            print(f"check_docs: {problem}", file=sys.stderr)
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    docs_count = len(list((root / "docs").glob("*.md")))
    print(f"check_docs: ok ({docs_count} docs pages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
