#!/usr/bin/env python3
"""Coverage gate for the ``repro.obs`` subsystem (docs/TRACING.md).

Policy: the observability layer — the newest subsystem, and the one
every other layer publishes into — must stay at least 90 % statement-
covered by its own test modules (``tests/test_obs_*.py``); the repo-wide
number is *reported* but not gated.

Two measurement paths, because the gate must work in a container with
no network access:

* when ``pytest-cov`` is installed, delegate to it (subprocess) — the
  canonical measurement, with branch-aware reporting configured in
  ``pyproject.toml``;
* otherwise fall back to a stdlib ``sys.settrace`` statement counter:
  enumerate every statement in ``src/repro/obs`` via ``ast``, run the
  obs test modules' zero-argument ``test_*`` callables in-process, and
  mark a statement hit when any traced line lands inside its
  ``lineno..end_lineno`` range (lenient on multi-line statements, which
  is what a line tracer can actually observe).

Exit status: 0 when the obs floor holds, 1 when it does not, 2 on
measurement failure.  ``tests/test_coverage_gate.py`` runs the fallback
in-process so the floor is enforced by tier-1 even without pytest-cov.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import os
import subprocess
import sys
from pathlib import Path
from typing import Callable, Iterable, Optional

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
OBS_DIR = SRC / "repro" / "obs"
OBS_TEST_MODULES = (
    "tests.test_obs_model",
    "tests.test_obs_registry",
    "tests.test_obs_export",
)
FLOOR = 90.0


def obs_files() -> list[Path]:
    """Every source file the gate measures."""
    return sorted(OBS_DIR.glob("*.py"))


def statement_lines(path: Path) -> dict[int, int]:
    """Map each statement's first line to its last line.

    One entry per ``ast.stmt`` node; compound statements (``if``,
    ``for``, ``def``) count through their header line only, since the
    body statements get their own entries.  Docstring expressions are
    excluded (CPython emits no line event for them) and so are lines
    carrying a ``pragma: no cover`` comment — the same exclusions
    pytest-cov applies via ``pyproject.toml``.
    """
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    out: dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            if (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)):
                continue
            if "pragma: no cover" in lines[node.lineno - 1]:
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            if isinstance(node, (ast.If, ast.For, ast.While, ast.With,
                                 ast.Try, ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
                end = node.lineno
            out.setdefault(node.lineno, max(out.get(node.lineno, 0), end))
    return out


def _runnable_tests(module) -> Iterable[tuple[str, Callable]]:
    """Zero-argument ``test_*`` callables (fixture-needing ones skipped)."""
    for name in sorted(dir(module)):
        if not name.startswith("test_"):
            continue
        fn = getattr(module, name)
        if not callable(fn):
            continue
        if getattr(fn, "__coverage_gate_skip__", False):
            continue
        try:
            params = inspect.signature(fn).parameters
        except (TypeError, ValueError):  # pragma: no cover - C callables
            continue
        required = [p for p in params.values()
                    if p.default is inspect.Parameter.empty
                    and p.kind in (p.POSITIONAL_OR_KEYWORD, p.POSITIONAL_ONLY)]
        if required:
            continue
        yield name, fn


def _reimport_obs_under_trace() -> None:
    """Exec the obs modules afresh so import-time statements count.

    pytest-cov starts measuring before imports; the settrace fallback
    starts after, so module-level lines (``def``/``class`` headers,
    ``__all__``...) would otherwise read as missed.  The fresh module
    objects are discarded — ``sys.modules`` is restored so the rest of
    the process keeps the originally-imported classes.
    """
    names = [n for n in sys.modules
             if n == "repro.obs" or n.startswith("repro.obs.")]
    saved = {n: sys.modules.pop(n) for n in names}
    try:
        importlib.import_module("repro.obs")
    finally:
        for n in [n for n in sys.modules
                  if n == "repro.obs" or n.startswith("repro.obs.")]:
            del sys.modules[n]
        sys.modules.update(saved)


def measure_fallback(verbose: bool = False) -> Optional[dict[str, float]]:
    """Statement coverage of ``repro.obs`` via ``sys.settrace``.

    Returns per-file percentages plus ``"TOTAL"``, or ``None`` when
    measurement is impossible (another tracer is already installed —
    a debugger, or pytest-cov itself).
    """
    if sys.gettrace() is not None:
        return None
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    if str(REPO) not in sys.path:
        sys.path.insert(0, str(REPO))

    targets = {str(path): statement_lines(path) for path in obs_files()}
    hits: dict[str, set[int]] = {filename: set() for filename in targets}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if filename in hits:
            if event == "line":
                hits[filename].add(frame.f_lineno)
            return tracer
        # Returning the local tracer only for obs frames keeps the
        # overhead bounded: foreign frames are never line-traced.
        return tracer if event == "call" and filename in hits else None

    modules = [importlib.import_module(name) for name in OBS_TEST_MODULES]
    sys.settrace(tracer)
    try:
        _reimport_obs_under_trace()
        for module in modules:
            for name, fn in _runnable_tests(module):
                if verbose:
                    print(f"  running {module.__name__}.{name}")
                fn()
    finally:
        sys.settrace(None)

    report: dict[str, float] = {}
    total_stmts = total_hit = 0
    for filename, stmts in sorted(targets.items()):
        lines_hit = hits[filename]
        covered = sum(
            1 for start, end in stmts.items()
            if any(start <= line <= end for line in lines_hit))
        total_stmts += len(stmts)
        total_hit += covered
        rel = os.path.relpath(filename, REPO)
        report[rel] = 100.0 * covered / len(stmts) if stmts else 100.0
    report["TOTAL"] = (100.0 * total_hit / total_stmts
                       if total_stmts else 100.0)
    return report


def _have_pytest_cov() -> bool:
    try:
        importlib.import_module("pytest_cov")
        return True
    except ImportError:
        return False


def run_pytest_cov() -> int:
    """Canonical path: delegate to pytest-cov in a subprocess."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    test_files = [f"tests/{name.split('.')[-1]}.py"
                  for name in OBS_TEST_MODULES]
    gate = subprocess.run(
        [sys.executable, "-m", "pytest", "-q",
         "--cov=repro.obs", "--cov-report=term-missing",
         f"--cov-fail-under={FLOOR:.0f}", *test_files],
        cwd=REPO, env=env)
    if gate.returncode != 0:
        return 1
    # Repo-wide number: informational only, never gated.
    subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "--cov=repro",
         "--cov-report=term", "tests"],
        cwd=REPO, env=env)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    verbose = "-v" in argv or "--verbose" in argv
    force_fallback = "--fallback" in argv
    if _have_pytest_cov() and not force_fallback:
        return run_pytest_cov()
    print("pytest-cov not installed; using stdlib settrace fallback"
          if not force_fallback else "running stdlib settrace fallback")
    report = measure_fallback(verbose=verbose)
    if report is None:
        print("cannot measure: a trace function is already installed")
        return 2
    width = max(len(name) for name in report)
    for name, pct in report.items():
        if name != "TOTAL":
            print(f"  {name:<{width}}  {pct:6.1f}%")
    total = report["TOTAL"]
    print(f"  {'TOTAL':<{width}}  {total:6.1f}%  (floor {FLOOR:.0f}%)")
    if total < FLOOR:
        print(f"FAIL: repro.obs statement coverage {total:.1f}% "
              f"is below the {FLOOR:.0f}% floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
