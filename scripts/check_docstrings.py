#!/usr/bin/env python
"""Docstring lint: every module and every public class under
``src/repro/`` — and every helper script in ``scripts/`` — must say what
it is for.

This script is now a thin compatibility wrapper around the unified
analyzer's docstring rules (``repro.lint.rules.docstrings``); run the
full analyzer with ``sweb-repro lint`` (see ``docs/LINTING.md``).  Kept
so existing invocations (``python scripts/check_docstrings.py``) and
``tests/test_docstrings.py`` keep working; exits non-zero listing every
offender as ``path:line: problem``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.lint import run_lint                          # noqa: E402
from repro.lint.rules.docstrings import RULES            # noqa: E402

#: repo-root-relative tree the lint covers when called with one root
DEFAULT_ROOT = _REPO / "src" / "repro"

#: trees the CLI lints when invoked with no arguments
DEFAULT_ROOTS = (DEFAULT_ROOT, _REPO / "scripts")


def check_file(path: Path) -> list[str]:
    """Return ``path:line: problem`` strings for one source file."""
    return [f"{d.path}:{d.line}: {d.message}"
            for d in run_lint([path], rules=RULES)]


def check_tree(root: Path = DEFAULT_ROOT) -> list[str]:
    """Lint every ``*.py`` file under ``root``; return all problems."""
    return [f"{d.path}:{d.line}: {d.message}"
            for d in run_lint([root], rules=RULES)]


def main(argv: list[str] | None = None) -> int:
    """Lint the given root(s), or src/repro + scripts by default."""
    args = argv if argv is not None else sys.argv[1:]
    roots = [Path(a) for a in args] if args else list(DEFAULT_ROOTS)
    problems: list[str] = []
    for root in roots:
        problems.extend(check_tree(root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} docstring problem(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
