#!/usr/bin/env python
"""Docstring lint: every module and every public class under
``src/repro/`` — and every helper script in ``scripts/`` — must say what
it is for.

The reproduction leans on prose — each module opens by citing the part
of the paper it implements — so an undocumented module is a regression.
Run directly (``python scripts/check_docstrings.py``) or via the test
suite (``tests/test_docstrings.py``); exits non-zero listing every
offender as ``path:line: problem``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent

#: repo-root-relative tree the lint covers when called with one root
DEFAULT_ROOT = _REPO / "src" / "repro"

#: trees the CLI lints when invoked with no arguments
DEFAULT_ROOTS = (DEFAULT_ROOT, _REPO / "scripts")


def check_file(path: Path) -> list[str]:
    """Return ``path:line: problem`` strings for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: module has no docstring")
    for node in ast.walk(tree):
        if (isinstance(node, ast.ClassDef)
                and not node.name.startswith("_")
                and ast.get_docstring(node) is None):
            problems.append(f"{path}:{node.lineno}: public class "
                            f"{node.name!r} has no docstring")
    return problems


def check_tree(root: Path = DEFAULT_ROOT) -> list[str]:
    """Lint every ``*.py`` file under ``root``; return all problems."""
    problems: list[str] = []
    for path in sorted(root.rglob("*.py")):
        problems.extend(check_file(path))
    return problems


def main(argv: list[str] | None = None) -> int:
    """Lint the given root(s), or src/repro + scripts by default."""
    args = argv if argv is not None else sys.argv[1:]
    roots = [Path(a) for a in args] if args else list(DEFAULT_ROOTS)
    problems: list[str] = []
    for root in roots:
        problems.extend(check_tree(root))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} docstring problem(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
