#!/usr/bin/env python3
"""Compare every scheduling policy on the paper's hardest workload.

Reruns the Table 3 configuration (non-uniform sizes, DNS-cached client
hosts, rising load) across all five policies — the paper's three plus
the single-faceted cpu-only baseline and random placement — and prints
the response-time matrix with the winner per load level.

Run:  python examples/scheduling_comparison.py
"""

from repro.core.policies import POLICY_NAMES
from repro.cluster import meiko_cs2
from repro.experiments.runner import Scenario, run_scenario
from repro.experiments.tables import render_table
from repro.sim import RandomStreams
from repro.workload import bimodal_corpus, burst_workload, uniform_sampler


def main() -> None:
    rps_levels = (10, 20, 25, 30)
    duration = 20.0

    results = {}
    for rps in rps_levels:
        for policy in POLICY_NAMES:
            corpus = bimodal_corpus(150, 6, large_frac=0.5, seed=9)
            sampler = uniform_sampler(corpus, RandomStreams(seed=42))
            workload = burst_workload(rps, duration, sampler)
            scenario = Scenario(name=f"cmp-{policy}-{rps}",
                                spec=meiko_cs2(6), corpus=corpus,
                                workload=workload, policy=policy, seed=1,
                                dns_ttl=300.0, hosts_per_profile=4)
            results[(rps, policy)] = run_scenario(scenario)

    rows = []
    for rps in rps_levels:
        times = {p: results[(rps, p)].mean_response_time
                 for p in POLICY_NAMES}
        winner = min(times, key=times.get)
        rows.append([rps] + [times[p] for p in POLICY_NAMES] + [winner])
    print(render_table(
        headers=["rps"] + list(POLICY_NAMES) + ["winner"],
        rows=rows,
        title="Mean response time (s) by policy — non-uniform sizes, "
              "6-node Meiko, DNS-cached clients",
        floatfmt=".3f"))

    print()
    heavy = max(rps_levels)
    sweb = results[(heavy, "sweb")]
    rr = results[(heavy, "round-robin")]
    print(f"At {heavy} rps, SWEB is "
          f"{1 - sweb.mean_response_time / rr.mean_response_time:.0%} faster "
          f"than round-robin while redirecting only "
          f"{sweb.redirection_rate:.0%} of requests "
          f"(drop rates: SWEB {sweb.drop_rate:.1%}, RR {rr.drop_rate:.1%}).")
    print("The paper's §4.2 claim was a 15-60% advantage at rps >= 20.")


if __name__ == "__main__":
    main()
