#!/usr/bin/env python3
"""Browser sessions over a real HTML site, with live load monitoring.

Generates a site of genuine HTML pages whose <img> tags point at image
files spread over the Meiko's disks, then lets a population of simulated
Netscape-style browsers loose on it: each page load parses the returned
markup and opens up to four simultaneous image connections — the paper's
"burst of requests … one for each graphics image on the page", produced
the way a browser actually produces it.  A monitor samples cluster load
once per simulated second and renders sparklines.

Run:  python examples/browser_sessions.py
"""

from repro import SWEBCluster, meiko_cs2
from repro.sim import Monitor, RandomStreams, ascii_series
from repro.web import BrowserSession
from repro.workload import html_site_corpus


def main() -> None:
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=13)
    corpus = html_site_corpus(n_pages=24, n_nodes=6, images_per_page=5,
                              image_size=120e3, seed=13)
    corpus.install(cluster)
    sim = cluster.sim
    rng = RandomStreams(seed=13)

    monitor = Monitor(sim, period=1.0)
    monitor.probe("run queue (total)",
                  lambda: sum(n.cpu.njobs for n in cluster.nodes))
    monitor.probe("nic streams",
                  lambda: sum(n.nic.njobs for n in cluster.nodes))
    monitor.probe("disk streams",
                  lambda: sum(n.disk.channel_load for n in cluster.nodes))
    monitor.start()

    browsers = [BrowserSession(cluster, max_parallel_images=4)
                for _ in range(8)]

    def surf(browser, n_pages):
        for _ in range(n_pages):
            page = rng.integers("page", 0, 24)
            yield browser.open(f"/site/page{page:04d}.html")
            # Think time between page views.
            yield sim.timeout(rng.exponential("think", 3.0))

    sessions = [sim.spawn(surf(b, 6), name=f"surfer{i}")
                for i, b in enumerate(browsers)]
    for proc in sessions:
        cluster.run(until=proc)

    print("Browser sessions on SWEB")
    print("========================")
    loads = [l for b in browsers for l in b.loads]
    complete = sum(1 for l in loads if l.complete)
    times = [l.load_time for l in loads if l.load_time is not None]
    print(f"page loads: {len(loads)}, fully rendered: {complete}")
    print(f"page-load time: mean {sum(times) / len(times):.3f}s, "
          f"max {max(times):.3f}s")
    print(f"HTTP requests issued: {cluster.metrics.total} "
          f"(pages + images), redirected {cluster.metrics.counters['redirected']}")
    print()
    print("Cluster load during the run (1-second samples):")
    print(monitor.render(width=64))
    print()
    print("Total run queue over time:")
    print(ascii_series(monitor.samples["run queue (total)"], height=6,
                       width=64, label="seconds →"))


if __name__ == "__main__":
    main()
