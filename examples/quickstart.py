#!/usr/bin/env python3
"""Quickstart: bring up a 6-node SWEB server and fetch some documents.

Builds the paper's primary testbed (the Meiko CS-2), places a small web
site across the nodes' disks, points a burst of browser-like clients at
the round-robin DNS name, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import SWEBCluster, meiko_cs2
from repro.sim import Trace


def main() -> None:
    # A traced 6-node SWEB logical server with the multi-faceted scheduler.
    trace = Trace(max_records=200)
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=7, trace=trace)

    # A tiny site: the front page on node 0, images spread over the disks.
    cluster.add_file("/index.html", 8_000, home=0)
    for i in range(12):
        cluster.add_file(f"/images/photo{i}.gif", 400_000, home=i % 6)
    cluster.add_cgi("/cgi-bin/search", cpu_ops=5e6, output_bytes=10_000)

    # A graphical browser: the front page, then all images at once
    # (the paper's "burst of requests … one for each graphics image").
    client = cluster.client()
    client.fetch("/index.html")
    for i in range(12):
        client.fetch(f"/images/photo{i}.gif")
    client.fetch("/cgi-bin/search")

    cluster.run(until=60.0)

    metrics = cluster.metrics
    print("SWEB quickstart")
    print("===============")
    print(f"requests:   {metrics.total}, completed {metrics.completed}, "
          f"dropped {metrics.dropped}")
    summary = metrics.response_summary()
    print(f"response:   mean {summary.mean * 1e3:.1f} ms, "
          f"p90 {summary.p90 * 1e3:.1f} ms, max {summary.maximum * 1e3:.1f} ms")
    print(f"redirected: {metrics.counters['redirected']} requests "
          f"(SWEB second-stage assignment)")
    print(f"served by:  {metrics.served_by_histogram()}")
    print()
    print("Per-phase mean cost (the paper's Table 5 breakdown):")
    breakdown = metrics.phase_breakdown()
    for phase in breakdown.phases():
        print(f"  {phase:<14} {breakdown.mean(phase) * 1e3:8.2f} ms")
    print()
    print("First trace lines (Figure 1's transaction, live):")
    for record in trace.filter(category="http")[:8]:
        print("  " + record.format())


if __name__ == "__main__":
    main()
