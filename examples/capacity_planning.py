#!/usr/bin/env python3
"""Capacity planning with the §3.3 analysis, validated by simulation.

"Popular WWW sites such as Lycos and Yahoo receive over one million
accesses a day" (§1) — about 12 requests/second sustained, far more at
peak.  How many Meiko-class nodes does a digital-library front end need
for a target sustained rate?  The closed-form bound answers instantly;
the simulator confirms it.

Run:  python examples/capacity_planning.py [target_rps]
"""

import sys

from repro import AnalysisInputs, max_sustained_rps, meiko_cs2
from repro.core.analysis import service_demand
from repro.experiments.table1 import max_rps_cell


def nodes_needed(target_rps: float, avg_file: float, b1: float = 5e6,
                 b2: float = 4.5e6, A: float = 0.0194) -> int:
    """Smallest p whose analytic sustained bound covers the target."""
    for p in range(1, 129):
        bound = max_sustained_rps(AnalysisInputs(p=p, F=avg_file, b1=b1,
                                                 b2=b2, d=0.0, A=A))
        if bound >= target_rps:
            return p
    raise ValueError(f"no feasible cluster size under 128 for {target_rps} rps")


def main() -> None:
    target = float(sys.argv[1]) if len(sys.argv) > 1 else 25.0
    avg_file = 1.5e6   # full-resolution map scans

    print(f"Target: {target:g} sustained rps of {avg_file / 1e6:.1f} MB "
          f"documents")
    print()
    print(f"{'p':>3} {'demand/req (s)':>15} {'analytic max rps':>17}")
    for p in (1, 2, 4, 6, 8, 12):
        inputs = AnalysisInputs(p=p, F=avg_file, b1=5e6, b2=4.5e6, A=0.0194)
        print(f"{p:>3} {service_demand(inputs):>15.3f} "
              f"{max_sustained_rps(inputs):>17.1f}")

    p = nodes_needed(target, avg_file)
    print()
    print(f"Analysis says: {p} nodes for {target:g} rps.")

    print(f"Simulating a {p}-node Meiko to verify (sustained burst, "
          f"rising rate until requests fail)...")
    measured = max_rps_cell(meiko_cs2(p), avg_file, duration=40.0, cap=96)
    verdict = "confirmed" if measured >= target * 0.8 else "OPTIMISTIC"
    print(f"Simulated sustained maximum: {measured} rps -> sizing {verdict}.")
    print()
    print("(The paper's worked example is p=6: analytic 17.3 rps, "
          "measured 16 — §3.3/§4.1.)")


if __name__ == "__main__":
    main()
