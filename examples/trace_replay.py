#!/usr/bin/env python3
"""Close the loop with a real webmaster's workflow: access-log replay.

1. Run a burst against SWEB and write the resulting ``access_log`` in
   Common Log Format (the format NCSA httpd — SWEB's code base —
   introduced).
2. Parse that log back, as if it came from a production server.
3. Replay it, time-compressed 2x, against a *differently configured*
   cluster (fewer nodes, round-robin policy) to answer the 1996-vintage
   capacity question: "could half the hardware have carried yesterday's
   traffic?"

Run:  python examples/trace_replay.py
"""

from repro import SWEBCluster, meiko_cs2
from repro.experiments.runner import Scenario, run_scenario
from repro.sim import RandomStreams
from repro.workload import (
    bimodal_corpus,
    burst_workload,
    parse_clf,
    uniform_sampler,
    workload_from_clf,
    write_clf,
)


def main() -> None:
    # --- 1. the "production" run -------------------------------------
    corpus = bimodal_corpus(100, 6, large_frac=0.3, seed=4)
    workload = burst_workload(8, 20.0,
                              uniform_sampler(corpus, RandomStreams(4)))
    production = run_scenario(Scenario(name="production", spec=meiko_cs2(6),
                                       corpus=corpus, workload=workload,
                                       policy="sweb", seed=4))
    log_text = write_clf(production.metrics.records)
    print("production run: "
          f"{production.metrics.total} requests, "
          f"drop {production.drop_rate:.1%}, "
          f"mean {production.mean_response_time:.3f}s")
    print(f"access_log: {len(log_text.splitlines())} CLF lines, e.g.")
    for line in log_text.splitlines()[:3]:
        print("   " + line)

    # --- 2. parse it back ------------------------------------------------
    entries = parse_clf(log_text, strict=True)
    ok = sum(1 for e in entries if e.ok)
    print(f"\nparsed {len(entries)} entries ({ok} with status 200)")

    # --- 3. replay on half the hardware, 2x faster -------------------------
    replay_wl = workload_from_clf(entries, time_scale=0.5)
    replay_corpus = bimodal_corpus(100, 3, large_frac=0.3, seed=4)
    replay = run_scenario(Scenario(name="replay-3nodes",
                                   spec=meiko_cs2(3), corpus=replay_corpus,
                                   workload=replay_wl,
                                   policy="round-robin", seed=5))
    print(f"\nreplay on 3 nodes at 2x speed ({replay_wl.offered_rps:.1f} rps "
          f"offered):")
    print(f"  drop {replay.drop_rate:.1%}, "
          f"mean {replay.mean_response_time:.3f}s "
          f"(production was {production.mean_response_time:.3f}s on 6 nodes)")
    verdict = ("would have coped" if replay.drop_rate < 0.02
               else "would NOT have coped")
    print(f"  -> half the hardware {verdict} with twice the load.")


if __name__ == "__main__":
    main()
