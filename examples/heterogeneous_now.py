#!/usr/bin/env python3
"""A heterogeneous NOW with machines leaving and joining mid-run.

§1's motivating environment: "the computing powers of workstations …
can be heterogeneous.  They can be used for other computing needs, and
can leave and join the system resource pool at any time."  This example
runs a mixed-speed NOW, pulls the fastest node out for 15 seconds while
clients keep arriving (from both UCSB and the east coast), and shows how
loadd + the broker absorb the churn.

Run:  python examples/heterogeneous_now.py
"""

from repro import SWEBCluster, heterogeneous_now, RUTGERS_CLIENT, UCSB_CLIENT
from repro.sim import RandomStreams
from repro.web.client import Client
from repro.workload import bimodal_corpus, burst_workload, uniform_sampler


def main() -> None:
    speeds = [50e6, 25e6, 25e6, 12e6]   # one fast, two stock, one slow LX
    cluster = SWEBCluster(heterogeneous_now(speeds), policy="sweb", seed=3)
    corpus = bimodal_corpus(80, 4, large_frac=0.2,
                            large_range=(2e5, 5e5), seed=5)
    corpus.install(cluster)

    rng = RandomStreams(seed=3)
    sampler = uniform_sampler(corpus, rng)
    workload = burst_workload(6, 45.0, sampler,
                              client_mix=[("ucsb", 0.8), ("rutgers", 0.2)],
                              rng=rng)
    clients = {"ucsb": Client(cluster, profile=UCSB_CLIENT, timeout=240.0),
               "rutgers": Client(cluster, profile=RUTGERS_CLIENT,
                                 timeout=240.0)}
    sim = cluster.sim

    def churner():
        yield sim.timeout(10.0)
        print(f"[t={sim.now:5.1f}s] node 0 (the fast one) leaves the pool")
        cluster.node_leave(0)
        yield sim.timeout(15.0)
        print(f"[t={sim.now:5.1f}s] node 0 rejoins")
        cluster.node_join(0, update_dns=False)

    def driver():
        for arrival in workload:
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            clients[arrival.client].fetch(arrival.path)

    sim.spawn(churner(), name="churner")
    done = sim.spawn(driver(), name="driver")
    cluster.run(until=done)
    cluster.run(until=sim.now + 240.0)

    metrics = cluster.metrics
    print()
    print("Heterogeneous NOW under churn")
    print("=============================")
    print(f"speeds: {[f'{s / 1e6:.0f} Mops' for s in speeds]}")
    print(f"requests {metrics.total}, completed {metrics.completed}, "
          f"dropped {metrics.dropped} ({metrics.drop_rate:.1%})")
    for who in ("ucsb", "rutgers"):
        times = [r.response_time for r in metrics.records
                 if r.ok and r.client.startswith(who)]
        if times:
            print(f"  {who:<8} mean {sum(times) / len(times):.3f}s over "
                  f"{len(times)} requests")
    print(f"served-by histogram: {metrics.served_by_histogram()}")
    print(f"redirections: {cluster.total_redirections()}")
    during = [r for r in metrics.records if 10.0 < r.start < 25.0]
    refused = sum(1 for r in during
                  if r.dropped and r.drop_reason == "refused")
    print(f"while node 0 was down: {len(during)} requests arrived, "
          f"{refused} refused at the dead node (DNS kept rotating to it; "
          f"loadd kept the *schedulers* from sending more)")


if __name__ == "__main__":
    main()
