#!/usr/bin/env python3
"""The Alexandria Digital Library workload — the paper's motivating user.

The ADL serves "geographically-referenced materials, such as maps,
satellite images, digitized aerial photographs" (§1): browse-sized
thumbnails are requested constantly, full-resolution TIFF scans
occasionally, and spatial queries run as CGI programs.  This example
drives that mix at the Meiko testbed with Poisson arrivals and reports
per-content-class latency.

Run:  python examples/digital_library.py
"""

from repro import SWEBCluster, meiko_cs2
from repro.sim import RandomStreams
from repro.web.client import Client
from repro.workload import adl_corpus, poisson_workload, weighted_sampler


def main() -> None:
    seed = 11
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=seed)
    corpus = adl_corpus(n_nodes=6, n_maps=30, seed=seed)
    corpus.install(cluster)

    # Popularity: thumbnails dominate, full scans are rare but huge,
    # spatial queries are the CGI workload the oracle characterises.
    rng = RandomStreams(seed=seed)
    choices = []
    for doc in corpus.documents:
        if doc.path.endswith(".thumb.gif"):
            choices.append((doc.path, 8.0))
        elif doc.path.endswith(".meta.html"):
            choices.append((doc.path, 4.0))
        elif doc.path.endswith(".full.tif"):
            choices.append((doc.path, 1.0))
        else:
            choices.append((doc.path, 6.0))
    choices.append(("/cgi-bin/spatial-query", 40.0))
    choices.append(("/cgi-bin/metadata-search", 25.0))
    choices.append(("/cgi-bin/gazetteer", 10.0))
    sampler = weighted_sampler(choices, rng)

    workload = poisson_workload(rate=12.0, duration=40.0, sampler=sampler,
                                rng=rng)
    client = Client(cluster)

    def driver():
        for arrival in workload:
            if arrival.time > cluster.sim.now:
                yield cluster.sim.timeout(arrival.time - cluster.sim.now)
            client.fetch(arrival.path)

    done = cluster.sim.spawn(driver(), name="adl-driver")
    cluster.run(until=done)
    cluster.run(until=cluster.sim.now + 120.0)   # drain

    print("Alexandria Digital Library on SWEB")
    print("==================================")
    classes = {
        "thumbnail": lambda p: p.endswith(".thumb.gif"),
        "metadata page": lambda p: p.endswith(".meta.html"),
        "full-res scan": lambda p: p.endswith(".full.tif"),
        "CGI query": lambda p: p.startswith("/cgi-bin/"),
        "front page": lambda p: p == "/index.html",
    }
    print(f"{'class':<14} {'n':>5} {'mean (ms)':>10} {'max (ms)':>10}")
    for label, match in classes.items():
        times = [r.response_time for r in cluster.metrics.records
                 if r.ok and match(r.path)]
        if not times:
            continue
        print(f"{label:<14} {len(times):>5} {1e3 * sum(times) / len(times):>10.1f} "
              f"{1e3 * max(times):>10.1f}")
    print()
    print(f"total {cluster.metrics.total}, completed "
          f"{cluster.metrics.completed}, dropped {cluster.metrics.dropped}")
    print(f"redirections: {cluster.total_redirections()} "
          f"(load-aware second-stage assignment)")
    hits = sum(n.cache.hits for n in cluster.nodes)
    misses = sum(n.cache.misses for n in cluster.nodes)
    print(f"page-cache hit rate: {hits / max(1, hits + misses):.0%} "
          f"(aggregate RAM across the multicomputer)")
    shares = cluster.cpu_share_by_category()
    print("CPU shares: " + ", ".join(f"{k} {v:.1%}"
                                     for k, v in sorted(shares.items())))


if __name__ == "__main__":
    main()
