"""Cluster-wide cache directory built from piggybacked loadd reports.

Each node periodically summarises its :class:`~repro.cluster.memory.PageCache`
as a :class:`CacheReport` — the top-K resident files ranked by
bytes·recency (:func:`hot_set`) — and the load daemon ships that report
inside its existing broadcast.  Every node keeps a :class:`CacheDirectory`
mapping peer → last report; the broker consults it when pricing ``t_data``
for a candidate.  Reports age out after a TTL, so a muted, partitioned or
crashed peer silently drops out of the directory just as it drops out of
the load view — a stale "node X has the file" entry can only mislead the
broker for one TTL window, after which the directory falls back to the
pessimistic disk/NFS estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["CacheReport", "CacheDirectory", "hot_set"]


def hot_set(entries: Iterable[Tuple[str, float]], k: int) -> Tuple[str, ...]:
    """Top-``k`` cached paths ranked by bytes·recency.

    ``entries`` is the cache's resident set in LRU order (oldest first,
    as produced by :meth:`repro.cluster.memory.PageCache.entries`).  The
    score of an entry is its size multiplied by its 1-based recency rank,
    so a recently touched large file beats a long-idle one of equal size.
    Ties break on path so the result is deterministic regardless of
    insertion history.
    """
    ranked = [(size * (rank + 1), path)
              for rank, (path, size) in enumerate(entries)]
    ranked.sort(key=lambda item: (-item[0], item[1]))
    return tuple(path for _, path in ranked[:max(k, 0)])


@dataclass(frozen=True)
class CacheReport:
    """One node's advertised hot cached-file set at a point in time."""

    node: int
    paths: Tuple[str, ...]
    timestamp: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.timestamp < 0:
            raise ValueError("timestamp must be >= 0")


class CacheDirectory:
    """One node's view of which files its peers hold in RAM.

    The owner's own residency is answered from a live ``local_probe``
    callback (the broker always knows its own cache exactly); peer
    residency comes from the freshest :class:`CacheReport` received and
    is trusted only for ``ttl`` seconds past its timestamp.
    """

    def __init__(self, owner: int, ttl: float = 8.0,
                 local_probe: Optional[Callable[[str], bool]] = None) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.owner = owner
        self.ttl = ttl
        self.local_probe = local_probe
        self._reports: Dict[int, CacheReport] = {}
        self.updates = 0

    def update(self, report: CacheReport) -> None:
        """Install a peer's report, keeping only the freshest per node."""
        current = self._reports.get(report.node)
        if current is None or report.timestamp >= current.timestamp:
            self._reports[report.node] = report
            self.updates += 1

    def forget(self, node: int) -> None:
        """Drop any report from ``node`` (e.g. when it is declared dead)."""
        self._reports.pop(node, None)

    def report_for(self, node: int) -> Optional[CacheReport]:
        """The last report received from ``node``, fresh or not."""
        return self._reports.get(node)

    def holds(self, node: int, path: str, now: float) -> bool:
        """Does the directory believe ``node`` has ``path`` in RAM *now*?"""
        if node == self.owner and self.local_probe is not None:
            return self.local_probe(path)
        report = self._reports.get(node)
        if report is None or now - report.timestamp > self.ttl:
            return False
        return path in report.paths

    def holders(self, path: str, now: float) -> List[int]:
        """Every node currently believed to hold ``path``, sorted by id."""
        out = [node for node in sorted(self._reports)
               if self.holds(node, path, now)]
        if (self.local_probe is not None and self.owner not in out
                and self.local_probe(path)):
            out.append(self.owner)
            out.sort()
        return out
