"""Proactive hot-file replication driven by request-skew detection.

A Zipf workload concentrates most requests on a few documents; if those
documents share a home node, that node's disk and cache thrash while the
rest of the cluster idles.  The :class:`ReplicationDaemon` watches the
cluster-wide :class:`~repro.cache.stats.FileHeat` counters, and whenever
a file's served byte volume rises above ``skew`` times the per-file mean
it copies the file into the page caches of the least-loaded peers that
lack it — over
the *real* simulated interconnect, with the NFS protocol penalty, so the
replication traffic it trades against load balance (arXiv:1610.04513)
shows up in the fabric byte counters like any other transfer.  Target
caches evict LRU entries under capacity pressure exactly as they do for
demand-filled files; files larger than a target's cache are never
shipped.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..cluster.filesystem import DistributedFileSystem
from ..cluster.network import ClusterNetwork
from ..cluster.node import Node
from ..obs import MetricsRegistry
from ..sim import Event, Process, Simulator, Trace
from ..sim.trace import DETAIL as TRACE_DETAIL
from .stats import FileHeat

if TYPE_CHECKING:  # pragma: no cover
    from ..core.costmodel import CostParameters

__all__ = ["ReplicationDaemon"]


class ReplicationDaemon:
    """Periodic skew detector + hot-file replicator for one cluster.

    One daemon serves the whole cluster (it is the scheduler's agent,
    not a per-node service): every ``period`` seconds it ranks the heat
    counters, plans at most ``max_per_cycle`` copies toward a target of
    ``factor`` cache-resident replicas per hot file, and pays for each
    copy with a real interconnect transfer before installing the file in
    the destination's page cache.
    """

    def __init__(self, sim: Simulator, nodes: Sequence[Node],
                 fs: DistributedFileSystem, network: ClusterNetwork,
                 heat: FileHeat, period: float = 2.0, factor: int = 3,
                 skew: float = 2.0, max_per_cycle: int = 4,
                 trace: Optional[Trace] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if period <= 0:
            raise ValueError("replication period must be positive")
        if factor < 1:
            raise ValueError("replication factor must be >= 1")
        if skew < 1.0:
            raise ValueError("replication skew threshold must be >= 1")
        if max_per_cycle < 1:
            raise ValueError("max_per_cycle must be >= 1")
        self.sim = sim
        self.nodes = list(nodes)
        self.fs = fs
        self.network = network
        self.heat = heat
        self.period = float(period)
        self.factor = int(factor)
        self.skew = float(skew)
        self.max_per_cycle = int(max_per_cycle)
        self.trace = trace
        #: shared run-wide registry the daemon publishes its ``cache.*``
        #: counters into (None = standalone use; attributes below still
        #: carry the same totals)
        self._counters = (registry.counters("cache")
                          if registry is not None else None)
        self.replications = 0
        self.bytes_replicated = 0.0
        self.cycles = 0
        self._in_flight: set[Tuple[str, int]] = set()
        self._proc: Optional[Process] = None

    @classmethod
    def from_params(cls, sim: Simulator, nodes: Sequence[Node],
                    fs: DistributedFileSystem, network: ClusterNetwork,
                    heat: FileHeat, params: "CostParameters",
                    trace: Optional[Trace] = None,
                    registry: Optional[MetricsRegistry] = None,
                    ) -> "ReplicationDaemon":
        """Build a daemon from the knobs on :class:`CostParameters`."""
        return cls(sim, nodes, fs, network, heat,
                   period=params.replication_period,
                   factor=params.replication_factor,
                   skew=params.replication_skew,
                   max_per_cycle=params.replication_max_per_cycle,
                   trace=trace, registry=registry)

    # -- planning -----------------------------------------------------------
    def _node_load(self, node: Node) -> float:
        """Scheduling pressure on ``node`` (CPU run queue + fabric port)."""
        return node.cpu_load() + float(self.network.node_load(node.id))

    def plan(self) -> List[Tuple[str, int]]:
        """Deterministically choose ``(path, target_node)`` copies.

        A file qualifies when its served byte volume is at least ``skew``
        times the mean over all files seen — bytes, not request counts,
        because byte volume is what saturates a home node's disk and what
        a copy costs to ship.  For each qualifying file (hottest first)
        the daemon tops replica count up toward ``factor``, preferring
        the least-loaded alive nodes that do not already hold the file
        (ties break on node id).  Striped files are skipped — their
        chunks are already spread.
        """
        mean = self.heat.mean_bytes()
        if mean <= 0:
            return []
        out: List[Tuple[str, int]] = []
        budget = self.max_per_cycle
        for path, heat_bytes in self.heat.top_bytes(4 * self.max_per_cycle):
            if budget <= 0:
                break
            if heat_bytes < self.skew * mean:
                break  # byte-sorted ranking: nothing below qualifies
            try:
                meta = self.fs.locate(path)
            except FileNotFoundError:
                continue
            if meta.is_striped:
                continue
            holders = {node.id for node in self.nodes if path in node.cache}
            if not holders:
                # Nobody has it in RAM: copying would mean a disk read on
                # the already-hot home node.  A demand fill will cache it
                # within a period or two; spread it then, at RAM speed.
                continue
            candidates = sorted(
                (node for node in self.nodes
                 if node.alive and node.id not in holders
                 and node.id != meta.home
                 and meta.size <= node.cache.capacity
                 and (path, node.id) not in self._in_flight),
                key=lambda node: (self._node_load(node), node.id))
            missing = self.factor - len(holders)
            for node in candidates[:max(missing, 0)]:
                if budget <= 0:
                    break
                out.append((path, node.id))
                budget -= 1
        return out

    # -- execution -----------------------------------------------------------
    def _source_node(self, meta, target: int) -> Node:
        """Where to copy from: home if it caches the file, else the
        least-loaded cached holder (chain replication), else home anyway
        — the disk-read fallback for a copy evicted since planning."""
        home_node = self.nodes[meta.home]
        if meta.path in home_node.cache:
            return home_node
        holders = sorted(
            (node for node in self.nodes
             if node.alive and node.id != target
             and meta.path in node.cache),
            key=lambda node: (self._node_load(node), node.id))
        return holders[0] if holders else home_node

    def replicate(self, path: str, target: int) -> Event:
        """Copy ``path`` into ``target``'s page cache, paying real cost.

        The bytes are produced at a cache-resident source — the home
        node, or the least-loaded replica holder (chain replication) —
        at memory bandwidth, shipped over the interconnect with the NFS
        penalty, and only then installed in the target cache.  If every
        cached copy was evicted between planning and execution the home
        disk is read instead (demand-filling the home cache).  The
        returned event fires when the copy lands.
        """
        meta = self.fs.locate(path)
        target_node = self.nodes[target]
        done = Event(self.sim)
        self._in_flight.add((path, target))

        def pump() -> Iterator[Event]:
            source = self._source_node(meta, target)
            if source.cache.lookup(path):
                yield source.read_from_cache(meta.size, tag=path)
            else:
                yield source.disk.read(meta.size, tag=path)
                source.cache.insert(path, meta.size)
            wire = meta.size * (1.0 + self.fs.remote_penalty)
            yield self.network.transfer(source.id, target, wire,
                                        tag="replicate")
            self._in_flight.discard((path, target))
            target_node.cache.insert(path, meta.size)
            self.replications += 1
            self.bytes_replicated += meta.size
            if self._counters is not None:
                self._counters.incr("replications")
                self._counters.incr("bytes_replicated", by=int(meta.size))
            if self.trace is not None and self.trace.active:
                self.trace.emit(self.sim.now, "cache", "replicator",
                                "replicate", level=TRACE_DETAIL, path=path,
                                src=source.id, dst=target, bytes=meta.size)
            done.succeed(path)

        self.sim.spawn(pump(), name=f"replicate:{path}->{target}")
        return done

    # -- the daemon loop -----------------------------------------------------
    def start(self) -> Process:
        """Spawn the periodic replication process (returns it)."""
        if self._proc is None:
            self._proc = self.sim.spawn(self._run(), name="replicator")
        return self._proc

    def run_cycle(self) -> List[Tuple[str, int]]:
        """One immediate plan+execute pass (also used by the loop)."""
        self.cycles += 1
        planned = self.plan()
        for path, target in planned:
            self.replicate(path, target)
        return planned

    def _run(self) -> Iterator[Event]:
        while True:
            yield self.sim.timeout(self.period)
            self.run_cycle()
