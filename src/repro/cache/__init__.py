"""Cooperative caching: the cluster-wide view of every node's RAM.

§4.1 attributes SWEB's superlinear speedup to aggregate cluster memory,
yet the scheduler itself is blind to *where* files are resident: the
:class:`~repro.cluster.memory.PageCache` is node-local state and the
cost model's ``t_data`` term only distinguishes disk from NFS.  This
package closes that gap with three cooperating parts:

* :class:`CacheDirectory` — each node's (stale-tolerant) picture of
  which files its peers hold in RAM, fed by :class:`CacheReport`
  summaries piggybacked on the periodic loadd broadcasts and aged out
  by a TTL so muted or partitioned peers disappear from the directory
  exactly as they disappear from the load view;
* :class:`FileHeat` — per-file request counters that expose the Zipf
  hot set of a running workload;
* :class:`ReplicationDaemon` — a periodic process that detects skew in
  the heat counters and proactively copies hot documents into
  underloaded peers' caches over the *real* simulated interconnect,
  paying the transfer cost the CDN literature trades against load
  balance (arXiv:1610.04513, arXiv:1009.4563).

The consumers live one layer up: ``core.loadd`` ships the reports,
``core.costmodel`` prices a RAM-resident candidate at memory-copy
bandwidth (LARD-style locality awareness), and ``core.sweb`` wires the
daemon.  See ``docs/CACHING.md``.
"""

from .directory import CacheDirectory, CacheReport, hot_set
from .replication import ReplicationDaemon
from .stats import FileHeat

__all__ = [
    "CacheDirectory",
    "CacheReport",
    "FileHeat",
    "ReplicationDaemon",
    "hot_set",
]
