"""Per-file request heat counters for skew detection.

The replication daemon needs to know *which* documents are hot before it
can spread them: :class:`FileHeat` is the shared tally the HTTP servers
feed on every fulfilled request.  It is deliberately simple — monotone
counters, no decay — because the experiments run over minutes of
simulated time where the Zipf hot set is stationary; a production system
would swap in a sliding window here without touching the consumers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["FileHeat"]


class FileHeat:
    """Monotone per-file request counters shared by a cluster's servers."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._bytes: Dict[str, float] = {}
        self.total = 0

    def record(self, path: str, nbytes: float = 0.0) -> None:
        """Count one served request for ``path`` of ``nbytes`` body bytes."""
        self._counts[path] = self._counts.get(path, 0) + 1
        self._bytes[path] = self._bytes.get(path, 0.0) + nbytes
        self.total += 1

    def count(self, path: str) -> int:
        """Requests recorded for ``path`` so far."""
        return self._counts.get(path, 0)

    def bytes_for(self, path: str) -> float:
        """Body bytes served for ``path`` so far."""
        return self._bytes.get(path, 0.0)

    @property
    def total_bytes(self) -> float:
        """Body bytes served across all recorded requests."""
        return sum(self._bytes.values())

    def mean_count(self) -> float:
        """Average request count over all files seen at least once."""
        if not self._counts:
            return 0.0
        return self.total / len(self._counts)

    def mean_bytes(self) -> float:
        """Average served bytes over all files seen at least once."""
        if not self._bytes:
            return 0.0
        return self.total_bytes / len(self._bytes)

    def top(self, n: int) -> List[Tuple[str, int]]:
        """The ``n`` hottest paths as ``(path, count)``, deterministically.

        Sorted by descending count, then path, so equal-heat files rank
        in a stable order independent of dict insertion history.
        """
        ranked = sorted(self._counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:max(n, 0)]

    def top_bytes(self, n: int) -> List[Tuple[str, float]]:
        """The ``n`` paths with the most served bytes, deterministically.

        Byte volume, not request count, is what loads a disk: a 3 MB
        document requested 5 times outweighs a 100 KB page requested 50
        times.  The replication daemon plans from this ranking.
        """
        ranked = sorted(self._bytes.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:max(n, 0)]
