"""Cross-cutting invariants every fuzzed run must satisfy.

The oracle is pure: it looks only at the :class:`~repro.fuzz.executor.
CaseOutcome` evidence and returns :class:`Violation` records.  Each
invariant is a named check so a failure carries a stable key the
shrinker can hold fixed while minimizing:

* ``determinism`` — the same config fingerprints identically on every
  independent run (the repo's core guarantee);
* ``shard-merge`` — a grid folded through a 2-worker pool is
  bit-identical (grid fingerprint *and* merged registry snapshot) to
  the serial fold;
* ``starvation`` — every offered request reaches a terminal record;
  nothing is silently lost between workload and metrics;
* ``conservation`` — terminal states partition the settled set
  (completed + dropped never exceeds it; on the fluid path every
  processed request is served by exactly one node);
* ``cache-bytes`` — every page cache's used bytes equal the sum of its
  resident entries and never exceed capacity, and its hit/miss/eviction
  counters are sane; on the geo path each edge site's resident replica
  bytes additionally stay within its drawn budget (docs/GEO.md);
* ``trace`` — every sampled trace is structurally well-formed and its
  stage breakdown reconciles with the record's measured latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from .executor import CaseOutcome

__all__ = ["INVARIANTS", "Violation", "check_outcome", "failure_key"]

#: the invariant keys, in the order they are checked
INVARIANTS: tuple[str, ...] = (
    "determinism", "shard-merge", "starvation", "conservation",
    "cache-bytes", "trace",
)

_BYTE_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough detail to read the failure."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def _check_determinism(outcome: CaseOutcome) -> list[Violation]:
    out = []
    if len(set(outcome.fingerprints)) > 1:
        out.append(Violation(
            "determinism",
            f"independent runs fingerprint differently: "
            f"{outcome.fingerprints}"))
    return out


def _check_shard_merge(outcome: CaseOutcome) -> list[Violation]:
    out = []
    if (outcome.grid_fingerprints
            and len(set(outcome.grid_fingerprints)) > 1):
        out.append(Violation(
            "shard-merge",
            f"grid fingerprint differs between workers=1 and workers=2: "
            f"{outcome.grid_fingerprints}"))
    if (outcome.merged_snapshots
            and len(set(outcome.merged_snapshots)) > 1):
        out.append(Violation(
            "shard-merge",
            "merged registry snapshot differs between workers=1 and "
            "workers=2"))
    return out


def _check_starvation(outcome: CaseOutcome) -> list[Violation]:
    out = []
    if outcome.settled != outcome.offered:
        out.append(Violation(
            "starvation",
            f"{outcome.offered} requests offered but only "
            f"{outcome.settled} reached a terminal record"))
    return out


def _check_conservation(outcome: CaseOutcome) -> list[Violation]:
    out = []
    if outcome.completed + outcome.dropped > outcome.settled:
        out.append(Violation(
            "conservation",
            f"completed ({outcome.completed}) + dropped "
            f"({outcome.dropped}) exceeds settled ({outcome.settled})"))
    if outcome.config.mode == "fluid" and outcome.completed != outcome.settled:
        out.append(Violation(
            "conservation",
            f"fluid per-node served counts sum to {outcome.completed}, "
            f"expected {outcome.settled}"))
    return out


def _check_cache_bytes(outcome: CaseOutcome) -> list[Violation]:
    out = []
    for account in outcome.caches:
        node = int(account["node"])
        used = account["used_bytes"]
        capacity = account["capacity_bytes"]
        entries = account["entry_bytes"]
        if used > capacity + _BYTE_EPS:
            out.append(Violation(
                "cache-bytes",
                f"node {node}: cache holds {used} bytes over its "
                f"{capacity}-byte capacity"))
        if abs(used - entries) > _BYTE_EPS:
            out.append(Violation(
                "cache-bytes",
                f"node {node}: used_bytes {used} disagrees with resident "
                f"entries' {entries}"))
        for counter in ("hits", "misses", "evictions"):
            if account[counter] < 0:
                out.append(Violation(
                    "cache-bytes",
                    f"node {node}: negative {counter} count "
                    f"{account[counter]}"))
    for account in outcome.geo_budgets:
        edge = int(account["edge"])
        resident = account["resident_bytes"]
        budget = account["budget_bytes"]
        if resident > budget + _BYTE_EPS:
            out.append(Violation(
                "cache-bytes",
                f"edge {edge}: {resident} resident geo-replica bytes "
                f"exceed the {budget}-byte site budget"))
    return out


def _check_trace(outcome: CaseOutcome) -> list[Violation]:
    return [Violation("trace", failure)
            for failure in outcome.trace_failures]


_CHECKS = {
    "determinism": _check_determinism,
    "shard-merge": _check_shard_merge,
    "starvation": _check_starvation,
    "conservation": _check_conservation,
    "cache-bytes": _check_cache_bytes,
    "trace": _check_trace,
}


def check_outcome(outcome: CaseOutcome) -> tuple[Violation, ...]:
    """Every violated invariant, in canonical order (empty = green)."""
    violations: list[Violation] = []
    for key in INVARIANTS:
        violations.extend(_CHECKS[key](outcome))
    return tuple(violations)


def failure_key(violations: tuple[Violation, ...]) -> str | None:
    """The stable identity of a failure: its first broken invariant."""
    return violations[0].invariant if violations else None
