"""Randomized end-to-end configurations, reproducible from one seed.

A :class:`FuzzConfig` is a complete, JSON-serializable description of
one simulated deployment: topology (node count, homogeneous or
mixed-generation hardware), client-population model (per-client burst
or aggregate fluid), workload shape (uniform or Zipf, optionally
adversarial), fault plan (the CLI spec-string grammar), and the
cache/broker/mitigation knobs.  :func:`generate_config` draws every
field from registered :class:`~repro.sim.rng.RandomStreams` substreams
seeded by ``(root_seed, case_index)``, so the whole campaign — and any
single case — replays exactly from two integers, and a shrunk failing
case replays from its JSON alone.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, replace
from typing import Any, Optional

from ..faults import FaultPlan
from ..sched import fluid_policy_names, per_client_policy_names
from ..sim import RandomStreams
from ..workload import adversary_names

__all__ = [
    "FULL_PROFILE",
    "FUZZ_FORMAT",
    "FuzzConfig",
    "FuzzProfile",
    "SMOKE_PROFILE",
    "case_seed",
    "generate_config",
    "profile_by_name",
]

#: artifact format version stamped into replay JSON
FUZZ_FORMAT = 1


@dataclass(frozen=True)
class FuzzProfile:
    """Generation bounds: how big the drawn configurations may get."""

    name: str
    max_nodes: int = 5
    #: fluid-mode request-count range (inclusive)
    fluid_requests: tuple[int, int] = (4_000, 16_000)
    #: per-client-mode offered requests-per-second range (inclusive)
    rps: tuple[int, int] = (2, 5)
    #: per-client-mode run length range, seconds
    duration: tuple[float, float] = (4.0, 10.0)
    #: corpus size range (inclusive)
    n_files: tuple[int, int] = (24, 80)
    #: fraction of cases drawn on the fluid path
    fluid_fraction: float = 0.5
    #: fraction of per-client cases that get a fault plan
    fault_fraction: float = 0.45
    #: fraction of per-client cases driven by an adversary
    adversary_fraction: float = 0.4
    #: fraction of cases drawn on the multi-site geo path (docs/GEO.md)
    geo_fraction: float = 0.15


#: the CI gate: ~20 cases of this finish well under a minute
SMOKE_PROFILE = FuzzProfile(name="smoke")

#: overnight-campaign sizing
FULL_PROFILE = FuzzProfile(
    name="full", max_nodes=8, fluid_requests=(20_000, 80_000),
    rps=(4, 10), duration=(10.0, 25.0), n_files=(48, 160))

_PROFILES = {p.name: p for p in (SMOKE_PROFILE, FULL_PROFILE)}


def profile_by_name(name: str) -> FuzzProfile:
    """Look up a generation profile (``smoke`` or ``full``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown fuzz profile {name!r}; "
                       f"choose from {sorted(_PROFILES)}") from None


@dataclass(frozen=True)
class FuzzConfig:
    """One complete fuzz case: everything the executor needs, as data.

    Only JSON-native field types, so a failing case round-trips through
    ``--out``/``--replay`` artifacts losslessly.
    """

    case_id: str
    mode: str                     # "fluid" | "scenario" | "geo"
    seed: int                     # the simulation seed
    nodes: int
    policy: str
    heterogeneous: bool = False
    #: Zipf exponent for path popularity; None = uniform
    alpha: Optional[float] = None
    # -- fluid-path knobs --
    rate: float = 0.0             # offered requests/second
    n_requests: int = 0
    # -- per-client-path knobs --
    rps: int = 0
    duration: float = 0.0
    n_files: int = 0
    file_bytes: float = 0.0
    adversary: Optional[str] = None
    #: fault plan in the CLI spec-string grammar (docs/FAULTS.md)
    faults: Optional[str] = None
    graceful: bool = False
    coop_cache: bool = False
    replicate: bool = False
    dns_ttl: float = 0.0
    hosts_per_profile: int = 1
    # -- geo-path knobs (mode == "geo" only; docs/GEO.md) --
    #: total site count (origin + edges), 1..3; 0 = not a geo case
    geo_sites: int = 0
    #: one origin<->edge WAN latency per edge site, seconds
    geo_edge_latencies: tuple[float, ...] = ()
    geo_wan_bandwidth: float = 0.0
    #: per-edge replica RAM budget, MB (0 = never cache at the edge)
    geo_budget_mb: float = 0.0

    # -- validation -------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` unless the tuple describes a runnable case."""
        if self.mode not in ("fluid", "scenario", "geo"):
            raise ValueError(f"mode must be 'fluid', 'scenario' or 'geo', "
                             f"got {self.mode!r}")
        if self.mode != "geo" and (
                self.geo_sites or self.geo_edge_latencies
                or self.geo_wan_bandwidth or self.geo_budget_mb):
            raise ValueError("geo knobs are set on a non-geo case")
        if self.nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {self.nodes}")
        if self.alpha is not None and self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")
        if self.replicate and not self.coop_cache:
            raise ValueError("replicate requires coop_cache")
        if self.dns_ttl < 0:
            raise ValueError(f"negative dns_ttl: {self.dns_ttl}")
        if self.hosts_per_profile < 1:
            raise ValueError(
                f"hosts_per_profile must be >= 1, got {self.hosts_per_profile}")
        if self.mode == "geo":
            if not 1 <= self.geo_sites <= 3:
                raise ValueError(
                    f"geo case needs 1..3 sites, got {self.geo_sites}")
            if len(self.geo_edge_latencies) != self.geo_sites - 1:
                raise ValueError(
                    f"{self.geo_sites} sites need "
                    f"{self.geo_sites - 1} edge latencies, got "
                    f"{len(self.geo_edge_latencies)}")
            if any(latency < 0 for latency in self.geo_edge_latencies):
                raise ValueError(
                    f"negative WAN latency: {self.geo_edge_latencies}")
            if self.geo_wan_bandwidth <= 0:
                raise ValueError(
                    f"geo case needs WAN bandwidth > 0, "
                    f"got {self.geo_wan_bandwidth}")
            if self.geo_budget_mb < 0:
                raise ValueError(
                    f"negative geo budget: {self.geo_budget_mb}")
            if self.rps < 1 or self.duration <= 0:
                raise ValueError(
                    f"geo case needs rps >= 1 and duration > 0, "
                    f"got rps={self.rps}, duration={self.duration}")
            if self.n_files < 1 or self.file_bytes <= 0:
                raise ValueError(
                    f"geo case needs a corpus, got n_files={self.n_files}, "
                    f"file_bytes={self.file_bytes}")
            if self.adversary is not None or self.faults is not None:
                raise ValueError("adversaries and fault plans run on the "
                                 "per-client path only")
            if self.coop_cache or self.replicate or self.heterogeneous:
                raise ValueError("geo cases draw homogeneous sites with "
                                 "the intra-site cache knobs off")
            return
        if self.mode == "fluid":
            if self.policy not in fluid_policy_names():
                raise ValueError(f"{self.policy!r} is not a fluid policy")
            if self.rate <= 0 or self.n_requests < 1:
                raise ValueError(
                    f"fluid case needs rate > 0 and n_requests >= 1, "
                    f"got rate={self.rate}, n_requests={self.n_requests}")
            if self.adversary is not None or self.faults is not None:
                raise ValueError("adversaries and fault plans run on the "
                                 "per-client path only")
            return
        if self.policy not in per_client_policy_names():
            raise ValueError(f"{self.policy!r} is not a per-client policy")
        if self.rps < 1 or self.duration <= 0:
            raise ValueError(f"scenario case needs rps >= 1 and duration > 0, "
                             f"got rps={self.rps}, duration={self.duration}")
        if self.n_files < 1 or self.file_bytes <= 0:
            raise ValueError(
                f"scenario case needs a corpus, got n_files={self.n_files}, "
                f"file_bytes={self.file_bytes}")
        if self.adversary is not None and self.adversary not in adversary_names():
            raise ValueError(f"unknown adversary {self.adversary!r}")
        if self.faults is not None:
            FaultPlan.parse(self.faults).validate(self.nodes)

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzConfig":
        data = dict(data)
        if "geo_edge_latencies" in data:  # JSON round-trips tuples as lists
            data["geo_edge_latencies"] = tuple(data["geo_edge_latencies"])
        config = cls(**data)
        config.validate()
        return config

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FuzzConfig":
        return cls.from_dict(json.loads(text))

    def simplified(self, **changes: Any) -> "FuzzConfig":
        """A copy with ``changes`` applied (the shrinker's edit step)."""
        return replace(self, **changes)


def case_seed(root_seed: int, index: int) -> int:
    """The per-case master seed: a deterministic mix of campaign seed
    and case index, so cases are independent yet individually
    re-derivable."""
    if index < 0:
        raise ValueError(f"negative case index: {index}")
    return (root_seed * 1_000_003 + index * 7_919 + 11) % (2 ** 63)


def _draw_faults(rng: RandomStreams, nodes: int, duration: float) -> str:
    """One or two fault clauses, windows inside the run."""
    clauses = []
    for _ in range(1 + rng.integers("fuzz-faults", 0, 2)):
        kind = rng.choice(
            "fuzz-faults",
            ["crash", "slowdisk", "mute", "partition", "corrupt"])
        start = round(rng.uniform("fuzz-faults", 0.2, 0.5) * duration, 2)
        end = round(rng.uniform("fuzz-faults", 0.6, 0.95) * duration, 2)
        node = rng.integers("fuzz-faults", 0, nodes)
        if kind == "partition":
            clauses.append(f"partition:{start}-{end}")
        elif kind == "slowdisk":
            factor = 2 + rng.integers("fuzz-faults", 0, 5)
            clauses.append(f"slowdisk:n{node}@{start}-{end}x{factor}")
        elif kind == "corrupt":
            clauses.append(f"corrupt:n{node}@{start}-{end}x0")
        else:   # crash (with restart) / mute
            clauses.append(f"{kind}:n{node}@{start}-{end}")
    return ",".join(clauses)


def _generate_geo_config(rng: RandomStreams, case_id: str) -> FuzzConfig:
    """Draw one multi-site case: topology, link matrix and budget all
    come from the ``fuzz-geo`` substream (docs/GEO.md)."""
    sites = 1 + int(rng.integers("fuzz-geo", 0, 3))
    latencies = tuple(round(rng.uniform("fuzz-geo", 0.01, 0.12), 4)
                      for _ in range(sites - 1))
    bandwidth = round(rng.uniform("fuzz-geo", 2e6, 16e6), 1)
    budget_mb = float(rng.choice("fuzz-geo", [0.0, 1.0, 4.0, 16.0]))
    config = FuzzConfig(
        case_id=case_id, mode="geo",
        seed=int(rng.integers("fuzz-geo", 1, 1_000_000)),
        nodes=int(rng.integers("fuzz-geo", 2, 5)),
        policy="sweb",
        alpha=round(rng.uniform("fuzz-geo", 0.8, 1.3), 3),
        rps=int(rng.integers("fuzz-geo", 8, 21)),
        duration=round(rng.uniform("fuzz-geo", 3.0, 7.0), 1),
        n_files=int(rng.integers("fuzz-geo", 16, 49)),
        file_bytes=float(round(math.exp(
            rng.uniform("fuzz-geo", math.log(2e4), math.log(1e5))))),
        graceful=rng.uniform("fuzz-geo") < 0.5,
        geo_sites=sites, geo_edge_latencies=latencies,
        geo_wan_bandwidth=bandwidth, geo_budget_mb=budget_mb)
    config.validate()
    return config


def generate_config(root_seed: int, index: int,
                    profile: FuzzProfile = SMOKE_PROFILE) -> FuzzConfig:
    """Draw case ``index`` of the campaign seeded by ``root_seed``."""
    rng = RandomStreams(seed=case_seed(root_seed, index))
    case_id = f"fuzz-s{root_seed}-c{index:04d}"
    # The geo decision and every geo draw live on their own substream so
    # adding the dimension left all pre-geo case draws untouched.
    if rng.uniform("fuzz-geo") < profile.geo_fraction:
        return _generate_geo_config(rng, case_id)
    fluid = rng.uniform("fuzz-shape") < profile.fluid_fraction
    nodes = int(rng.integers("fuzz-shape", 2, profile.max_nodes + 1))
    heterogeneous = rng.uniform("fuzz-shape") < 0.5
    sim_seed = int(rng.integers("fuzz-shape", 1, 1_000_000))

    zipf = rng.uniform("fuzz-workload") < 0.6
    alpha = round(rng.uniform("fuzz-workload", 0.6, 1.2), 3) if zipf else None

    if fluid:
        policy = rng.choice("fuzz-shape", list(fluid_policy_names()))
        lo, hi = profile.fluid_requests
        n_requests = int(rng.integers("fuzz-workload", lo, hi + 1))
        rate = round(nodes * rng.uniform("fuzz-workload", 300.0, 900.0), 1)
        config = FuzzConfig(case_id=case_id, mode="fluid", seed=sim_seed,
                            nodes=nodes, policy=policy,
                            heterogeneous=heterogeneous, alpha=alpha,
                            rate=rate, n_requests=n_requests)
        config.validate()
        return config

    policy = rng.choice("fuzz-shape", list(per_client_policy_names()))
    rps = int(rng.integers("fuzz-workload", profile.rps[0],
                           profile.rps[1] + 1))
    duration = round(rng.uniform("fuzz-workload", *profile.duration), 1)
    n_files = int(rng.integers("fuzz-workload", profile.n_files[0],
                               profile.n_files[1] + 1))
    file_bytes = float(round(math.exp(
        rng.uniform("fuzz-workload", math.log(1e4), math.log(4e5)))))
    adversary: Optional[str] = None
    if rng.uniform("fuzz-workload") < profile.adversary_fraction:
        adversary = rng.choice("fuzz-workload", list(adversary_names()))
    faults: Optional[str] = None
    if rng.uniform("fuzz-faults") < profile.fault_fraction:
        faults = _draw_faults(rng, nodes, duration)

    graceful = rng.uniform("fuzz-knobs") < 0.5
    coop_cache = rng.uniform("fuzz-knobs") < 0.4
    replicate = coop_cache and rng.uniform("fuzz-knobs") < 0.4
    dns_ttl = float(rng.choice("fuzz-knobs", [0.0, 0.0, 60.0, 600.0]))
    hosts = int(rng.integers("fuzz-knobs", 1, 5))

    config = FuzzConfig(case_id=case_id, mode="scenario", seed=sim_seed,
                        nodes=nodes, policy=policy,
                        heterogeneous=heterogeneous, alpha=alpha,
                        rps=rps, duration=duration, n_files=n_files,
                        file_bytes=file_bytes, adversary=adversary,
                        faults=faults, graceful=graceful,
                        coop_cache=coop_cache, replicate=replicate,
                        dns_ttl=dns_ttl, hosts_per_profile=hosts)
    config.validate()
    return config
