"""The fuzz campaign driver: generate → execute → judge → shrink.

:func:`run_fuzz` runs ``n_cases`` seeded configurations through the
executor and oracle; any failure is greedily minimized by the shrinker
(re-running the executor at every probe) into a replayable artifact.
:func:`replay_case` re-runs one saved case — the other half of the
``sweb-repro fuzz --out case.json`` / ``fuzz --replay case.json``
workflow.

The executor is injected everywhere (``runner=``) so tests can break
invariants deliberately and watch the oracle catch and the shrinker
minimize them, without monkeypatching module internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from . import executor as _executor
from .executor import CaseOutcome
from .generator import (
    FUZZ_FORMAT,
    FuzzConfig,
    FuzzProfile,
    SMOKE_PROFILE,
    generate_config,
)
from .oracle import Violation, check_outcome, failure_key
from .shrinker import shrink

__all__ = [
    "CaseReport",
    "FuzzReport",
    "case_artifact",
    "config_from_artifact",
    "replay_case",
    "run_fuzz",
]

CaseRunner = Callable[[FuzzConfig], CaseOutcome]


@dataclass(frozen=True)
class CaseReport:
    """One case's verdict (plus its minimized form when it failed)."""

    config: FuzzConfig
    violations: tuple[Violation, ...] = ()
    shrunk: Optional[FuzzConfig] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def key(self) -> Optional[str]:
        return failure_key(self.violations)

    def summary_line(self) -> str:
        config = self.config
        shape = (f"{config.mode}/{config.policy} n{config.nodes}"
                 f"{'het' if config.heterogeneous else ''}")
        extras = [x for x in (config.adversary,
                              "faults" if config.faults else None) if x]
        tag = f" +{'+'.join(extras)}" if extras else ""
        verdict = "ok" if self.ok else f"FAIL {self.key}"
        return f"{config.case_id}  {shape}{tag}  {verdict}"


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    root_seed: int
    profile: str
    cases: list[CaseReport] = field(default_factory=list)

    @property
    def n_cases(self) -> int:
        return len(self.cases)

    @property
    def failures(self) -> list[CaseReport]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> list[str]:
        lines = [c.summary_line() for c in self.cases]
        lines.append(
            f"fuzz seed={self.root_seed} profile={self.profile}: "
            f"{self.n_cases - len(self.failures)}/{self.n_cases} cases green")
        return lines


def _probe(runner: CaseRunner) -> Callable[[FuzzConfig], Optional[str]]:
    """Wrap the executor+oracle into the shrinker's failure predicate."""
    def probe(config: FuzzConfig) -> Optional[str]:
        return failure_key(check_outcome(runner(config)))
    return probe


def run_fuzz(root_seed: int = 7, n_cases: int = 20,
             profile: FuzzProfile = SMOKE_PROFILE,
             shrink_failures: bool = True,
             runner: Optional[CaseRunner] = None) -> FuzzReport:
    """Run a seeded campaign; failures come back shrunk and replayable."""
    if n_cases < 1:
        raise ValueError(f"n_cases must be >= 1, got {n_cases}")
    run = runner if runner is not None else _executor.run_case
    report = FuzzReport(root_seed=root_seed, profile=profile.name)
    for index in range(n_cases):
        config = generate_config(root_seed, index, profile)
        violations = check_outcome(run(config))
        shrunk: Optional[FuzzConfig] = None
        if violations and shrink_failures:
            shrunk, _ = shrink(config, _probe(run),
                               key=failure_key(violations))
        report.cases.append(CaseReport(config=config, violations=violations,
                                       shrunk=shrunk))
    return report


def replay_case(config: FuzzConfig,
                runner: Optional[CaseRunner] = None) -> CaseReport:
    """Re-run one saved case (no shrinking — it is already minimal)."""
    run = runner if runner is not None else _executor.run_case
    return CaseReport(config=config, violations=check_outcome(run(config)))


def case_artifact(report: CaseReport) -> dict[str, Any]:
    """The JSON-ready replay artifact for one failing case."""
    failing = report.shrunk if report.shrunk is not None else report.config
    return {
        "format": FUZZ_FORMAT,
        "invariant": report.key,
        "violations": [str(v) for v in report.violations],
        "case": failing.to_dict(),
        "original_case": report.config.to_dict(),
    }


def config_from_artifact(data: dict[str, Any]) -> FuzzConfig:
    """Load the (shrunk) case out of a replay artifact or bare config."""
    if "case" in data:
        payload = data["case"]
        if data.get("format", FUZZ_FORMAT) != FUZZ_FORMAT:
            raise ValueError(
                f"unsupported fuzz artifact format {data.get('format')!r}")
    else:
        payload = data
    return FuzzConfig.from_dict(payload)
