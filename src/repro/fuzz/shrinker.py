"""Greedy delta-debugging over :class:`FuzzConfig`.

Given a failing config and a predicate that re-runs it and reports
*which* invariant broke, the shrinker repeatedly tries simplifying
edits — drop a fault clause, neutralize the adversary, flatten the
topology, halve the load — and keeps any edit under which the **same**
invariant still fails.  Every accepted edit strictly decreases the
config's size measure, so shrinking terminates and is idempotent:
re-shrinking a minimum changes nothing.

The predicate is injected (any ``FuzzConfig -> Optional[str]``), which
keeps the algorithm cheap to property-test without running simulations.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Optional

from .generator import FuzzConfig

__all__ = ["config_size", "shrink", "shrink_candidates"]

#: an edit predicate: run the config, return the broken invariant's key
#: (``None`` = the config passes)
FailureProbe = Callable[[FuzzConfig], Optional[str]]


def config_size(config: FuzzConfig) -> float:
    """A strictly-decreasing measure over every shrink edit."""
    faults = len(config.faults.split(",")) if config.faults else 0
    flags = sum((config.heterogeneous, config.graceful, config.coop_cache,
                 config.replicate, config.adversary is not None,
                 config.alpha is not None, config.dns_ttl > 0,
                 config.geo_budget_mb > 0))
    load = (math.log2(max(2, config.n_requests))
            + math.log2(max(2, config.rps + 1))
            + math.log2(max(2.0, config.duration))
            + math.log2(max(2, config.n_files + 1))
            + math.log2(max(2.0, config.rate + 2.0)))
    return (10.0 * faults + 5.0 * flags + config.nodes
            + config.hosts_per_profile + 4.0 * config.geo_sites + load)


def shrink_candidates(config: FuzzConfig) -> Iterator[FuzzConfig]:
    """Candidate simplifications, most aggressive first.

    Every yielded config differs from ``config`` and has a strictly
    smaller :func:`config_size`; invalid candidates (e.g. a fault clause
    naming a node the shrunken topology no longer has) are filtered by
    the caller through ``validate()``.
    """
    if config.faults:
        clauses = config.faults.split(",")
        if len(clauses) > 1:
            for i in range(len(clauses)):
                rest = ",".join(clauses[:i] + clauses[i + 1:])
                yield config.simplified(faults=rest)
        yield config.simplified(faults=None)
    if config.adversary is not None:
        yield config.simplified(adversary=None)
    if config.heterogeneous:
        yield config.simplified(heterogeneous=False)
    if config.replicate:
        yield config.simplified(replicate=False)
    if config.coop_cache and not config.replicate:
        yield config.simplified(coop_cache=False)
    if config.graceful:
        yield config.simplified(graceful=False)
    if config.alpha is not None:
        yield config.simplified(alpha=None)
    if config.dns_ttl > 0:
        yield config.simplified(dns_ttl=0.0)
    if config.hosts_per_profile > 1:
        yield config.simplified(hosts_per_profile=1)
    if config.mode == "geo":
        if config.geo_sites > 1:  # drop the farthest edge site
            yield config.simplified(
                geo_sites=config.geo_sites - 1,
                geo_edge_latencies=config.geo_edge_latencies[:-1])
        if config.geo_budget_mb > 0:
            yield config.simplified(geo_budget_mb=0.0)
    if config.mode == "fluid":
        if config.n_requests > 1_000:
            yield config.simplified(
                n_requests=max(1_000, config.n_requests // 2))
        if config.rate > 200.0:
            yield config.simplified(rate=max(200.0, round(config.rate / 2, 1)))
    else:
        if config.rps > 1:
            yield config.simplified(rps=max(1, config.rps // 2))
        if config.duration > 2.0:
            yield config.simplified(
                duration=max(2.0, round(config.duration / 2, 1)))
        if config.n_files > 8:
            yield config.simplified(n_files=max(8, config.n_files // 2))
    if config.nodes > 2:
        yield config.simplified(nodes=config.nodes - 1)


def shrink(config: FuzzConfig, probe: FailureProbe,
           key: Optional[str] = None,
           max_probes: int = 200) -> tuple[FuzzConfig, str]:
    """Minimize ``config`` while ``probe`` keeps reporting ``key``.

    ``key`` defaults to whatever ``probe(config)`` reports; raises
    ``ValueError`` if the starting config does not fail at all.
    Returns the minimized config and the preserved failure key.
    ``max_probes`` bounds the total number of predicate evaluations
    (each one may be a full simulation).
    """
    if key is None:
        key = probe(config)
    if key is None:
        raise ValueError(f"{config.case_id}: config does not fail, "
                         f"nothing to shrink")
    probes = 0
    current = config
    improved = True
    while improved and probes < max_probes:
        improved = False
        for candidate in shrink_candidates(current):
            try:
                candidate.validate()
            except ValueError:
                continue
            probes += 1
            if probe(candidate) == key:
                current = candidate
                improved = True
                break
            if probes >= max_probes:
                break
    return current, key
