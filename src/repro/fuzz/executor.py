"""Run one fuzz case through the real execution paths, twice.

The executor never judges — it only *collects*.  Each case runs through
the same entry points the experiments use (:func:`repro.workload.run_fluid`,
:func:`repro.experiments.run_scenario`, :func:`repro.experiments.run_grid`)
and everything the oracle later inspects is gathered into a flat
:class:`CaseOutcome`: independent-run fingerprints, serial-vs-pooled
grid results, request-accounting totals, per-node page-cache byte
accounting, and per-trace reconciliation failures.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

from dataclasses import replace

from ..cluster.topology import heterogeneous_meiko, meiko_cs2
from ..core import CostParameters
from ..experiments import (
    FluidCell,
    ScenarioResult,
    run_grid,
    run_scenario,
    scenario_record_lines,
)
from ..geo import GeoResult, GeoScenario, GeoSpec, SiteSpec, WanLink, run_geo
from ..obs import Tracer
from ..sched import SpeedFactors
from ..sim import RandomStreams
from ..workload import (
    FluidScenario,
    Scenario,
    burst_workload,
    make_adversary,
    run_fluid,
    uniform_corpus,
    uniform_sampler,
    zipf_sampler,
)
from .generator import FuzzConfig

__all__ = [
    "CaseOutcome",
    "build_fluid_scenario",
    "build_geo_scenario",
    "build_geo_spec",
    "build_scenario",
    "case_speed_factors",
    "run_case",
]

#: per-node hardware palette for fuzzed heterogeneous clusters: cycled
#: to any node count (unlike MIXED_GENERATION's fixed six), covering
#: fast/baseline/slow generations on every resource.
_HET_CPU = (1.5, 1.0, 0.5, 1.25, 0.75, 1.0)
_HET_DISK = (1.25, 1.0, 0.75, 1.0, 0.75, 1.25)
_HET_MEM = (1.25, 1.0, 0.75, 1.25, 1.0, 0.75)


def case_speed_factors(nodes: int) -> SpeedFactors:
    """Deterministic mixed-generation factors for any cluster size."""
    return SpeedFactors(
        cpu=tuple(_HET_CPU[i % len(_HET_CPU)] for i in range(nodes)),
        disk=tuple(_HET_DISK[i % len(_HET_DISK)] for i in range(nodes)),
        mem=tuple(_HET_MEM[i % len(_HET_MEM)] for i in range(nodes)))


def _workload_seed(config: FuzzConfig) -> int:
    """The workload generator's seed, derived from the case's sim seed
    so the arrival process is independent of the cluster's streams."""
    return (config.seed * 2_654_435_761 + 97) % (2 ** 63)


@dataclass(frozen=True)
class CaseOutcome:
    """Everything the oracle inspects about one executed case."""

    config: FuzzConfig
    #: determinism fingerprints of the independent full runs
    fingerprints: tuple[str, ...]
    #: requests the workload offered / that reached a terminal state /
    #: that completed OK / that were dropped
    offered: int
    settled: int
    completed: int
    dropped: int
    finished_at: float
    #: per-node page-cache byte accounting (per-client path only)
    caches: tuple[dict[str, float], ...] = ()
    #: traces inspected / reconciliation failures found
    trace_checked: int = 0
    trace_failures: tuple[str, ...] = ()
    #: grid fingerprints at workers=1 vs workers=2 (fluid path only)
    grid_fingerprints: tuple[str, ...] = ()
    #: canonical-JSON merged registry snapshots, workers=1 vs workers=2
    merged_snapshots: tuple[str, ...] = ()
    #: per-edge geo replica accounting: resident bytes vs budget (geo path)
    geo_budgets: tuple[dict[str, float], ...] = ()


# -- builders (module-level, so grid cells pickle) -------------------------
def build_fluid_scenario(config: FuzzConfig, seed: Optional[int] = None
                         ) -> FluidScenario:
    """Materialize a fluid-path scenario from a fuzz config."""
    scenario = FluidScenario(
        name=config.case_id, nodes=config.nodes, rate=config.rate,
        n_requests=config.n_requests,
        n_paths=max(64, config.n_files or 256),
        alpha=config.alpha, seed=config.seed if seed is None else seed,
        policy=config.policy)
    if config.heterogeneous:
        scenario = scenario.with_speed_factors(
            case_speed_factors(config.nodes))
    scenario.validate()
    return scenario


def build_scenario(config: FuzzConfig) -> Scenario:
    """Materialize a per-client-path scenario (fresh tracer each call)."""
    spec = (heterogeneous_meiko(config.nodes, case_speed_factors(config.nodes))
            if config.heterogeneous else meiko_cs2(config.nodes))
    corpus = uniform_corpus(config.n_files, config.file_bytes, config.nodes)
    rng = RandomStreams(seed=_workload_seed(config))
    overrides: dict[str, Any] = {}
    if config.adversary is not None:
        workload, overrides = make_adversary(
            config.adversary, corpus, rng,
            rps=config.rps, duration=config.duration)
    elif config.alpha is not None:
        workload = burst_workload(
            config.rps, config.duration,
            zipf_sampler(corpus, rng, alpha=config.alpha))
    else:
        workload = burst_workload(config.rps, config.duration,
                                  uniform_sampler(corpus, rng))
    params = CostParameters(graceful_degradation=config.graceful,
                            coop_cache=config.coop_cache,
                            replicate=config.replicate)
    kwargs: dict[str, Any] = {"dns_ttl": config.dns_ttl,
                              "hosts_per_profile": config.hosts_per_profile}
    kwargs.update(overrides)
    return Scenario(name=config.case_id, spec=spec, corpus=corpus,
                    workload=workload, policy=config.policy,
                    seed=config.seed, params=params, faults=config.faults,
                    tracer=Tracer(max_requests=64), **kwargs)


# -- per-run collection ----------------------------------------------------
def _scenario_fingerprint(result: ScenarioResult) -> str:
    """The determinism digest of one per-client run — the same material
    :func:`repro.experiments.run_cell` digests for scenario cells."""
    digest = hashlib.sha256()
    for line in scenario_record_lines(result):
        digest.update(line.encode())
        digest.update(b"\n")
    counters = sorted(result.metrics.counters.as_dict().items())
    digest.update(repr(counters).encode())
    digest.update(repr(result.finished_at).encode())
    return digest.hexdigest()


def _node_cache_accounts(nodes) -> list[dict[str, float]]:
    """Page-cache byte accounting for one node list, from the live caches."""
    accounts = []
    for node in nodes:
        cache = node.cache
        accounts.append({
            "node": float(node.id),
            "used_bytes": float(cache.used_bytes),
            "capacity_bytes": float(cache.capacity),
            "entry_bytes": float(sum(size for _, size in cache.entries())),
            "hits": float(cache.hits),
            "misses": float(cache.misses),
            "evictions": float(cache.evictions),
        })
    return accounts


def _cache_accounts(result: ScenarioResult) -> tuple[dict[str, float], ...]:
    """Per-node page-cache byte accounting (per-client path)."""
    return tuple(_node_cache_accounts(result.cluster.nodes))


def _trace_failures(scenario: Scenario, result: ScenarioResult,
                    drained: bool) -> tuple[int, tuple[str, ...]]:
    """Reconcile every sampled trace against its record's latency.

    Only records the client saw *complete* are checked (the same filter
    ``sweb-repro trace`` applies): a dropped record's latency is cut
    short at the reset/timeout while the simulated server-side events
    legitimately run on.  Structural completeness (``Trace.problems()``)
    is additionally restricted to *drained* runs: the sim stops the
    instant the last request settles, so server-side work stalled by a
    fault or outliving a timed-out client leaves open spans by design.
    """
    tracer = scenario.tracer
    if tracer is None:
        return 0, ()
    checked = 0
    failures = []
    for rec in result.metrics.records:
        trace = tracer.get(rec.req_id)
        if trace is None or not rec.ok or rec.response_time is None:
            continue
        checked += 1
        if drained:
            for problem in trace.problems():
                failures.append(f"req {rec.req_id}: {problem}")
        if not trace.reconciles(rec.response_time):
            failures.append(
                f"req {rec.req_id}: stages do not reconcile with "
                f"latency {rec.response_time!r}")
    return checked, tuple(failures)


def _canonical_snapshot(snapshot: dict[str, Any]) -> str:
    return json.dumps(snapshot, sort_keys=True)


def _run_fluid_case(config: FuzzConfig) -> CaseOutcome:
    scenario = build_fluid_scenario(config)
    first = run_fluid(scenario, keep_records=False)
    second = run_fluid(scenario, keep_records=False)

    # the cross-worker merge check: a tiny grid at two derived seeds,
    # folded serially and through a 2-worker pool
    cells = [FluidCell(cell_id=f"{config.case_id}/g{k}",
                       scenario=build_fluid_scenario(
                           config, seed=config.seed + k))
             for k in range(2)]
    serial = run_grid(cells, workers=1)
    pooled = run_grid(cells, workers=2)

    return CaseOutcome(
        config=config,
        fingerprints=(first.fingerprint, second.fingerprint),
        offered=scenario.n_requests,
        settled=first.n_requests,
        completed=int(sum(first.served)),
        dropped=0,
        finished_at=first.finished_at,
        grid_fingerprints=(serial.grid_fingerprint, pooled.grid_fingerprint),
        merged_snapshots=(_canonical_snapshot(serial.merged),
                          _canonical_snapshot(pooled.merged)),
    )


def _run_scenario_case(config: FuzzConfig) -> CaseOutcome:
    first_scenario = build_scenario(config)
    offered = len(first_scenario.workload.arrivals)
    first = run_scenario(first_scenario)
    second = run_scenario(build_scenario(config))

    settled = sum(1 for rec in first.metrics.records if rec.end is not None)
    completed = sum(1 for rec in first.metrics.records if rec.ok)
    dropped = sum(1 for rec in first.metrics.records if rec.dropped)
    drained = (config.faults is None and config.adversary is None
               and dropped == 0 and settled == offered)
    checked, failures = _trace_failures(first_scenario, first, drained)

    return CaseOutcome(
        config=config,
        fingerprints=(_scenario_fingerprint(first),
                      _scenario_fingerprint(second)),
        offered=offered,
        settled=settled,
        completed=completed,
        dropped=dropped,
        finished_at=first.finished_at,
        caches=_cache_accounts(first),
        trace_checked=checked,
        trace_failures=failures,
    )


def build_geo_spec(config: FuzzConfig) -> GeoSpec:
    """The drawn multi-site topology: one origin plus 0..2 edges, each
    edge behind its drawn WAN latency; the edge-to-edge path routes
    through the origin (latency sum, half bandwidth)."""
    sites = [SiteSpec("origin", replace(meiko_cs2(config.nodes),
                                       name="origin"), weight=2.0)]
    links = []
    for i, latency in enumerate(config.geo_edge_latencies):
        name = f"edge{i}"
        sites.append(SiteSpec(name, replace(meiko_cs2(2), name=name),
                              weight=1.0))
        links.append(("origin", name,
                      WanLink(latency=latency,
                              bandwidth=config.geo_wan_bandwidth)))
    if len(sites) == 3:
        links.append(("edge0", "edge1",
                      WanLink(latency=sum(config.geo_edge_latencies),
                              bandwidth=config.geo_wan_bandwidth / 2)))
    return GeoSpec(name=config.case_id, sites=tuple(sites),
                   links=tuple(links), origin="origin")


def build_geo_scenario(config: FuzzConfig) -> GeoScenario:
    """Materialize a geo-path scenario from a fuzz config."""
    return GeoScenario(
        name=config.case_id, spec=build_geo_spec(config),
        n_files=config.n_files, file_bytes=config.file_bytes,
        hot_files=max(4, config.n_files // 4),
        alpha=config.alpha if config.alpha is not None else 1.1,
        rps=float(config.rps), duration=config.duration, seed=config.seed,
        graceful=config.graceful,
        edge_budget_bytes=config.geo_budget_mb * 1e6)


def _geo_fingerprint(result: GeoResult) -> str:
    """Repr-level digest of one geo run: every population's exact
    response times plus the WAN/placement counters."""
    digest = hashlib.sha256()
    for site, pop in sorted(result.populations.items()):
        digest.update(
            f"{site} {pop.offered} {pop.completed} {pop.dropped} "
            f"{pop.lost} {pop.spilled} {pop.response_times!r}\n".encode())
    digest.update(repr((result.edge_hit_rate, result.wan_reads,
                        result.wan_bytes, result.placements, result.spills,
                        result.partition_spills, result.unroutable,
                        result.finished_at)).encode())
    return digest.hexdigest()


def _run_geo_case(config: FuzzConfig) -> CaseOutcome:
    first = run_geo(build_geo_scenario(config))
    second = run_geo(build_geo_scenario(config))

    pops = first.populations.values()
    offered = sum(p.offered for p in pops)
    completed = sum(p.completed for p in pops)
    dropped = sum(p.dropped for p in pops)
    settled = completed + dropped + sum(p.lost for p in pops)

    caches = []
    for _site, cluster in sorted(first.system.clusters.items()):
        caches.extend(_node_cache_accounts(cluster.nodes))
    budgets = tuple(
        {"edge": float(i),
         "resident_bytes": fs.resident_replica_bytes(),
         "budget_bytes": fs.budget_bytes}
        for i, (_site, fs) in enumerate(sorted(first.system.edge_fs.items())))

    return CaseOutcome(
        config=config,
        fingerprints=(_geo_fingerprint(first), _geo_fingerprint(second)),
        offered=offered,
        settled=settled,
        completed=completed,
        dropped=dropped,
        finished_at=first.finished_at,
        caches=tuple(caches),
        geo_budgets=budgets,
    )


def run_case(config: FuzzConfig) -> CaseOutcome:
    """Execute one validated fuzz case and collect its evidence."""
    config.validate()
    if config.mode == "fluid":
        return _run_fluid_case(config)
    if config.mode == "geo":
        return _run_geo_case(config)
    return _run_scenario_case(config)
