"""Scenario fuzzing: randomized end-to-end configurations, checked
against cross-cutting invariants, minimized when they fail.

Eight PRs of subsystems — scheduling, caching, faults, tracing, fluid
scale — each carry their own tests, but every tested configuration was
one somebody thought of.  This layer closes the gap (the ROADMAP's
"scenario fuzzer + adversarial clients" item): a **generator** draws
whole deployments from seeded :class:`~repro.sim.rng.RandomStreams`
substreams, an **executor** runs them through the real per-client and
fluid/shard paths, an **oracle** checks the invariants no single
subsystem owns (determinism across runs and worker counts, cache byte
conservation, trace reconciliation, no starved requests), and a
**shrinker** delta-debugs any failure into a minimal case replayable
with ``sweb-repro fuzz --replay``.

Sits at the top of the layer DAG (see docs/ARCHITECTURE.md); the
adversarial client actors it exercises live in
:mod:`repro.workload.adversaries`.  Handbook: docs/FUZZING.md.
"""

from .executor import CaseOutcome, build_fluid_scenario, build_scenario, run_case
from .generator import (
    FULL_PROFILE,
    FUZZ_FORMAT,
    FuzzConfig,
    FuzzProfile,
    SMOKE_PROFILE,
    case_seed,
    generate_config,
    profile_by_name,
)
from .harness import (
    CaseReport,
    FuzzReport,
    case_artifact,
    config_from_artifact,
    replay_case,
    run_fuzz,
)
from .oracle import INVARIANTS, Violation, check_outcome, failure_key
from .shrinker import config_size, shrink, shrink_candidates

__all__ = [
    "CaseOutcome",
    "CaseReport",
    "FULL_PROFILE",
    "FUZZ_FORMAT",
    "FuzzConfig",
    "FuzzProfile",
    "FuzzReport",
    "INVARIANTS",
    "SMOKE_PROFILE",
    "Violation",
    "build_fluid_scenario",
    "build_scenario",
    "case_artifact",
    "case_seed",
    "check_outcome",
    "config_from_artifact",
    "config_size",
    "failure_key",
    "generate_config",
    "profile_by_name",
    "replay_case",
    "run_case",
    "run_fuzz",
    "shrink",
    "shrink_candidates",
]
