"""The ``--deep`` driver: whole-program analyses over one shared parse.

Builds the :class:`~repro.lint.callgraph.Program` (re-using the
:class:`~repro.lint.engine.ContextCache` from the per-file pass, so the
tree is parsed exactly once), runs every registered
:class:`~repro.lint.rules.base.DeepRule`, then filters findings
through the same suppression comments and allowlist as the per-file
rules, plus an optional committed baseline file.

The baseline (``.sweb-lint-baseline.json`` at the repo root) exists for
ratcheting: landing the analyzer with known findings means recording
them as ``"relpath::rule::message"`` entries and burning them down in
follow-ups.  The tree is currently clean, so the committed baseline is
empty — the tier-1 gate holds it there.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from .callgraph import Program
from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import Diagnostic, is_suppressed, suppressions_for
from .engine import REPO_ROOT, ContextCache

__all__ = ["BASELINE_PATH", "baseline_key", "load_baseline", "run_deep"]

#: committed ratchet file for known deep findings
BASELINE_PATH = REPO_ROOT / ".sweb-lint-baseline.json"


def baseline_key(diag: Diagnostic) -> str:
    """Stable identity of a finding (line numbers drift; text doesn't)."""
    return f"{diag.path}::{diag.rule}::{diag.message}"


def load_baseline(path: Optional[Union[str, Path]] = None) -> frozenset[str]:
    """Known-finding keys from the baseline file (empty when absent)."""
    target = Path(path) if path is not None else BASELINE_PATH
    if not target.is_file():
        return frozenset()
    data = json.loads(target.read_text())
    return frozenset(str(entry) for entry in data.get("deep", []))


def run_deep(paths: Optional[Sequence[Union[str, Path]]] = None,
             config: Optional[LintConfig] = None,
             cache: Optional[ContextCache] = None,
             baseline: Optional[frozenset[str]] = None,
             program: Optional[Program] = None) -> list[Diagnostic]:
    """Run every deep rule; return unsuppressed, non-baseline findings.

    ``paths`` defaults to ``src/repro`` — the whole-program model only
    makes sense over the package.  Pass the per-file pass's ``cache``
    to share parsed ASTs, and a prebuilt ``program`` to skip graph
    construction entirely (the bench harness does both).
    """
    from .rules import ALL_DEEP_RULES
    config = config or DEFAULT_CONFIG
    if program is None:
        program = Program.build(paths=paths, config=config, cache=cache)
    if baseline is None:
        baseline = load_baseline()
    suppressed_by_relpath = {
        ctx.relpath: suppressions_for(ctx.source)
        for ctx in program.contexts.values()}
    out: list[Diagnostic] = []
    for rule in ALL_DEEP_RULES:
        for diag in rule.check(program):
            if config.allows(diag.rule, diag.path):
                continue
            suppressed = suppressed_by_relpath.get(diag.path, {})
            if is_suppressed(diag, suppressed):
                continue
            if baseline_key(diag) in baseline:
                continue
            out.append(diag)
    return sorted(out, key=lambda d: (d.path, d.line, d.rule))
