"""sweb-lint: AST-based static analysis enforcing the repo's contracts.

The reproduction's experiments are only comparable across runs and PRs
because fixed-seed runs are byte-identical (``tests/test_determinism.py``).
The fingerprint test catches drift *after the fact* and only on covered
paths; this package stops whole classes of drift *statically*:

* **determinism** — sim-reachable layers must draw time from the engine
  clock and randomness from :class:`repro.sim.rng.RandomStreams`, never
  from the wall clock or the global ``random`` module;
* **layering** — the import DAG of ``docs/ARCHITECTURE.md`` is enforced,
  and experiments touch subsystems only via public ``__init__`` exports;
* **I/O hygiene** — no ``print()`` or file writes outside the CLI/report
  layers;
* **scheduling misuse** — no direct ``heapq`` manipulation or access to
  the simulator's private event queue outside ``sim/engine.py``;
* **docstrings** — every module and public class says what it is for.

Run it as ``sweb-repro lint`` (see :mod:`repro.lint.runner`), suppress a
single finding with ``# sweb-lint: disable=<rule>`` plus a justification,
and see ``docs/LINTING.md`` for the full rule catalog.
"""

from .config import DEFAULT_CONFIG, LAYER_ALLOWED, LAYERS, LintConfig
from .diagnostics import Diagnostic, suppressions_for
from .engine import FileContext, iter_python_files, lint_file, run_lint
from .rules import ALL_RULES, Rule, rules_by_name

__all__ = [
    "ALL_RULES",
    "DEFAULT_CONFIG",
    "Diagnostic",
    "FileContext",
    "LAYERS",
    "LAYER_ALLOWED",
    "LintConfig",
    "Rule",
    "iter_python_files",
    "lint_file",
    "run_lint",
    "rules_by_name",
    "suppressions_for",
]
