"""sweb-lint: AST-based static analysis enforcing the repo's contracts.

The reproduction's experiments are only comparable across runs and PRs
because fixed-seed runs are byte-identical (``tests/test_determinism.py``).
The fingerprint test catches drift *after the fact* and only on covered
paths; this package stops whole classes of drift *statically*:

* **determinism** — sim-reachable layers must draw time from the engine
  clock and randomness from :class:`repro.sim.rng.RandomStreams`, never
  from the wall clock or the global ``random`` module;
* **layering** — the import DAG of ``docs/ARCHITECTURE.md`` is enforced,
  and experiments touch subsystems only via public ``__init__`` exports;
* **I/O hygiene** — no ``print()`` or file writes outside the CLI/report
  layers;
* **scheduling misuse** — no direct ``heapq`` manipulation or access to
  the simulator's private event queue outside ``sim/engine.py``;
* **ordering** — no set iteration without ``sorted()``, no host
  environment/locale reads, no multiprocessing outside the canonical
  sorted merge in ``experiments/shard.py``;
* **docstrings** — every module and public class says what it is for.

``sweb-repro lint --deep`` adds the whole-program tier: a call graph
with sim-reachability (:mod:`repro.lint.callgraph`) so det-* hazards
are flagged wherever the simulation can actually reach, a static RNG
substream audit against :mod:`repro.sim.streamnames`, and the
observation-purity proof (:mod:`repro.lint.dataflow`,
:mod:`repro.lint.rules.purity`) that the obs layer never writes
sim-reachable state.

Run it as ``sweb-repro lint`` (see :mod:`repro.lint.runner`), suppress a
single finding with ``# sweb-lint: disable=<rule>`` plus a justification,
and see ``docs/LINTING.md`` for the full rule catalog.
"""

from .callgraph import Program
from .config import DEFAULT_CONFIG, LAYER_ALLOWED, LAYERS, LintConfig
from .deep import load_baseline, run_deep
from .diagnostics import Diagnostic, suppressions_for
from .engine import (ContextCache, FileContext, find_repo_root,
                     iter_python_files, lint_file, run_lint)
from .rules import ALL_DEEP_RULES, ALL_RULES, DeepRule, Rule, rules_by_name

__all__ = [
    "ALL_DEEP_RULES",
    "ALL_RULES",
    "ContextCache",
    "DEFAULT_CONFIG",
    "DeepRule",
    "Diagnostic",
    "FileContext",
    "LAYERS",
    "LAYER_ALLOWED",
    "LintConfig",
    "Program",
    "Rule",
    "find_repo_root",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "run_deep",
    "run_lint",
    "rules_by_name",
    "suppressions_for",
]
