"""The ``sweb-repro lint`` entry point.

Runs every registered rule over ``src/`` and ``scripts/`` (or explicit
paths), prints ``file:line: rule: message`` diagnostics, and exits
non-zero when anything is found.  ``--deep`` additionally runs the
whole-program analyses (call-graph sim-reachability, the RNG substream
audit, observation-purity) over ``src/repro``, sharing one parsed-AST
cache with the per-file pass.  ``--types`` runs the optional mypy pass
(strict on ``repro.sim``/``core``/``obs``/``sched``/``lint``, see
``pyproject.toml``); when mypy is not installed the pass is skipped
with a notice rather than failing, so the analyzer has no hard
dependency beyond the standard library.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from typing import Optional, Sequence

from .deep import load_baseline, run_deep
from .engine import REPO_ROOT, ContextCache, run_lint
from .rules import ALL_DEEP_RULES, ALL_RULES

__all__ = ["run_cli", "run_types_pass"]

#: trees the strict mypy pass covers (mirrors [tool.mypy] in pyproject.toml)
MYPY_TARGETS = ("src/repro/sim", "src/repro/core", "src/repro/obs",
                "src/repro/sched", "src/repro/lint", "src/repro/fuzz")


def run_types_pass() -> int:
    """Run mypy over the strict trees; skip gracefully if unavailable."""
    if importlib.util.find_spec("mypy") is None:
        print("lint: --types skipped: mypy is not installed "
              "(pip install mypy)", file=sys.stderr)
        return 0
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *MYPY_TARGETS],
        cwd=REPO_ROOT)
    return proc.returncode


def run_cli(paths: Optional[Sequence[str]] = None,
            types: bool = False,
            list_rules: bool = False,
            deep: bool = False,
            baseline: Optional[str] = None) -> int:
    """Drive one lint run; returns the process exit code."""
    if list_rules:
        rows = [(rule.name, rule.summary) for rule in ALL_RULES]
        rows += [(rule.name, f"[deep] {rule.summary}")
                 for rule in ALL_DEEP_RULES]
        width = max(len(name) for name, _ in rows)
        for name, summary in rows:
            print(f"{name:<{width}}  {summary}")
        return 0
    cache = ContextCache()
    diagnostics = run_lint(paths=paths or None, cache=cache)
    if deep:
        # explicit paths lint just those files; the whole-program pass
        # still needs the full package, so it keeps its own default
        diagnostics = sorted(
            diagnostics + run_deep(cache=cache,
                                   baseline=load_baseline(baseline)),
            key=lambda d: (d.path, d.line, d.rule))
    for diag in diagnostics:
        print(diag.format())
    status = 0
    if diagnostics:
        print(f"{len(diagnostics)} lint problem(s)", file=sys.stderr)
        status = 1
    if types:
        status = max(status, run_types_pass())
    return status
