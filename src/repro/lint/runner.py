"""The ``sweb-repro lint`` entry point.

Runs every registered rule over ``src/`` and ``scripts/`` (or explicit
paths), prints ``file:line: rule: message`` diagnostics, and exits
non-zero when anything is found.  ``--types`` additionally runs the
optional mypy pass (strict on ``repro.sim`` and ``repro.core``, see
``pyproject.toml``); when mypy is not installed the pass is skipped
with a notice rather than failing, so the analyzer has no hard
dependency beyond the standard library.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from typing import Optional, Sequence

from .engine import REPO_ROOT, run_lint
from .rules import ALL_RULES

__all__ = ["run_cli", "run_types_pass"]

#: trees the strict mypy pass covers (mirrors [tool.mypy] in pyproject.toml)
MYPY_TARGETS = ("src/repro/sim", "src/repro/core")


def run_types_pass() -> int:
    """Run mypy over the strict trees; skip gracefully if unavailable."""
    if importlib.util.find_spec("mypy") is None:
        print("lint: --types skipped: mypy is not installed "
              "(pip install mypy)", file=sys.stderr)
        return 0
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", *MYPY_TARGETS],
        cwd=REPO_ROOT)
    return proc.returncode


def run_cli(paths: Optional[Sequence[str]] = None,
            types: bool = False,
            list_rules: bool = False) -> int:
    """Drive one lint run; returns the process exit code."""
    if list_rules:
        width = max(len(rule.name) for rule in ALL_RULES)
        for rule in ALL_RULES:
            print(f"{rule.name:<{width}}  {rule.summary}")
        return 0
    diagnostics = run_lint(paths=paths or None)
    for diag in diagnostics:
        print(diag.format())
    status = 0
    if diagnostics:
        print(f"{len(diagnostics)} lint problem(s)", file=sys.stderr)
        status = 1
    if types:
        status = max(status, run_types_pass())
    return status
