"""Whole-program call graph and sim-reachability for ``--deep`` runs.

The per-file rules (PR 3) gate determinism by *layer membership*: a
wall-clock call is flagged when the file lives in a blessed layer.
That misses the interprocedural hazards — a helper two hops below
``Simulator.run`` that happens to live in ``workload/`` or ``bench.py``
executes *during* the simulation just the same.  This module builds a
conservative static call graph over ``src/repro`` using the engine's
alias-resolution machinery, then computes **sim-reachability**: the set
of functions transitively callable from the simulation entry points
(``Simulator.run``/``step``, the fluid loop ``run_fluid``) and from
every generator handed to ``Simulator.spawn``/``process``/``defer``/
``schedule``.

Resolution is deliberately over-approximate where it must be:

* plain names resolve through the lexical scope chain (nested defs,
  locals assigned from function references or factory calls, callable
  parameters filled in by a small fixpoint over call sites);
* ``self.method`` resolves through the class and its bases;
* ``self.attr.method`` resolves through the attribute's annotation;
* re-exports are chased through package ``__init__`` alias maps
  (``repro.sim.Simulator`` → ``repro.sim.engine.Simulator``);
* anything still unresolved falls back to class-hierarchy-analysis by
  bare method name (every class defining that method is a candidate).

Over-approximation only ever *widens* the checked set, so a clean
``--deep`` run remains a sound "nothing non-deterministic executes
inside a simulation" claim.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from .config import DEFAULT_CONFIG, LintConfig
from .engine import REPO_ROOT, ContextCache, FileContext, iter_python_files

__all__ = ["CallSite", "ClassInfo", "FunctionInfo", "Program",
           "DEFAULT_ENTRY_POINTS", "SPAWN_METHODS", "annotation_classes",
           "match_args"]

#: where a simulation starts: the event-kernel run loop and the fluid
#: aggregate loop.  Everything transitively callable from these (plus
#: spawned generators/callbacks) is "sim-reachable".
DEFAULT_ENTRY_POINTS = (
    "repro.sim.engine.Simulator.run",
    "repro.sim.engine.Simulator.step",
    "repro.workload.fluid.run_fluid",
)

#: simulator methods whose callable/generator arguments enter the event
#: loop.  ``RandomStreams.spawn(name)`` takes a string, so it never
#: resolves to a function and is naturally ignored here.
SPAWN_METHODS = frozenset({"spawn", "process", "defer", "schedule"})

#: method names too generic for class-hierarchy fallback — they collide
#: with builtin container methods and would wire the graph to noise.
_CHA_SKIP = frozenset({"get", "items", "keys", "values", "append", "add",
                       "update", "pop", "clear", "copy", "extend", "sort",
                       "format", "join", "split", "strip", "close", "read",
                       "write"})


@dataclass
class FunctionInfo:
    """One function/method/nested def, with its own-body facts."""

    qname: str
    module: str
    name: str
    ctx: FileContext
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    cls: Optional[str]                   # owning class qname, if a method
    parent: Optional[str]                # enclosing function qname, if nested
    params: tuple[str, ...]              # positional then kw-only names
    lineno: int
    defaults: dict[str, ast.expr] = field(default_factory=dict)
    annotations: dict[str, ast.expr] = field(default_factory=dict)
    nested: dict[str, str] = field(default_factory=dict)
    calls: list[ast.Call] = field(default_factory=list)
    assigns: list[tuple[str, ast.expr]] = field(default_factory=list)
    bound_names: set[str] = field(default_factory=set)
    local_ann: dict[str, ast.expr] = field(default_factory=dict)
    returned_names: set[str] = field(default_factory=set)
    global_decls: set[str] = field(default_factory=set)
    nonlocal_decls: set[str] = field(default_factory=set)
    returned_functions: tuple[str, ...] = ()
    local_callables: dict[str, set[str]] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)
    param_callables: dict[str, set[str]] = field(default_factory=dict)

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class: bases, methods, and attribute annotations."""

    qname: str
    module: str
    name: str
    ctx: FileContext
    node: ast.ClassDef
    lineno: int
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)
    field_order: tuple[str, ...] = ()


@dataclass
class CallSite:
    """A resolved call edge with its AST node (for argument matching)."""

    caller: str
    callee: str
    call: ast.Call
    ctx: FileContext
    bound: bool      # receiver supplied implicitly (method/constructor)
    kind: str        # "direct" | "local" | "param" | "constructor" | "cha"


def _target_names(node: ast.expr) -> Iterator[str]:
    """Names bound by an assignment target (tuples unpacked)."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _target_names(elt)
    elif isinstance(node, ast.Starred):
        yield from _target_names(node.value)


def match_args(fn: FunctionInfo, call: ast.Call,
               bound: bool) -> dict[str, ast.expr]:
    """Map ``fn``'s parameter names to the argument expressions of ``call``.

    Best-effort: ``*args`` forwarding aborts positional matching, and
    ``**kwargs`` entries are skipped.  ``bound`` skips the implicit
    ``self``/``cls`` parameter.
    """
    params = fn.params[1:] if bound and fn.params else fn.params
    mapping: dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            mapping[params[i]] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            mapping[kw.arg] = kw.value
    return mapping


def annotation_classes(program: "Program", ctx: FileContext,
                       expr: Optional[ast.expr]) -> tuple[str, ...]:
    """Repo classes named inside an annotation expression.

    ``Optional[Span]`` → ``("repro.obs.spans.Span",)``; typing wrappers
    and builtins resolve to nothing and drop out.  String annotations
    are parsed best-effort.
    """
    if expr is None:
        return ()
    out: list[str] = []

    def visit(node: ast.expr) -> None:
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = ctx.dotted_name(node)
            if dotted is not None:
                resolved = program.resolve(dotted)
                if resolved is not None and resolved in program.classes:
                    out.append(resolved)
                    return
                local = program.resolve(f"{ctx.module}.{dotted}")
                if local is not None and local in program.classes:
                    out.append(local)
            return
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                visit(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                pass
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                visit(child)

    visit(expr)
    return tuple(dict.fromkeys(out))


@dataclass
class _Resolution:
    """Outcome of resolving one call expression."""

    targets: tuple[str, ...] = ()
    kind: str = "none"               # direct/local/param/constructor/cha/none
    cls: Optional[str] = None        # constructed class, for constructors
    param_ref: Optional[tuple[str, str]] = None   # (owner qname, param name)


class Program:
    """The whole-program model: contexts, defs, edges, reachability."""

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self.contexts: dict[str, FileContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.exports: dict[str, str] = {}
        self.method_index: dict[str, tuple[str, ...]] = {}
        self.edges: dict[str, set[str]] = {}
        self.callsites: list[CallSite] = []
        self.callsites_by_callee: dict[str, list[CallSite]] = {}
        self.spawn_sites: list[tuple[str, FileContext, int]] = []
        self.sim_reachable: dict[str, tuple[Optional[str], str]] = {}
        self.entry_points: tuple[str, ...] = DEFAULT_ENTRY_POINTS
        self._param_call_refs: list[tuple[str, str, str]] = []
        self._resolve_memo: dict[str, Optional[str]] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, paths: Optional[Sequence[Union[str, Path]]] = None,
              config: Optional[LintConfig] = None,
              cache: Optional[ContextCache] = None,
              entry_points: Optional[Sequence[str]] = None) -> "Program":
        """Parse every file (default: ``src/repro``) and wire the graph."""
        program = cls(config)
        if entry_points is not None:
            program.entry_points = tuple(entry_points)
        if paths is None:
            paths = [REPO_ROOT / "src" / "repro"]
        if cache is None:
            cache = ContextCache(program.config)
        for path in iter_python_files(paths):
            try:
                ctx = cache.get(path)
            except SyntaxError:
                continue
            program.contexts[ctx.module] = ctx
        program._register_all()
        program._compute_local_values()
        program._build_edges()
        program._propagate_callable_params()
        program._compute_reachability()
        return program

    def _register_all(self) -> None:
        for ctx in self.contexts.values():
            for local, target in ctx.aliases.items():
                if "." in target and target != local:
                    self.exports[f"{ctx.module}.{local}"] = target
            for stmt in ctx.tree.body:
                self._visit(ctx, stmt, fn=None, cls=None, prefix=ctx.module)
        index: dict[str, list[str]] = {}
        for cinfo in self.classes.values():
            for bare, qname in cinfo.methods.items():
                index.setdefault(bare, []).append(qname)
        self.method_index = {k: tuple(sorted(v)) for k, v in index.items()}
        for fn in self.functions.values():
            fn.returned_functions = tuple(
                fn.nested[n] for n in sorted(fn.returned_names)
                if n in fn.nested)

    def _visit(self, ctx: FileContext, node: ast.AST,
               fn: Optional[FunctionInfo], cls: Optional[ClassInfo],
               prefix: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._register_function(ctx, node, fn, cls, prefix)
            return
        if isinstance(node, ast.ClassDef):
            self._register_class(ctx, node, prefix)
            return
        if fn is not None:
            self._record_fact(fn, node)
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, fn, None, prefix)

    def _register_function(self, ctx: FileContext,
                           node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                           parent_fn: Optional[FunctionInfo],
                           cls: Optional[ClassInfo], prefix: str) -> None:
        qname = f"{prefix}.{node.name}"
        args = node.args
        pos = [*args.posonlyargs, *args.args]
        params = tuple(a.arg for a in (*pos, *args.kwonlyargs))
        info = FunctionInfo(
            qname=qname, module=ctx.module, name=node.name, ctx=ctx,
            node=node, cls=cls.qname if cls is not None else None,
            parent=parent_fn.qname if parent_fn is not None else None,
            params=params, lineno=node.lineno)
        for a in (*pos, *args.kwonlyargs):
            if a.annotation is not None:
                info.annotations[a.arg] = a.annotation
        for a, default in zip(pos[len(pos) - len(args.defaults):],
                              args.defaults):
            info.defaults[a.arg] = default
        for a, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                info.defaults[a.arg] = kw_default
        info.bound_names.update(params)
        for va in (args.vararg, args.kwarg):
            if va is not None:
                info.bound_names.add(va.arg)
        self.functions[qname] = info
        if parent_fn is not None:
            parent_fn.nested[node.name] = qname
        if cls is not None:
            cls.methods[node.name] = qname
            if node.name == "__init__":
                self._harvest_init_annotations(cls, info, node)
        for deco in node.decorator_list:
            if parent_fn is not None:
                self._visit(ctx, deco, parent_fn, None, prefix)
        for child in node.body:
            self._visit(ctx, child, info, None, qname)

    def _register_class(self, ctx: FileContext, node: ast.ClassDef,
                        prefix: str) -> None:
        qname = f"{prefix}.{node.name}"
        bases = tuple(d for d in (ctx.dotted_name(b) for b in node.bases)
                      if d is not None)
        cinfo = ClassInfo(qname=qname, module=ctx.module, name=node.name,
                          ctx=ctx, node=node, lineno=node.lineno, bases=bases)
        self.classes[qname] = cinfo
        order: list[str] = []
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                cinfo.attr_annotations[stmt.target.id] = stmt.annotation
                order.append(stmt.target.id)
        cinfo.field_order = tuple(order)
        for stmt in node.body:
            self._visit(ctx, stmt, fn=None, cls=cinfo, prefix=qname)

    def _harvest_init_annotations(self, cls: ClassInfo, info: FunctionInfo,
                                  node: ast.AST) -> None:
        """``self.x = param`` / ``self.x: T`` inside ``__init__``."""
        for stmt in ast.walk(node):
            target: Optional[ast.expr] = None
            ann: Optional[ast.expr] = None
            if isinstance(stmt, ast.AnnAssign):
                target, ann = stmt.target, stmt.annotation
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(stmt.value, ast.Name):
                    ann = info.annotations.get(stmt.value.id)
            if (ann is not None and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                cls.attr_annotations.setdefault(target.attr, ann)

    def _record_fact(self, fn: FunctionInfo, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            fn.calls.append(node)
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                fn.bound_names.update(_target_names(t))
            if len(node.targets) == 1 and isinstance(node.targets[0],
                                                     ast.Name):
                fn.assigns.append((node.targets[0].id, node.value))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                fn.bound_names.add(node.target.id)
                fn.local_ann[node.target.id] = node.annotation
                if node.value is not None:
                    fn.assigns.append((node.target.id, node.value))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                fn.bound_names.add(node.target.id)
        elif isinstance(node, ast.NamedExpr):
            fn.bound_names.add(node.target.id)
            fn.assigns.append((node.target.id, node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            fn.bound_names.update(_target_names(node.target))
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                fn.bound_names.update(_target_names(node.optional_vars))
        elif isinstance(node, ast.comprehension):
            fn.bound_names.update(_target_names(node.target))
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                fn.bound_names.add(node.name)
        elif isinstance(node, ast.Global):
            fn.global_decls.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            fn.nonlocal_decls.update(node.names)
        elif isinstance(node, ast.Return):
            if isinstance(node.value, ast.Name):
                fn.returned_names.add(node.value.id)

    # -- name resolution ----------------------------------------------------
    def resolve(self, dotted: str) -> Optional[str]:
        """Canonical def qname for a dotted name, chasing re-exports."""
        memo = self._resolve_memo
        if dotted in memo:
            return memo[dotted]
        cur, seen = dotted, set()
        result: Optional[str] = None
        while True:
            if cur in self.functions or cur in self.classes:
                result = cur
                break
            if cur in seen or len(seen) > 25:
                break
            seen.add(cur)
            nxt = self.exports.get(cur)
            if nxt is None:
                parts = cur.split(".")
                for i in range(len(parts) - 1, 0, -1):
                    prefix = ".".join(parts[:i])
                    if prefix in self.exports:
                        nxt = ".".join((self.exports[prefix], *parts[i:]))
                        break
                    if prefix in self.classes and i == len(parts) - 1:
                        result = self.method_on(prefix, parts[-1])
                        break
            if nxt is None:
                break
            cur = nxt
        memo[dotted] = result
        return result

    def method_on(self, cls_qname: str, name: str,
                  _depth: int = 0) -> Optional[str]:
        """Resolve a method through the class and its base chain."""
        if _depth > 8:
            return None
        cinfo = self.classes.get(cls_qname)
        if cinfo is None:
            return None
        hit = cinfo.methods.get(name)
        if hit is not None:
            return hit
        for base in cinfo.bases:
            resolved = self.resolve(base) or self.resolve(
                f"{cinfo.module}.{base}")
            if resolved is not None and resolved in self.classes:
                hit = self.method_on(resolved, name, _depth + 1)
                if hit is not None:
                    return hit
        return None

    def _scope_chain(self, fn: FunctionInfo) -> Iterator[FunctionInfo]:
        cur: Optional[FunctionInfo] = fn
        while cur is not None:
            yield cur
            cur = self.functions.get(cur.parent) if cur.parent else None

    def _callable_values(self, fn: FunctionInfo,
                         expr: ast.expr) -> tuple[str, ...]:
        """Function qnames an argument expression may evaluate to."""
        if isinstance(expr, ast.Call):
            res = self._resolve_callee(fn, expr.func)
            out: list[str] = []
            for t in res.targets:
                target = self.functions.get(t)
                if target is not None:
                    out.extend(target.returned_functions)
            return tuple(out)
        if isinstance(expr, ast.Name):
            for scope in self._scope_chain(fn):
                if expr.id in scope.nested:
                    return (scope.nested[expr.id],)
                if expr.id in scope.local_callables:
                    return tuple(sorted(scope.local_callables[expr.id]))
                if expr.id in scope.param_callables:
                    return tuple(sorted(scope.param_callables[expr.id]))
        if isinstance(expr, (ast.Name, ast.Attribute)):
            dotted = fn.ctx.dotted_name(expr)
            if dotted is None:
                return ()
            for candidate in (f"{fn.module}.{dotted}", dotted):
                resolved = self.resolve(candidate)
                if resolved is not None and resolved in self.functions:
                    return (resolved,)
        return ()

    def _resolve_callee(self, fn: FunctionInfo,
                        func: ast.expr) -> _Resolution:
        if isinstance(func, ast.Name):
            name = func.id
            for scope in self._scope_chain(fn):
                if name in scope.nested:
                    return _Resolution((scope.nested[name],), "direct")
                if name in scope.local_callables:
                    return _Resolution(
                        tuple(sorted(scope.local_callables[name])), "local")
                if name in scope.params:
                    return _Resolution((), "param",
                                       param_ref=(scope.qname, name))
                if name in scope.bound_names:
                    break
            for candidate in (f"{fn.module}.{name}",
                              fn.ctx.aliases.get(name, name)):
                resolved = self.resolve(candidate)
                if resolved is not None:
                    return self._as_resolution(resolved, "direct")
            return _Resolution()
        if not isinstance(func, ast.Attribute):
            return _Resolution()
        dotted = fn.ctx.dotted_name(func)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] == "self" and fn.cls is not None:
                if len(parts) == 2:
                    hit = self.method_on(fn.cls, parts[1])
                    if hit is not None:
                        return _Resolution((hit,), "direct", )
                elif len(parts) == 3:
                    hit = self._method_via_attr(fn.ctx, fn.cls, parts[1],
                                                parts[2])
                    if hit is not None:
                        return _Resolution((hit,), "direct")
                return self._cha(func.attr)
            root_type = None
            for scope in self._scope_chain(fn):
                if parts[0] in scope.local_types:
                    root_type = scope.local_types[parts[0]]
                    break
                if parts[0] in scope.bound_names:
                    break
            if root_type is not None and len(parts) == 2:
                hit = self.method_on(root_type, parts[1])
                if hit is not None:
                    return _Resolution((hit,), "direct")
            resolved = self.resolve(dotted) or self.resolve(
                f"{fn.module}.{dotted}")
            if resolved is not None:
                return self._as_resolution(resolved, "direct")
        return self._cha(func.attr)

    def _as_resolution(self, resolved: str, kind: str) -> _Resolution:
        if resolved in self.classes:
            init = self.method_on(resolved, "__init__")
            targets = (init,) if init is not None else ()
            return _Resolution(targets, "constructor", cls=resolved)
        return _Resolution((resolved,), kind)

    def _method_via_attr(self, ctx: FileContext, cls_qname: str,
                         attr: str, method: str) -> Optional[str]:
        cinfo = self.classes.get(cls_qname)
        if cinfo is None:
            return None
        ann = cinfo.attr_annotations.get(attr)
        for type_qname in annotation_classes(self, cinfo.ctx, ann):
            hit = self.method_on(type_qname, method)
            if hit is not None:
                return hit
        return None

    def _cha(self, name: str) -> _Resolution:
        if name in _CHA_SKIP or name.startswith("__"):
            return _Resolution()
        targets = self.method_index.get(name, ())
        if targets:
            return _Resolution(targets, "cha")
        return _Resolution()

    # -- graph construction -------------------------------------------------
    def _compute_local_values(self) -> None:
        for fn in self.functions.values():
            for name, value in fn.assigns:
                callables = self._callable_values(fn, value)
                if callables:
                    fn.local_callables.setdefault(name, set()).update(
                        callables)
                if isinstance(value, ast.Call):
                    dotted = fn.ctx.dotted_name(value.func)
                    if dotted is not None:
                        resolved = (self.resolve(dotted)
                                    or self.resolve(f"{fn.module}.{dotted}"))
                        if resolved is not None and resolved in self.classes:
                            fn.local_types.setdefault(name, resolved)
            for name, ann in {**fn.annotations, **fn.local_ann}.items():
                types = annotation_classes(self, fn.ctx, ann)
                if len(types) == 1:
                    fn.local_types.setdefault(name, types[0])

    def _add_edge(self, caller: str, callee: str) -> bool:
        bucket = self.edges.setdefault(caller, set())
        if callee in bucket:
            return False
        bucket.add(callee)
        return True

    def _build_edges(self) -> None:
        for fn in self.functions.values():
            for call in fn.calls:
                self._link(fn, call)

    def _link(self, fn: FunctionInfo, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in SPAWN_METHODS:
            for arg in (*call.args, *(kw.value for kw in call.keywords)):
                if isinstance(arg, ast.Call):
                    targets = self._spawn_targets(fn, arg)
                else:
                    targets = tuple(t for t in self._callable_values(fn, arg)
                                    if t in self.functions)
                for target in targets:
                    self.spawn_sites.append((target, fn.ctx, call.lineno))
        res = self._resolve_callee(fn, func)
        if res.param_ref is not None:
            self._param_call_refs.append((fn.qname, *res.param_ref))
            return
        bound = (isinstance(func, ast.Attribute) or res.kind == "constructor")
        for target in res.targets:
            if target not in self.functions:
                continue
            self._add_edge(fn.qname, target)
            if res.kind != "cha":
                site = CallSite(caller=fn.qname, callee=target, call=call,
                                ctx=fn.ctx, bound=bound, kind=res.kind)
                self.callsites.append(site)
                self.callsites_by_callee.setdefault(target, []).append(site)

    def _spawn_targets(self, fn: FunctionInfo,
                       arg: ast.Call) -> tuple[str, ...]:
        res = self._resolve_callee(fn, arg.func)
        return tuple(t for t in res.targets if t in self.functions)

    def _propagate_callable_params(self) -> None:
        for _ in range(6):
            changed = False
            for site in self.callsites:
                callee = self.functions.get(site.callee)
                if callee is None:
                    continue
                caller = self.functions.get(site.caller)
                if caller is None:
                    continue
                for param, arg in match_args(callee, site.call,
                                             site.bound).items():
                    values = self._callable_values(caller, arg)
                    if not values:
                        continue
                    bucket = callee.param_callables.setdefault(param, set())
                    fresh = set(values) - bucket
                    if fresh:
                        bucket.update(fresh)
                        changed = True
            for caller_q, owner_q, param in self._param_call_refs:
                owner = self.functions.get(owner_q)
                if owner is None:
                    continue
                for target in owner.param_callables.get(param, ()):
                    if target in self.functions:
                        if self._add_edge(caller_q, target):
                            changed = True
            if not changed:
                break

    # -- reachability -------------------------------------------------------
    def _compute_reachability(self) -> None:
        reach: dict[str, tuple[Optional[str], str]] = {}
        work: deque[str] = deque()
        for entry in self.entry_points:
            resolved = self.resolve(entry)
            if resolved is not None and resolved in self.functions:
                reach[resolved] = (None, "entry point")
                work.append(resolved)
        for target, ctx, lineno in self.spawn_sites:
            if target not in reach:
                reach[target] = (None, f"spawned at {ctx.relpath}:{lineno}")
                work.append(target)
        while work:
            cur = work.popleft()
            for callee in sorted(self.edges.get(cur, ())):
                if callee not in reach:
                    reach[callee] = (cur, "call")
                    work.append(callee)
        self.sim_reachable = reach

    def is_reachable(self, qname: str) -> bool:
        return qname in self.sim_reachable

    def reachable_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.sim_reachable):
            fn = self.functions.get(qname)
            if fn is not None:
                yield fn

    def explain(self, qname: str, limit: int = 8) -> str:
        """Human-readable provenance chain for one reachable function."""
        chain: list[str] = []
        cur: Optional[str] = qname
        while cur is not None and len(chain) < limit:
            parent, why = self.sim_reachable.get(cur, (None, "?"))
            chain.append(cur if parent is not None else f"{cur} ({why})")
            cur = parent
        return " <- ".join(chain)
