"""Lint configuration: the enforced layer DAG and per-rule allowlists.

The defaults here *are* the repo's contracts (mirrored in
``docs/LINTING.md`` and ``docs/ARCHITECTURE.md``).  Tests construct
custom :class:`LintConfig` instances to exercise rules against fixture
trees without touching the real policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch

__all__ = ["DEFAULT_CONFIG", "LAYERS", "LAYER_ALLOWED", "LintConfig"]

#: The twelve library layers, bottom-up.  Top-level side modules
#: (``cli``, ``config``, ``bench``) and :mod:`repro.lint` itself sit
#: beside the stack and are exempt from the layering rules.
LAYERS: tuple[str, ...] = (
    "obs", "sim", "sched", "cluster", "cache", "faults", "web", "core",
    "workload", "geo", "experiments", "fuzz",
)

#: layer -> the set of *other* layers it may import at runtime.
#: This is the enforced DAG:  obs → sim → sched → cluster → cache →
#: {faults, web} → core → workload → geo → experiments → fuzz.  ``obs``
#: sits at the very bottom (pure data structures, no engine dependency) so *every*
#: layer — including ``sim``, whose stats route percentile math through
#: it — may publish spans and metrics into it.  ``sched`` (the policy
#: registry, speed-factor model and rendezvous hashing) sits just above
#: the kernel so the hardware layer, the per-client strategies and the
#: fluid model all share one scheduling vocabulary.  ``TYPE_CHECKING``-
#: gated imports are exempt (typing-only; they cannot affect runtime
#: behaviour or determinism).
LAYER_ALLOWED: dict[str, frozenset[str]] = {
    "obs": frozenset(),
    "sim": frozenset({"obs"}),
    "sched": frozenset({"obs", "sim"}),
    "cluster": frozenset({"obs", "sim", "sched"}),
    "cache": frozenset({"obs", "sim", "sched", "cluster"}),
    "faults": frozenset({"obs", "sim", "sched", "cluster", "cache"}),
    "web": frozenset({"obs", "sim", "sched", "cluster", "cache"}),
    "core": frozenset({"obs", "sim", "sched", "cluster", "cache", "faults",
                       "web"}),
    "workload": frozenset({"obs", "sim", "sched", "cluster", "cache",
                           "faults", "web", "core"}),
    "geo": frozenset({"obs", "sim", "sched", "cluster", "cache", "faults",
                      "web", "core", "workload"}),
    "experiments": frozenset({"obs", "sim", "sched", "cluster", "cache",
                              "faults", "web", "core", "workload", "geo"}),
    "fuzz": frozenset({"obs", "sim", "sched", "cluster", "cache", "faults",
                       "web", "core", "workload", "geo", "experiments"}),
}

#: Layers whose code is sim-reachable: time must come from the engine
#: clock (``sim.now``) and randomness from ``repro.sim.rng``.
DETERMINISM_LAYERS: tuple[str, ...] = (
    "obs", "sim", "sched", "cluster", "cache", "core", "web", "faults",
    "geo", "fuzz",
)

#: Files allowed to talk to a terminal or the filesystem: the CLI, the
#: benchmark harness, the report generator, helper scripts, and the lint
#: runner itself.
_IO_ALLOWED: tuple[str, ...] = (
    "src/repro/cli.py",
    "src/repro/bench.py",
    "src/repro/experiments/report.py",
    "src/repro/lint/runner.py",
    "scripts/*",
)


@dataclass(frozen=True)
class LintConfig:
    """Which rules apply where; the allowlist half of the policy."""

    #: layer DAG enforced by the ``layer-import`` rule
    layer_allowed: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(LAYER_ALLOWED))
    #: layers subject to the ``det-*`` determinism rules
    determinism_layers: tuple[str, ...] = DETERMINISM_LAYERS
    #: rule name -> repo-relative glob patterns the rule skips entirely
    allow: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "io-print": _IO_ALLOWED,
        "io-file-write": _IO_ALLOWED,
        # the one sanctioned randomness source
        "det-foreign-rng": ("src/repro/sim/rng.py",),
        # the event loop owns the heap
        "sched-heapq": ("src/repro/sim/engine.py",),
        "sched-engine-internals": ("src/repro/sim/engine.py",),
    })

    def allows(self, rule: str, relpath: str) -> bool:
        """True if ``relpath`` is allowlisted for ``rule``."""
        return any(fnmatch(relpath, pattern)
                   for pattern in self.allow.get(rule, ()))


DEFAULT_CONFIG = LintConfig()
