"""The lint engine: file discovery, AST context, rule dispatch.

One :class:`FileContext` is built per file — path anchoring (repo
layout, layer, dotted module name), the parsed AST, resolved imports
(with ``TYPE_CHECKING`` blocks marked), and an alias map so rules can
resolve a call like ``np.random.default_rng(...)`` to its canonical
dotted name ``numpy.random.default_rng`` regardless of how the module
was imported.  :func:`run_lint` drives every registered rule over every
file and filters findings through suppression comments and the config
allowlist.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from .config import DEFAULT_CONFIG, LintConfig
from .diagnostics import Diagnostic, is_suppressed, suppressions_for

__all__ = ["ContextCache", "FileContext", "ImportedModule", "find_repo_root",
           "iter_python_files", "lint_file", "run_lint", "REPO_ROOT"]


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` (default: this file) to ``pyproject.toml``.

    Counting ``parents[N]`` breaks as soon as the package is installed
    into ``site-packages`` or vendored at a different depth; the marker
    file is the stable anchor.  Falls back to the historical
    ``src/repro/lint`` layout when no marker exists (e.g. a bare wheel).
    """
    here = (start or Path(__file__)).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path(__file__).resolve().parents[3]


#: repository root, anchored on pyproject.toml (see find_repo_root)
REPO_ROOT = find_repo_root()


@dataclass(frozen=True)
class ImportedModule:
    """One import statement target, resolved to an absolute dotted path."""

    module: str            # e.g. "repro.core.costmodel" or "heapq"
    lineno: int
    type_checking: bool    # inside an ``if TYPE_CHECKING:`` block


def _anchor_parts(path: Path) -> Optional[tuple[str, ...]]:
    """Path parts from the last ``repro``/``scripts`` component onward.

    Works both for real repo files and for fixture trees that mimic the
    layout under a temporary directory.
    """
    parts = path.parts
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] in ("repro", "scripts"):
            return parts[i:]
    return None


def _is_type_checking_test(test: ast.expr) -> bool:
    """Recognise ``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    relpath: str                  # repo-relative posix path when anchorable
    module: str                   # dotted module name, e.g. "repro.sim.engine"
    layer: Optional[str]          # "sim", ..., "" (top-level), "scripts", None
    tree: ast.Module
    source: str
    config: LintConfig
    imports: list[ImportedModule] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, path: Path, config: LintConfig) -> "FileContext":
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        anchored = _anchor_parts(path)
        if anchored is None:
            relpath = path.as_posix()
            module_parts: tuple[str, ...] = (path.stem,)
            layer = None
        elif anchored[0] == "scripts":
            relpath = "/".join(anchored)
            module_parts = (path.stem,)
            layer = "scripts"
        else:
            relpath = "src/" + "/".join(anchored)
            stems = anchored[:-1] + ((path.stem,)
                                     if path.stem != "__init__" else ())
            module_parts = tuple(stems)
            inner = anchored[1:]
            layer = inner[0] if len(inner) > 1 else ""
        ctx = cls(path=path, relpath=relpath,
                  module=".".join(module_parts), layer=layer,
                  tree=tree, source=source, config=config)
        ctx._collect_imports()
        return ctx

    # -- imports ------------------------------------------------------------
    @property
    def _package_parts(self) -> tuple[str, ...]:
        parts = tuple(self.module.split("."))
        if self.path.stem == "__init__":
            return parts
        return parts[:-1]

    def _resolve_relative(self, level: int, module: Optional[str]) -> str:
        base = self._package_parts
        if level > 1:
            base = base[:len(base) - (level - 1)]
        target = list(base)
        if module:
            target.extend(module.split("."))
        return ".".join(target)

    def _collect_imports(self) -> None:
        def visit(nodes: Iterable[ast.stmt], type_checking: bool) -> None:
            for node in nodes:
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        self.imports.append(ImportedModule(
                            alias.name, node.lineno, type_checking))
                        local = alias.asname or alias.name.split(".")[0]
                        self.aliases[local] = (alias.name if alias.asname
                                               else alias.name.split(".")[0])
                elif isinstance(node, ast.ImportFrom):
                    if node.level:
                        target = self._resolve_relative(node.level,
                                                        node.module)
                    else:
                        target = node.module or ""
                    if target:
                        self.imports.append(ImportedModule(
                            target, node.lineno, type_checking))
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        self.aliases[local] = f"{target}.{alias.name}"
                elif (isinstance(node, ast.If)
                        and _is_type_checking_test(node.test)):
                    visit(node.body, True)
                    visit(node.orelse, type_checking)
                else:
                    for child in ast.iter_child_nodes(node):
                        if isinstance(child, ast.stmt):
                            visit([child], type_checking)
                        elif isinstance(child, ast.excepthandler):
                            visit(child.body, type_checking)

        visit(self.tree.body, False)

    # -- call resolution ----------------------------------------------------
    def dotted_name(self, node: ast.expr) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, with aliases resolved."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0])
        if head is not None:
            parts[0:1] = head.split(".")
        return ".".join(parts)

    def calls(self) -> Iterator[tuple[ast.Call, Optional[str]]]:
        """Every Call node, paired with its resolved dotted name."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node, self.dotted_name(node.func)


class ContextCache:
    """Parse each file at most once per lint run.

    Both the per-file rule pass and the ``--deep`` whole-program
    analyses need the same :class:`FileContext` objects; sharing them
    through one cache keeps a full-tree ``--deep`` run to a single
    parse of each file (the dominant cost).
    """

    def __init__(self, config: Optional[LintConfig] = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self._by_path: dict[Path, FileContext] = {}

    def get(self, path: Union[str, Path]) -> FileContext:
        """Context for ``path``, built on first request (may raise)."""
        key = Path(path).resolve()
        ctx = self._by_path.get(key)
        if ctx is None:
            ctx = FileContext.build(Path(path), self.config)
            self._by_path[key] = ctx
        return ctx

    def __len__(self) -> int:
        return len(self._by_path)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_file(path: Union[str, Path],
              rules: Optional[Sequence] = None,
              config: Optional[LintConfig] = None,
              cache: Optional[ContextCache] = None) -> list[Diagnostic]:
    """Run the given rules (default: all) over one file."""
    from .rules import ALL_RULES
    config = config or DEFAULT_CONFIG
    rules = list(rules) if rules is not None else list(ALL_RULES)
    path = Path(path)
    try:
        if cache is not None:
            ctx = cache.get(path)
        else:
            ctx = FileContext.build(path, config)
    except SyntaxError as exc:
        return [Diagnostic(str(path), exc.lineno or 1, "parse-error",
                           f"cannot parse: {exc.msg}")]
    suppressed = suppressions_for(ctx.source)
    out: list[Diagnostic] = []
    for rule in rules:
        if config.allows(rule.name, ctx.relpath):
            continue
        for diag in rule.check(ctx):
            if not is_suppressed(diag, suppressed):
                out.append(diag)
    return sorted(out, key=lambda d: (d.path, d.line, d.rule))


def run_lint(paths: Optional[Sequence[Union[str, Path]]] = None,
             rules: Optional[Sequence] = None,
             config: Optional[LintConfig] = None,
             cache: Optional[ContextCache] = None) -> list[Diagnostic]:
    """Lint files/dirs (default: the repo's ``src/`` and ``scripts/``).

    Returns every unsuppressed finding, sorted by path, line and rule.
    Pass a :class:`ContextCache` to share parsed ASTs with a subsequent
    deep-analysis pass.
    """
    if paths is None:
        paths = [REPO_ROOT / "src", REPO_ROOT / "scripts"]
    if cache is None:
        cache = ContextCache(config or DEFAULT_CONFIG)
    out: list[Diagnostic] = []
    for path in iter_python_files(paths):
        out.extend(lint_file(path, rules=rules, config=config, cache=cache))
    return sorted(out, key=lambda d: (d.path, d.line, d.rule))
