"""Determinism rules: sim-reachable code must be exactly replayable.

The §3 cost-model experiments are only comparable across runs and PRs
because fixed-seed runs are byte-identical.  That breaks the moment any
sim-reachable layer (``sim``, ``cluster``, ``core``, ``web``,
``faults``) reads the wall clock, sleeps the host, or draws from the
process-global ``random`` module instead of the engine clock
(``sim.now``) and the seeded :class:`repro.sim.rng.RandomStreams`
substreams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .base import Rule

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import FileContext

__all__ = ["RULES", "classify_call"]

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_ENV_CALLS = frozenset({
    "os.getenv", "os.environ.get", "os.putenv",
    "locale.getlocale", "locale.setlocale", "locale.getdefaultlocale",
    "locale.getpreferredencoding", "locale.strxfrm", "locale.strcoll",
})


def classify_call(dotted: Optional[str]) -> Optional[tuple[str, str]]:
    """Determinism hazard class of one resolved call, if any.

    Returns ``(suffix, message)`` — the suffix completes a rule name
    (``det-<suffix>`` per-file, ``det-reach-<suffix>`` for the deep
    call-graph pass) so both passes flag the same hazards.
    """
    if dotted is None:
        return None
    if dotted in _WALL_CLOCK_CALLS:
        return ("wall-clock", f"wall-clock read {dotted}(); use the engine "
                              f"clock (sim.now)")
    if dotted == "time.sleep":
        return ("sleep", "time.sleep() stalls the host, not the simulation; "
                         "yield sim.timeout(delay)")
    if dotted == "random" or dotted.startswith("random."):
        return ("global-random", f"{dotted}() draws from process-global "
                                 f"state; use RandomStreams")
    if dotted == "os.urandom":
        return ("urandom", "os.urandom() is irreproducible entropy; "
                           "use RandomStreams")
    if dotted.startswith("numpy.random."):
        return ("foreign-rng", f"{dotted}() creates an unmanaged generator; "
                               f"only repro.sim.rng may touch numpy.random")
    if dotted in _ENV_CALLS:
        return ("env-read", f"{dotted}() reads host environment/locale "
                            f"state; thread configuration in explicitly")
    return None


class _DeterminismRule(Rule):
    """Shared scoping: only sim-reachable layers are checked."""

    def applies(self, ctx: "FileContext") -> bool:
        return ctx.layer in ctx.config.determinism_layers


class WallClockRule(_DeterminismRule):
    """No wall-clock reads: simulated time comes from ``sim.now``."""

    name = "det-wall-clock"
    summary = ("no time.time()/datetime.now() etc. in sim-reachable code; "
               "use the engine clock (sim.now)")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if not self.applies(ctx):
            return
        for node, dotted in ctx.calls():
            if dotted in _WALL_CLOCK_CALLS:
                yield self.diag(ctx, node.lineno,
                                f"wall-clock read {dotted}(); sim-reachable "
                                f"code must use the engine clock (sim.now)")


class SleepRule(_DeterminismRule):
    """No host sleeps: waiting is ``yield sim.timeout(...)``."""

    name = "det-sleep"
    summary = "no time.sleep() in sim-reachable code; yield sim.timeout()"

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if not self.applies(ctx):
            return
        for node, dotted in ctx.calls():
            if dotted == "time.sleep":
                yield self.diag(ctx, node.lineno,
                                "time.sleep() stalls the host, not the "
                                "simulation; yield sim.timeout(delay)")


class GlobalRandomRule(_DeterminismRule):
    """No process-global ``random`` module anywhere sim-reachable."""

    name = "det-global-random"
    summary = ("no global random module in sim-reachable code; draw from "
               "repro.sim.rng.RandomStreams")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if not self.applies(ctx):
            return
        for imp in ctx.imports:
            if imp.module == "random" or imp.module.startswith("random."):
                yield self.diag(ctx, imp.lineno,
                                "imports the global random module; all "
                                "randomness must flow through seeded "
                                "RandomStreams substreams")
        for node, dotted in ctx.calls():
            if dotted and dotted.startswith("random."):
                yield self.diag(ctx, node.lineno,
                                f"{dotted}() draws from process-global "
                                f"state; use RandomStreams")


class UrandomRule(_DeterminismRule):
    """No OS entropy."""

    name = "det-urandom"
    summary = "no os.urandom() in sim-reachable code"

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if not self.applies(ctx):
            return
        for node, dotted in ctx.calls():
            if dotted == "os.urandom":
                yield self.diag(ctx, node.lineno,
                                "os.urandom() is irreproducible entropy; "
                                "use RandomStreams")


class ForeignRngRule(_DeterminismRule):
    """Raw numpy generators bypass the named-substream discipline."""

    name = "det-foreign-rng"
    summary = ("no direct numpy.random outside repro.sim.rng; ask "
               "RandomStreams for a named substream")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if not self.applies(ctx):
            return
        for node, dotted in ctx.calls():
            if dotted and dotted.startswith("numpy.random."):
                yield self.diag(ctx, node.lineno,
                                f"{dotted}() creates an unmanaged generator; "
                                f"only repro.sim.rng may touch numpy.random")


RULES = (WallClockRule(), SleepRule(), GlobalRandomRule(), UrandomRule(),
         ForeignRngRule())
