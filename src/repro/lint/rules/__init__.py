"""The sweb-lint rule registry.

Each rule module contributes a family; ``ALL_RULES`` is the flat,
ordered registry the engine and the CLI use.  Adding a rule = write a
:class:`~repro.lint.rules.base.Rule` subclass, instantiate it in its
family's ``RULES`` tuple, and document it in ``docs/LINTING.md``.
"""

from .base import Rule
from .determinism import RULES as DETERMINISM_RULES
from .docstrings import RULES as DOCSTRING_RULES
from .iohygiene import RULES as IO_RULES
from .layering import RULES as LAYERING_RULES
from .scheduling import RULES as SCHEDULING_RULES

__all__ = ["ALL_RULES", "Rule", "rules_by_name"]

#: every registered rule, in report order
ALL_RULES: tuple[Rule, ...] = (
    DETERMINISM_RULES + LAYERING_RULES + IO_RULES + SCHEDULING_RULES
    + DOCSTRING_RULES
)


def rules_by_name() -> dict[str, Rule]:
    """Registry keyed by rule identifier."""
    return {rule.name: rule for rule in ALL_RULES}
