"""The sweb-lint rule registry.

Each rule module contributes a family; ``ALL_RULES`` is the flat,
ordered registry the engine and the CLI use.  Adding a rule = write a
:class:`~repro.lint.rules.base.Rule` subclass, instantiate it in its
family's ``RULES`` tuple, and document it in ``docs/LINTING.md``.

Whole-program analyses (:class:`~repro.lint.rules.base.DeepRule`)
register in ``ALL_DEEP_RULES`` and run only under
``sweb-repro lint --deep``.
"""

from .base import DeepRule, Rule
from .determinism import RULES as DETERMINISM_RULES
from .docstrings import RULES as DOCSTRING_RULES
from .iohygiene import RULES as IO_RULES
from .layering import RULES as LAYERING_RULES
from .ordering import RULES as ORDERING_RULES
from .purity import DEEP_RULES as PURITY_DEEP_RULES
from .reach import DEEP_RULES as REACH_DEEP_RULES
from .scheduling import RULES as SCHEDULING_RULES
from .streams import DEEP_RULES as STREAM_DEEP_RULES

__all__ = ["ALL_DEEP_RULES", "ALL_RULES", "DeepRule", "Rule",
           "rules_by_name"]

#: every registered per-file rule, in report order
ALL_RULES: tuple[Rule, ...] = (
    DETERMINISM_RULES + LAYERING_RULES + IO_RULES + SCHEDULING_RULES
    + ORDERING_RULES + DOCSTRING_RULES
)

#: every whole-program rule, run by the --deep driver
ALL_DEEP_RULES: tuple[DeepRule, ...] = (
    REACH_DEEP_RULES + STREAM_DEEP_RULES + PURITY_DEEP_RULES
)


def rules_by_name() -> dict[str, Rule]:
    """Registry keyed by rule identifier (per-file rules)."""
    return {rule.name: rule for rule in ALL_RULES}
