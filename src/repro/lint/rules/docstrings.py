"""Docstring rules: every module and public class says what it is for.

The reproduction leans on prose — each module opens by citing the part
of the paper it implements — so an undocumented module is a regression.
This family absorbs the old standalone ``scripts/check_docstrings.py``
(which now delegates here) into the unified analyzer.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Rule

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import FileContext

__all__ = ["RULES"]


class ModuleDocstringRule(Rule):
    """Modules open with a docstring."""

    name = "doc-module"
    summary = "every module has a docstring"

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ast.get_docstring(ctx.tree) is None:
            yield self.diag(ctx, 1, "module has no docstring")


class ClassDocstringRule(Rule):
    """Public classes carry a docstring."""

    name = "doc-class"
    summary = "every public class has a docstring"

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.ClassDef)
                    and not node.name.startswith("_")
                    and ast.get_docstring(node) is None):
                yield self.diag(ctx, node.lineno,
                                f"public class {node.name!r} has no "
                                f"docstring")


RULES = (ModuleDocstringRule(), ClassDocstringRule())
