"""RNG substream audit: every name literal, registered and collision-free.

``RandomStreams`` (src/repro/sim/rng.py) derives each substream's seed
from ``crc32(name)``.  Two hazards follow: a *dynamic* name defeats
auditing entirely, and two distinct names sharing a crc32 value yield
bit-identical "independent" streams.  This deep rule statically
collects every name reaching a RandomStreams draw anywhere in the
program — through defaults and call-site arguments for parameterised
names like ``zipf_sampler(stream=...)``, and through string
concatenation for derived names like ``stream + "-tail"`` — then checks
the used set against the central registry ``sim/streamnames.py``:

* ``stream-dynamic``       — a name the analyzer cannot resolve to literals
* ``stream-unregistered``  — a used name missing from STREAM_NAMES
* ``stream-unused``        — a registered name no call site uses
* ``stream-collision``     — two names sharing a crc32 key

``sim/rng.py`` itself is exempt (it is the implementation: its internal
``self.stream(name)`` forwards are what the audit resolves through).
"""

from __future__ import annotations

import ast
import zlib
from typing import TYPE_CHECKING, Iterator, Optional

from ..callgraph import FunctionInfo, match_args
from .base import DeepRule

if TYPE_CHECKING:
    from ..callgraph import Program
    from ..diagnostics import Diagnostic

__all__ = ["DEEP_RULES", "StreamAuditRule"]

#: RandomStreams methods whose first argument is a substream name
_RNG_NAME_METHODS = frozenset({"stream", "spawn", "uniform", "exponential",
                               "integers", "choice", "zipf_index"})

#: methods where a string first argument alone marks an rng call (numpy
#: generators never take a name; Simulator.spawn takes a generator)
_STRING_ARG_METHODS = _RNG_NAME_METHODS - {"spawn"}

_RANDOM_STREAMS = "repro.sim.rng.RandomStreams"
_REGISTRY_MODULE = "repro.sim.streamnames"
_IMPL_RELPATHS = frozenset({"src/repro/sim/rng.py",
                            "src/repro/sim/streamnames.py"})

#: sentinel distinguishing "dynamic" from "no values found"
_DYNAMIC = None


class StreamAuditRule(DeepRule):
    """Used ↔ registered bijection and crc32 collision-freedom."""

    name = "stream-audit"
    summary = ("every RandomStreams substream name must be a resolvable "
               "literal, registered in sim/streamnames.py, and "
               "crc32-collision-free")

    def check(self, program: "Program") -> Iterator["Diagnostic"]:
        used: dict[str, list[tuple[FunctionInfo, int]]] = {}
        for fn in program.functions.values():
            if fn.ctx.relpath in _IMPL_RELPATHS:
                continue
            for call in fn.calls:
                name_expr = self._rng_name_expr(program, fn, call)
                if name_expr is _DYNAMIC:
                    continue
                values = self._resolve_name(program, fn, name_expr, set())
                if values is _DYNAMIC:
                    yield self.diag(
                        fn.ctx, call.lineno,
                        "substream name is not a resolvable literal; "
                        "dynamic names defeat the crc32 audit — register "
                        "explicit names in sim/streamnames.py",
                        rule="stream-dynamic")
                    continue
                for value in values:
                    used.setdefault(value, []).append((fn, call.lineno))

        registered = self._registered(program)
        if registered is not None:
            reg_names, reg_ctx, reg_lines = registered
            for value in sorted(used):
                if value not in reg_names:
                    fn, lineno = min(
                        used[value], key=lambda u: (u[0].ctx.relpath, u[1]))
                    yield self.diag(
                        fn.ctx, lineno,
                        f"substream name '{value}' is not registered in "
                        f"sim/streamnames.py",
                        rule="stream-unregistered")
            for value in reg_names:
                if value not in used:
                    yield self.diag(
                        reg_ctx, reg_lines.get(value, 1),
                        f"registered substream '{value}' has no call site; "
                        f"remove it or wire it up",
                        rule="stream-unused")
            pool = sorted(set(reg_names) | set(used))
        else:
            reg_ctx, reg_lines = None, {}
            pool = sorted(used)

        by_key: dict[int, str] = {}
        for value in pool:
            key = zlib.crc32(value.encode("utf-8"))
            other = by_key.get(key)
            if other is not None and other != value:
                if reg_ctx is not None:
                    ctx = reg_ctx
                    line = reg_lines.get(value) or reg_lines.get(other) or 1
                else:
                    fn, line = used[value][0]
                    ctx = fn.ctx
                yield self.diag(
                    ctx, line,
                    f"substream names '{other}' and '{value}' collide under "
                    f"crc32 keying — their streams would be identical",
                    rule="stream-collision")
            else:
                by_key[key] = value

    # -- rng-call detection -------------------------------------------------
    def _rng_name_expr(self, program: "Program", fn: FunctionInfo,
                       call: ast.Call) -> Optional[ast.expr]:
        func = call.func
        if (not isinstance(func, ast.Attribute)
                or func.attr not in _RNG_NAME_METHODS):
            return _DYNAMIC
        first: Optional[ast.expr] = call.args[0] if call.args else None
        if first is None:
            for kw in call.keywords:
                if kw.arg == "name":
                    first = kw.value
                    break
        if first is None:
            return _DYNAMIC
        if not self._receiver_is_rng(program, fn, func.value):
            if not (func.attr in _STRING_ARG_METHODS
                    and isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                return _DYNAMIC
        return first

    def _receiver_is_rng(self, program: "Program", fn: FunctionInfo,
                         recv: ast.expr) -> bool:
        if isinstance(recv, ast.Name):
            for scope in program._scope_chain(fn):
                found = scope.local_types.get(recv.id)
                if found is not None:
                    return found == _RANDOM_STREAMS
                if recv.id in scope.bound_names:
                    break
        dotted = fn.ctx.dotted_name(recv)
        if dotted is not None:
            last = dotted.split(".")[-1]
            if last in ("rng", "streams", "random_streams"):
                return True
        return False

    # -- literal resolution -------------------------------------------------
    def _resolve_name(self, program: "Program", fn: FunctionInfo,
                      expr: ast.expr,
                      visiting: set[tuple[str, str]]
                      ) -> Optional[frozenset[str]]:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, str):
                return frozenset({expr.value})
            return _DYNAMIC
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self._resolve_name(program, fn, expr.left, visiting)
            right = self._resolve_name(program, fn, expr.right, visiting)
            if left is _DYNAMIC or right is _DYNAMIC:
                return _DYNAMIC
            return frozenset({a + b for a in left for b in right})
        if isinstance(expr, ast.JoinedStr):
            parts: list[frozenset[str]] = []
            for piece in expr.values:
                if isinstance(piece, ast.Constant):
                    parts.append(frozenset({str(piece.value)}))
                elif isinstance(piece, ast.FormattedValue):
                    resolved = self._resolve_name(program, fn, piece.value,
                                                  visiting)
                    if resolved is _DYNAMIC:
                        return _DYNAMIC
                    parts.append(resolved)
            out = [""]
            for part in parts:
                out = [a + b for a in out for b in sorted(part)]
            return frozenset(out)
        if isinstance(expr, ast.Name):
            # the name may live in an enclosing function's scope — the
            # sampler closures read their factory's ``stream`` parameter
            for scope in program._scope_chain(fn):
                if expr.id in scope.params:
                    return self._resolve_param(program, scope, expr.id,
                                               visiting)
                assigns = [v for n, v in scope.assigns if n == expr.id]
                if len(assigns) == 1:
                    return self._resolve_name(program, scope, assigns[0],
                                              visiting)
                if expr.id in scope.bound_names:
                    return _DYNAMIC
            return _DYNAMIC
        return _DYNAMIC

    def _resolve_param(self, program: "Program", fn: FunctionInfo,
                       param: str, visiting: set[tuple[str, str]]
                       ) -> Optional[frozenset[str]]:
        key = (fn.qname, param)
        if key in visiting or len(visiting) > 8:
            return _DYNAMIC
        visiting = visiting | {key}
        values: set[str] = set()
        default = fn.defaults.get(param)
        if default is not None:
            resolved = self._resolve_name(program, fn, default, visiting)
            if resolved is _DYNAMIC:
                return _DYNAMIC
            values.update(resolved)
        for site in program.callsites_by_callee.get(fn.qname, ()):
            caller = program.functions.get(site.caller)
            if caller is None:
                return _DYNAMIC
            arg = match_args(fn, site.call, site.bound).get(param)
            if arg is None:
                if default is None:
                    return _DYNAMIC
                continue
            resolved = self._resolve_name(program, caller, arg, visiting)
            if resolved is _DYNAMIC:
                return _DYNAMIC
            values.update(resolved)
        if not values:
            return _DYNAMIC
        return frozenset(values)

    # -- registry parsing ---------------------------------------------------
    def _registered(self, program: "Program"
                    ) -> Optional[tuple[frozenset[str], object,
                                        dict[str, int]]]:
        ctx = program.contexts.get(_REGISTRY_MODULE)
        if ctx is None:
            return None   # fixture trees carry no registry; skip bijection
        for node in ctx.tree.body:
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if (isinstance(target, ast.Name)
                    and target.id == "STREAM_NAMES"
                    and isinstance(getattr(node, "value", None), ast.Dict)):
                names: dict[str, int] = {}
                for k in node.value.keys:
                    if (isinstance(k, ast.Constant)
                            and isinstance(k.value, str)):
                        names[k.value] = k.lineno
                return frozenset(names), ctx, names
        return None


DEEP_RULES = (StreamAuditRule(),)
