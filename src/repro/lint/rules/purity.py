"""Observation-purity: the obs layer provably never writes sim state.

PR 5 pinned "tracing is observation-only" *dynamically*: the golden
determinism fingerprint is bit-identical with and without a tracer.
This deep rule turns that into a static guarantee, in three steps over
the :mod:`~repro.lint.dataflow` mutation summaries:

1. **Intraprocedural summaries** for every obs-layer function: which
   roots it writes (self / parameter / module global).
2. **Interprocedural fixpoint** over the call graph: if ``callee``
   mutates its parameter ``p`` and a caller passes its own parameter
   ``q`` (or ``self``) for ``p``, the caller mutates ``q`` too; a
   method call on a parameter-rooted receiver whose callee mutates
   ``self`` likewise propagates.
3. **Contract checks**:

   * ``purity-obs-global`` — an obs function writes module-level state;
   * ``purity-obs-param`` — an obs function mutates a parameter whose
     annotation is not an obs-layer type (mutating a ``Span`` is the
     layer's job; mutating anything else is writing caller state);
   * ``purity-obs-writeback`` — sim-reachable non-obs code passes a
     value that is not statically an obs handle into an obs call that
     mutates it.

Combined with the layering rule (obs imports nothing above itself),
a clean run proves: every ``tracer=``/metrics code path can only ever
write obs-owned objects — never sim-reachable state.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from ..callgraph import FunctionInfo, annotation_classes, match_args
from ..dataflow import MutationSummary, analyze_mutations
from .base import DeepRule

if TYPE_CHECKING:
    from ..callgraph import CallSite, Program
    from ..diagnostics import Diagnostic

__all__ = ["DEEP_RULES", "ObservationPurityRule"]

_OBS_PREFIX = "repro.obs."


def _is_obs_qname(qname: str) -> bool:
    return qname.startswith(_OBS_PREFIX)


def _chain_root_name(expr: ast.expr) -> Optional[str]:
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


class ObservationPurityRule(DeepRule):
    """Static form of the PR 5 observation-only contract."""

    name = "purity-obs"
    summary = ("obs-layer functions may mutate only their own state and "
               "obs-annotated parameters; sim code may hand obs calls "
               "only obs-typed handles")

    def check(self, program: "Program") -> Iterator["Diagnostic"]:
        obs_fns = {fn.qname: fn for fn in program.functions.values()
                   if fn.ctx.layer == "obs"}
        summaries: dict[str, MutationSummary] = {
            qname: analyze_mutations(fn) for qname, fn in obs_fns.items()}
        self._reclassify_closures(program, obs_fns, summaries)
        self._propagate(program, obs_fns, summaries)

        for qname in sorted(obs_fns):
            fn, summary = obs_fns[qname], summaries[qname]
            for name, line in sorted(summary.mutated_globals.items()):
                yield self.diag(
                    fn.ctx, line,
                    f"obs function {fn.name}() mutates module-level state "
                    f"'{name}'; the observation layer must be "
                    f"side-effect-free",
                    rule="purity-obs-global")
            for param, line in sorted(summary.mutated_params.items()):
                if self._obs_annotated(program, fn, param):
                    continue
                yield self.diag(
                    fn.ctx, line,
                    f"obs function {fn.name}() mutates parameter '{param}' "
                    f"which is not annotated as an obs type — the "
                    f"observation layer must not write caller state",
                    rule="purity-obs-param")

        yield from self._check_boundary(program, obs_fns, summaries)

    def _reclassify_closures(self, program: "Program",
                             obs_fns: dict[str, FunctionInfo],
                             summaries: dict[str, MutationSummary]) -> None:
        """Closure writes are not global writes.

        ``totals[key] += v`` inside a nested function mutates the
        *enclosing* function's local without any ``nonlocal`` (no
        rebinding), so the intraprocedural pass sees an unbound root.
        Walk the lexical chain: an enclosing local is own-state, an
        enclosing parameter is that function's parameter mutation.
        """
        for qname, fn in obs_fns.items():
            summary = summaries[qname]
            for name, line in list(summary.mutated_globals.items()):
                for scope in program._scope_chain(fn):
                    if scope.qname == qname:
                        continue
                    if name in scope.params:
                        del summary.mutated_globals[name]
                        outer = summaries.get(scope.qname)
                        if outer is not None:
                            outer.record_param(name, line)
                        break
                    if name in scope.bound_names:
                        del summary.mutated_globals[name]
                        break

    # -- interprocedural fixpoint -------------------------------------------
    def _propagate(self, program: "Program",
                   obs_fns: dict[str, FunctionInfo],
                   summaries: dict[str, MutationSummary]) -> None:
        sites = [s for s in program.callsites
                 if s.caller in obs_fns and s.callee in obs_fns]
        for _ in range(8):
            changed = False
            for site in sites:
                callee_s = summaries[site.callee]
                caller = obs_fns[site.caller]
                caller_s = summaries[site.caller]
                before = (caller_s.mutates_self,
                          len(caller_s.mutated_params),
                          len(caller_s.mutated_globals))
                mapping = match_args(obs_fns[site.callee], site.call,
                                     site.bound)
                for param in callee_s.mutated_params:
                    arg = mapping.get(param)
                    if arg is not None:
                        self._record_root(caller, caller_s, arg,
                                          site.call.lineno)
                if callee_s.mutates_self and site.bound and isinstance(
                        site.call.func, ast.Attribute):
                    self._record_root(caller, caller_s, site.call.func.value,
                                      site.call.lineno)
                after = (caller_s.mutates_self,
                         len(caller_s.mutated_params),
                         len(caller_s.mutated_globals))
                changed = changed or before != after
            if not changed:
                break

    def _record_root(self, fn: FunctionInfo, summary: MutationSummary,
                     expr: ast.expr, line: int) -> None:
        root = _chain_root_name(expr)
        if root is None:
            return
        self_name = fn.params[0] if fn.is_method and fn.params else None
        if root == self_name:
            summary.record_self(line)
        elif root in fn.params:
            summary.record_param(root, line)
        elif root not in fn.bound_names:
            summary.record_global(root, line)

    def _obs_annotated(self, program: "Program", fn: FunctionInfo,
                       param: str) -> bool:
        classes = annotation_classes(program, fn.ctx,
                                     fn.annotations.get(param))
        return bool(classes) and all(_is_obs_qname(c) for c in classes)

    # -- the sim → obs boundary ---------------------------------------------
    def _check_boundary(self, program: "Program",
                        obs_fns: dict[str, FunctionInfo],
                        summaries: dict[str, MutationSummary]
                        ) -> Iterator["Diagnostic"]:
        for site in program.callsites:
            if site.callee not in obs_fns or site.caller in obs_fns:
                continue
            caller = program.functions.get(site.caller)
            if caller is None:
                continue
            callee = obs_fns[site.callee]
            callee_s = summaries[site.callee]
            if not callee_s.mutated_params:
                continue
            mapping = match_args(callee, site.call, site.bound)
            for param in sorted(callee_s.mutated_params):
                arg = mapping.get(param)
                if arg is None:
                    continue
                if self._is_obs_value(program, caller, arg, depth=3):
                    continue
                yield self.diag(
                    caller.ctx, site.call.lineno,
                    f"passes a value that is not statically an obs handle "
                    f"into {callee.name}(), which mutates parameter "
                    f"'{param}' — obs calls may only write obs-owned "
                    f"objects",
                    rule="purity-obs-writeback")

    def _is_obs_value(self, program: "Program", fn: FunctionInfo,
                      expr: ast.expr, depth: int) -> bool:
        """Is ``expr`` statically an obs-layer object (or None)?"""
        if depth <= 0:
            return False
        if isinstance(expr, ast.Constant) and expr.value is None:
            return True
        if isinstance(expr, ast.IfExp):
            return (self._is_obs_value(program, fn, expr.body, depth - 1)
                    and self._is_obs_value(program, fn, expr.orelse,
                                           depth - 1))
        if isinstance(expr, ast.BoolOp):
            return all(self._is_obs_value(program, fn, v, depth - 1)
                       for v in expr.values)
        if isinstance(expr, ast.Name):
            for scope in program._scope_chain(fn):
                found = scope.local_types.get(expr.id)
                if found is not None:
                    return _is_obs_qname(found)
                assigns = [v for n, v in scope.assigns if n == expr.id]
                if assigns:
                    return all(
                        self._is_obs_value(program, scope, v, depth - 1)
                        for v in assigns)
                if expr.id in scope.params:
                    return self._obs_annotated(program, scope, expr.id)
                if expr.id in scope.bound_names:
                    return False
            return False
        if isinstance(expr, ast.Attribute):
            owner = self._receiver_class(program, fn, expr.value)
            if owner is not None:
                cinfo = program.classes.get(owner)
                if cinfo is not None:
                    ann = cinfo.attr_annotations.get(expr.attr)
                    classes = annotation_classes(program, cinfo.ctx, ann)
                    return bool(classes) and all(_is_obs_qname(c)
                                                 for c in classes)
            return False
        if isinstance(expr, ast.Call):
            res = program._resolve_callee(fn, expr.func)
            if res.kind == "constructor" and res.cls is not None:
                return _is_obs_qname(res.cls)
            for target in res.targets:
                callee = program.functions.get(target)
                if callee is None:
                    continue
                classes = annotation_classes(program, callee.ctx,
                                             callee.node.returns)
                if classes and all(_is_obs_qname(c) for c in classes):
                    return True
            return False
        return False

    def _receiver_class(self, program: "Program", fn: FunctionInfo,
                        expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if (fn.is_method and fn.params and expr.id == fn.params[0]
                    and fn.cls is not None):
                return fn.cls
            for scope in program._scope_chain(fn):
                found = scope.local_types.get(expr.id)
                if found is not None:
                    return found
                if expr.id in scope.bound_names:
                    return None
        return None


DEEP_RULES = (ObservationPurityRule(),)
