"""Base classes shared by every sweb-lint rule."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from ..callgraph import Program
    from ..engine import FileContext

__all__ = ["DeepRule", "Rule"]


class Rule:
    """One named check over a :class:`~repro.lint.engine.FileContext`.

    Subclasses set :attr:`name` (the identifier used in diagnostics,
    suppression comments and the allowlist) and :attr:`summary` (one
    line for ``sweb-repro lint --list-rules``), and implement
    :meth:`check` as a generator of diagnostics.
    """

    name: str = ""
    summary: str = ""

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: "FileContext", line: int,
             message: str) -> Diagnostic:
        """Build a diagnostic for this rule at ``line`` of the file."""
        return Diagnostic(ctx.relpath, line, self.name, message)


class DeepRule:
    """One whole-program check over a :class:`~repro.lint.callgraph.Program`.

    Deep rules see the call graph, sim-reachability and every parsed
    file at once; they run only under ``sweb-repro lint --deep``.
    Findings still honour per-line suppression comments and the config
    allowlist (the deep driver filters them by file).
    """

    name: str = ""
    summary: str = ""

    def check(self, program: "Program") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: "FileContext", line: int, message: str,
             rule: str = "") -> Diagnostic:
        """Build a diagnostic (``rule`` overrides for rule families)."""
        return Diagnostic(ctx.relpath, line, rule or self.name, message)
