"""Layering rules: the import DAG of ``docs/ARCHITECTURE.md``, enforced.

``sim → sched → cluster → cache → {faults, web} → core → workload →
experiments``: each
layer imports only layers strictly below it, and the experiments layer
touches subsystems only through their public ``__init__`` exports, so a
package's module layout can change without breaking every table and
figure.  ``TYPE_CHECKING``-gated imports are exempt — they are typing
only and cannot affect runtime behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .base import Rule

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import FileContext

__all__ = ["RULES"]


def _repro_target(module: str) -> Optional[list[str]]:
    """Split a dotted target into parts if it is inside the repro package."""
    parts = module.split(".")
    return parts if parts[0] == "repro" else None


class LayerImportRule(Rule):
    """Runtime imports must follow the layer DAG."""

    name = "layer-import"
    summary = ("layers import only the layers below them (sim -> sched -> "
               "cluster -> cache -> {faults, web} -> core -> workload -> "
               "experiments)")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        allowed = ctx.config.layer_allowed.get(ctx.layer or "")
        if allowed is None:          # side module / scripts / external file
            return
        for imp in ctx.imports:
            if imp.type_checking:
                continue
            parts = _repro_target(imp.module)
            if parts is None:
                continue
            if len(parts) == 1:
                yield self.diag(ctx, imp.lineno,
                                f"layer '{ctx.layer}' imports the repro "
                                f"package root, which aggregates every layer")
                continue
            target = parts[1]
            if target == ctx.layer or target in allowed:
                continue
            if target in ctx.config.layer_allowed:
                yield self.diag(ctx, imp.lineno,
                                f"layer '{ctx.layer}' must not import "
                                f"'repro.{target}' (allowed: "
                                f"{', '.join(sorted(allowed)) or 'none'})")
            else:
                yield self.diag(ctx, imp.lineno,
                                f"layer '{ctx.layer}' must not import the "
                                f"side module 'repro.{target}'")


class DeepImportRule(Rule):
    """Experiments use public ``__init__`` exports, not submodules."""

    name = "layer-deep-import"
    summary = ("experiments import subsystems via their public __init__ "
               "exports, never from submodules")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer != "experiments":
            return
        for imp in ctx.imports:
            if imp.type_checking:
                continue
            parts = _repro_target(imp.module)
            if (parts and len(parts) >= 3 and parts[1] != "experiments"
                    and parts[1] in ctx.config.layer_allowed):
                yield self.diag(ctx, imp.lineno,
                                f"deep import of '{imp.module}'; use the "
                                f"public exports of 'repro.{parts[1]}'")


RULES = (LayerImportRule(), DeepImportRule())
