"""I/O hygiene rules: the library computes, the edges talk.

Only the CLI, the bench harness, the report generator, helper scripts
and the lint runner may print or write files; everything else returns
data.  This keeps library output machine-consumable and the simulator
free of hidden host-filesystem state.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from .base import Rule

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import FileContext

__all__ = ["RULES"]

_WRITE_MODE_CHARS = set("wax+")
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_WRITE_CALLS = frozenset({
    "os.remove", "os.unlink", "os.rename", "os.makedirs", "os.mkdir",
    "shutil.rmtree", "shutil.copy", "shutil.copyfile", "shutil.move",
})


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode argument of an ``open()`` call, if present."""
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        mode = next((kw.value for kw in node.keywords
                     if kw.arg == "mode"), None)
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None        # dynamic mode: treat as a potential write


class PrintRule(Rule):
    """No ``print()`` outside the allowlisted edges."""

    name = "io-print"
    summary = ("no print() outside cli.py/bench.py/experiments/report.py/"
               "scripts/; return data instead")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer is None:
            return
        for node, dotted in ctx.calls():
            if dotted == "print":
                yield self.diag(ctx, node.lineno,
                                "print() in library code; return data and "
                                "let the CLI/report layer render it")


class FileWriteRule(Rule):
    """No filesystem writes outside the allowlisted edges."""

    name = "io-file-write"
    summary = ("no file writes (open('w'), write_text, os/shutil mutation) "
               "outside the allowlisted edges")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer is None:
            return
        for node, dotted in ctx.calls():
            if dotted == "open":
                mode = _open_mode(node)
                if mode is None or _WRITE_MODE_CHARS & set(mode):
                    yield self.diag(ctx, node.lineno,
                                    "open() for writing in library code")
            elif dotted in _WRITE_CALLS:
                yield self.diag(ctx, node.lineno,
                                f"filesystem mutation {dotted}() in "
                                f"library code")
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _WRITE_METHODS):
                yield self.diag(ctx, node.lineno,
                                f".{node.func.attr}() writes a file in "
                                f"library code")


RULES = (PrintRule(), FileWriteRule())
