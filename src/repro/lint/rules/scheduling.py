"""Scheduling-misuse rules: only the engine touches the event heap.

The PR-2 performance pass inlined the run loop and exposed how easy it
is to "help" the scheduler from outside — pushing onto the simulator's
queue directly, or re-sorting it with ``heapq`` — which silently breaks
the ``(time, priority, seq)`` determinism contract.  Everything must go
through the public ``Simulator`` API (``spawn``/``timeout``/``defer``/
``schedule``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from .base import Rule

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import FileContext

__all__ = ["RULES"]

#: private engine attributes nothing outside sim/engine.py may touch
_ENGINE_INTERNALS = frozenset({"_queue", "_heap", "_cb_pool"})


class HeapqRule(Rule):
    """No direct ``heapq`` use outside the engine."""

    name = "sched-heapq"
    summary = "no heapq import/use outside sim/engine.py"

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer is None:
            return
        for imp in ctx.imports:
            if imp.module == "heapq":
                yield self.diag(ctx, imp.lineno,
                                "imports heapq; event ordering belongs to "
                                "sim/engine.py (use Simulator.spawn/timeout/"
                                "defer/schedule)")
        for node, dotted in ctx.calls():
            if dotted and dotted.startswith("heapq."):
                yield self.diag(ctx, node.lineno,
                                f"{dotted}() manipulates a heap directly; "
                                f"only sim/engine.py owns event ordering")


class EngineInternalsRule(Rule):
    """No reaching into the simulator's private event queue."""

    name = "sched-engine-internals"
    summary = ("no access to the simulator's private event queue "
               "(_queue/_heap/_cb_pool) outside sim/engine.py")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer is None:
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in _ENGINE_INTERNALS):
                yield self.diag(ctx, node.lineno,
                                f"touches engine internal '.{node.attr}'; "
                                f"use the public Simulator API")


RULES = (HeapqRule(), EngineInternalsRule())
