"""Call-graph determinism: det-* hazards anywhere sim-reachable.

The per-file det-* rules gate by *layer membership* — a blessed-layer
file gets checked, everything else is exempt.  This deep rule closes
the gap: any function transitively callable from ``Simulator.run``/
``step``, the fluid loop, or a spawned generator executes *during* a
simulation regardless of which file it lives in (``bench.py`` phase
drivers, experiment generators, nested workload closures).  Findings
carry the reachability chain so the "why is this sim-reachable?"
question answers itself.

Rule names are ``det-reach-<suffix>`` with the same suffixes as the
per-file ``det-<suffix>`` family, plus ``env-read`` (host environment /
locale state has no business steering a simulation).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..dataflow import iter_own_nodes
from .base import DeepRule
from .determinism import classify_call

if TYPE_CHECKING:
    from ..callgraph import Program
    from ..diagnostics import Diagnostic

__all__ = ["DEEP_RULES", "ReachDeterminismRule"]


class ReachDeterminismRule(DeepRule):
    """det-* checking driven by sim-reachability, not layer membership."""

    name = "det-reach"
    summary = ("determinism hazards in any function reachable from the "
               "simulation entry points, regardless of layer")

    def check(self, program: "Program") -> Iterator["Diagnostic"]:
        det_layers = program.config.determinism_layers
        for fn in program.reachable_functions():
            if fn.ctx.layer in det_layers:
                continue   # already covered by the per-file det-* pass
            chain = program.explain(fn.qname, limit=4)
            for call in fn.calls:
                hazard = classify_call(fn.ctx.dotted_name(call.func))
                if hazard is not None:
                    suffix, message = hazard
                    yield self.diag(
                        fn.ctx, call.lineno,
                        f"{message} [sim-reachable: {chain}]",
                        rule=f"det-reach-{suffix}")
            for node in iter_own_nodes(fn):
                if (isinstance(node, ast.Attribute)
                        and node.attr == "environ"
                        and fn.ctx.dotted_name(node) == "os.environ"):
                    yield self.diag(
                        fn.ctx, node.lineno,
                        f"os.environ read in sim-reachable code "
                        f"[sim-reachable: {chain}]",
                        rule="det-reach-env-read")


DEEP_RULES = (ReachDeterminismRule(),)
