"""Ordering-determinism rules: no iteration order left to chance.

CPython dicts iterate in insertion order — deterministic given a
deterministic build.  Sets do not make that promise in any useful
sense: string hashes are salted per process (PYTHONHASHSEED), so ``for
x in {...}`` can produce a different order on every run.  Any set
iteration that feeds a decision, a report line, or a float
accumulation is therefore a reproducibility bug *anywhere* in this
repo, not just in the blessed sim layers.  Similarly, host environment
and locale reads smuggle per-machine state into runs, and
multiprocessing primitives that yield results in completion order
bypass the one canonical sorted merge in ``experiments/shard.py``.

| rule | flags |
|---|---|
| ``order-set-iter``  | iterating / materialising a set without ``sorted()`` |
| ``order-env-read``  | ``os.environ`` / ``os.getenv`` / ``locale`` reads in det layers |
| ``order-mp-merge``  | multiprocessing outside shard.py; completion-order primitives anywhere |
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from .base import Rule

if TYPE_CHECKING:
    from ..diagnostics import Diagnostic
    from ..engine import FileContext

__all__ = ["RULES"]

#: consumers whose output depends on iteration order.  ``sorted``/
#: ``min``/``max``/``len``/``any``/``all``/``frozenset`` are
#: order-independent and stay legal; ``sum`` is included because float
#: addition does not commute bit-for-bit.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "iter", "enumerate",
                                    "sum"})

#: the one file allowed to touch multiprocessing — and only through the
#: ordered ``pool.map`` + sorted-by-cell-id merge
_CANONICAL_SHARD = "src/repro/experiments/shard.py"

_UNORDERED_PRIMITIVES = frozenset({"imap_unordered", "as_completed"})


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically set-valued: literal, comprehension, set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_set_annotation(ann: Optional[ast.expr]) -> bool:
    if ann is None:
        return False
    target = ann.value if isinstance(ann, ast.Subscript) else ann
    return isinstance(target, ast.Name) and target.id in ("set", "frozenset")


class SetIterationRule(Rule):
    """Iterating a set hands your ordering to the hash salt."""

    name = "order-set-iter"
    summary = ("no iterating/materialising a set without sorted(); set "
               "order varies with the per-process hash seed")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer is None:
            return
        # name -> ordered (lineno, is_set) assignment history, so a
        # later `x = sorted(x)` rebinding clears the taint
        history: dict[str, list[tuple[int, bool]]] = {}
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                a = node.args
                for arg in (*a.posonlyargs, *a.args, *a.kwonlyargs):
                    if _is_set_annotation(arg.annotation):
                        history.setdefault(arg.arg, []).append(
                            (node.lineno, True))
                continue
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
                if (isinstance(node.target, ast.Name)
                        and _is_set_annotation(node.annotation)):
                    history.setdefault(node.target.id, []).append(
                        (node.lineno, True))
                    continue
            for target in targets:
                if isinstance(target, ast.Name) and value is not None:
                    history.setdefault(target.id, []).append(
                        (node.lineno, _is_set_expr(value)))

        def is_set_valued(expr: ast.expr, lineno: int) -> bool:
            if _is_set_expr(expr):
                return True
            if isinstance(expr, ast.Name):
                entries = [flag for line, flag in history.get(expr.id, ())
                           if line <= lineno]
                return bool(entries) and entries[-1]
            return False

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_valued(node.iter, node.lineno):
                    yield self._finding(ctx, node.lineno, "for loop")
            elif isinstance(node, ast.comprehension):
                if is_set_valued(node.iter, node.iter.lineno):
                    yield self._finding(ctx, node.iter.lineno,
                                        "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name)
                        and func.id in _ORDER_SENSITIVE_CALLS
                        and node.args
                        and is_set_valued(node.args[0], node.lineno)):
                    yield self._finding(ctx, node.lineno,
                                        f"{func.id}() call")
                elif (isinstance(func, ast.Attribute)
                      and func.attr == "join" and node.args
                      and is_set_valued(node.args[0], node.lineno)):
                    yield self._finding(ctx, node.lineno, "str.join()")
            elif isinstance(node, ast.Starred):
                if is_set_valued(node.value, getattr(node, "lineno", 1)):
                    yield self._finding(ctx, node.lineno, "unpacking")

    def _finding(self, ctx: "FileContext", line: int,
                 where: str) -> "Diagnostic":
        return self.diag(ctx, line,
                         f"{where} iterates a set; order follows the "
                         f"per-process hash seed — wrap it in sorted()")


class EnvReadRule(Rule):
    """No host environment/locale reads in sim-reachable layers."""

    name = "order-env-read"
    summary = ("no os.environ/os.getenv/locale reads in sim-reachable "
               "layers; thread configuration in explicitly")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer not in ctx.config.determinism_layers:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                if ctx.dotted_name(node) == "os.environ":
                    yield self.diag(ctx, node.lineno,
                                    "reads os.environ; per-host environment "
                                    "must not steer a simulation")
            elif isinstance(node, ast.Call):
                dotted = ctx.dotted_name(node.func)
                if dotted == "os.getenv" or (dotted or "").startswith(
                        "locale."):
                    yield self.diag(ctx, node.lineno,
                                    f"{dotted}() reads host "
                                    f"environment/locale state")


class MultiprocessingMergeRule(Rule):
    """All cross-process accumulation goes through the canonical merge."""

    name = "order-mp-merge"
    summary = ("multiprocessing only in experiments/shard.py, and never "
               "via completion-order primitives "
               "(imap_unordered/as_completed)")

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]:
        if ctx.layer is None:
            return
        in_shard = ctx.relpath == _CANONICAL_SHARD
        if not in_shard:
            for imp in ctx.imports:
                if (imp.module.split(".")[0] in ("multiprocessing",
                                                 "concurrent")
                        and not imp.type_checking):
                    yield self.diag(ctx, imp.lineno,
                                    f"imports {imp.module}; cross-process "
                                    f"work belongs in experiments/shard.py "
                                    f"behind its sorted snapshot merge")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                name = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else "")
                if name in _UNORDERED_PRIMITIVES:
                    yield self.diag(ctx, node.lineno,
                                    f"{name}() yields results in completion "
                                    f"order; use the ordered pool.map + "
                                    f"sorted merge in experiments/shard.py")


RULES = (SetIterationRule(), EnvReadRule(), MultiprocessingMergeRule())
