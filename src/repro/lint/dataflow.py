"""Intraprocedural mutation tracking for the observation-purity proof.

For each function we compute a :class:`MutationSummary`: which *roots*
the function writes through — ``self``, a named parameter, a local, or
module-level state.  A "write" is an attribute/subscript store, an
augmented assignment, a ``del``, a known mutator-method call
(``append``/``update``/``add``/…), or assignment through a
``global``/``nonlocal`` declaration.  Locals assigned directly from a
parameter (or from ``self.attr``) are treated as aliases of that root,
so ``buf = self._buf; buf.append(x)`` still counts as a self-write.

Summaries order into a small purity lattice::

    PURE  <  OWN (self + locals)  <  PARAM  <  GLOBAL

``lint/rules/purity.py`` composes these summaries over the call graph:
an obs-layer function may sit at OWN, or at PARAM only when every
mutated parameter is annotated with an obs-layer type — which is
exactly the static form of PR 5's "observation-only" contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .callgraph import FunctionInfo

__all__ = ["MUTATOR_METHODS", "MutationSummary", "PURITY_LEVELS",
           "analyze_mutations", "iter_own_nodes", "purity_level"]

#: method names that mutate their receiver in place (list/dict/set/deque
#: and file-like receivers).  Over-approximate on purpose: a same-named
#: method on a repo class is almost certainly also a mutator.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend", "insert",
    "pop", "popleft", "popitem", "remove", "reverse", "setdefault", "sort",
    "update", "write", "writelines",
})

#: the purity lattice, least to most effectful
PURITY_LEVELS = ("pure", "own", "param", "global")


@dataclass
class MutationSummary:
    """Which roots one function writes through (first line per root)."""

    mutates_self: bool = False
    self_line: int = 0
    mutated_params: dict[str, int] = field(default_factory=dict)
    mutated_globals: dict[str, int] = field(default_factory=dict)

    def record_param(self, name: str, line: int) -> None:
        self.mutated_params.setdefault(name, line)

    def record_global(self, name: str, line: int) -> None:
        self.mutated_globals.setdefault(name, line)

    def record_self(self, line: int) -> None:
        if not self.mutates_self:
            self.mutates_self = True
            self.self_line = line


def purity_level(summary: MutationSummary) -> str:
    """Position of a summary in the PURE < OWN < PARAM < GLOBAL lattice."""
    if summary.mutated_globals:
        return "global"
    if summary.mutated_params:
        return "param"
    if summary.mutates_self:
        return "own"
    return "pure"


def iter_own_nodes(fn: FunctionInfo) -> Iterator[ast.AST]:
    """Walk a function's own body, pruning nested def/class bodies.

    Nested functions are separate :class:`FunctionInfo` entries with
    their own summaries; lambdas and comprehensions stay attributed to
    the enclosing function.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _chain_root(expr: ast.expr) -> Optional[str]:
    """The root Name of an attribute/subscript chain, if any."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


class _RootClassifier:
    """Map a root name to self/param/local/global within one function."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.self_name = fn.params[0] if fn.is_method and fn.params else None
        # locals aliasing a parameter or a self attribute keep that root
        self.aliases: dict[str, str] = {}
        for name, value in fn.assigns:
            root = _chain_root(value) if isinstance(
                value, (ast.Name, ast.Attribute, ast.Subscript)) else None
            if root is None:
                continue
            if root == self.self_name and self.self_name is not None:
                self.aliases.setdefault(name, "self")
            elif root in fn.params:
                self.aliases.setdefault(name, f"param:{root}")

    def classify(self, root: Optional[str]) -> tuple[str, str]:
        """``(kind, name)`` where kind is self/param/local/global/expr."""
        fn = self.fn
        if root is None:
            return "expr", ""
        if self.self_name is not None and root == self.self_name:
            return "self", root
        alias = self.aliases.get(root)
        if alias == "self":
            return "self", root
        if alias is not None and alias.startswith("param:"):
            return "param", alias.split(":", 1)[1]
        if root in fn.params:
            return "param", root
        if root in fn.global_decls:
            return "global", root
        if root in fn.nonlocal_decls:
            return "nonlocal", root
        if root in fn.bound_names:
            return "local", root
        return "global", root


def analyze_mutations(fn: FunctionInfo) -> MutationSummary:
    """Intraprocedural mutation summary of one function's own body."""
    summary = MutationSummary()
    classifier = _RootClassifier(fn)

    def record(expr: ast.expr, line: int) -> None:
        kind, name = classifier.classify(_chain_root(expr))
        if kind == "self":
            summary.record_self(line)
        elif kind == "param":
            summary.record_param(name, line)
        elif kind == "global":
            summary.record_global(name, line)
        # locals, nonlocals (the enclosing function's frame) and
        # expression temporaries are the function's own state

    for node in iter_own_nodes(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    record(target, node.lineno)
                elif (isinstance(target, ast.Name)
                      and (target.id in fn.global_decls
                           or target.id in fn.nonlocal_decls)):
                    summary.record_global(target.id, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    record(target, node.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS):
                record(func.value, node.lineno)
    return summary
