"""Diagnostics and suppression comments for sweb-lint.

A :class:`Diagnostic` is one finding, rendered as ``file:line: rule:
message`` so editors and CI logs can jump straight to it.  A finding is
silenced by a ``# sweb-lint: disable=<rule>[,<rule>...]`` comment either
on the offending line or on a standalone comment line directly above it;
``disable=all`` silences every rule for that line.  Suppressions are
meant to carry a one-line justification next to them — the analyzer
cannot check prose, but review can.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Diagnostic", "suppressions_for"]

_SUPPRESS_RE = re.compile(r"#\s*sweb-lint:\s*disable=([A-Za-z0-9_\-, ]+)")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinned to a file, line and rule."""

    path: str        # repo-relative posix path (or absolute if external)
    line: int        # 1-based line of the offending node
    rule: str        # rule identifier, e.g. "det-wall-clock"
    message: str     # human-readable explanation

    def format(self) -> str:
        """Render as the canonical ``file:line: rule: message`` string."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def __str__(self) -> str:
        return self.format()


def suppressions_for(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule names suppressed *at* that line.

    A comment on line N suppresses findings on line N; if the comment is
    the only thing on its line, it also suppresses findings on line N+1
    (so a long offending statement can carry its justification above).
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        suppressed.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):       # standalone comment line
            suppressed.setdefault(lineno + 1, set()).update(rules)
    return suppressed


def is_suppressed(diag: Diagnostic,
                  suppressed: dict[int, set[str]]) -> bool:
    """True if ``diag`` is silenced by a suppression comment."""
    rules = suppressed.get(diag.line)
    if not rules:
        return False
    return diag.rule in rules or "all" in rules
