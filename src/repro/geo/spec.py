"""Geo topology: named sites, per-site clusters, and the WAN link matrix.

A :class:`GeoSpec` describes one *origin* cluster (where every document's
authoritative copy lives) plus edge clusters behind WAN links — the
CDN-shaped deployment the ROADMAP names as the next rung above SWEB's
single multicomputer.  Latencies and bandwidths are per directed pair but
declared symmetric (one :class:`WanLink` covers both directions), which
matches the mid-90s leased-line reality the paper's Rutgers experiments
probed from the client side.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster.topology import ClusterSpec, meiko_cs2

__all__ = ["WanLink", "SiteSpec", "GeoSpec", "geo3"]

MB = 1e6


@dataclass(frozen=True)
class WanLink:
    """One inter-site WAN pipe: latency (one-way seconds) + bandwidth."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative WAN latency: {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"WAN bandwidth must be > 0: {self.bandwidth}")


@dataclass(frozen=True)
class SiteSpec:
    """One site: a name, the cluster hardware there, and its population
    weight (the fraction of global client arrivals homed to it, before
    normalisation)."""

    name: str
    cluster: ClusterSpec
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("site needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"site weight must be > 0: {self.weight}")


@dataclass(frozen=True)
class GeoSpec:
    """A multi-cluster deployment: sites plus the symmetric link matrix.

    ``links`` lists ``(site_a, site_b, WanLink)`` once per unordered
    pair; every distinct pair must be covered so routing and placement
    never invent a cost.
    """

    name: str
    sites: tuple[SiteSpec, ...]
    links: tuple[tuple[str, str, WanLink], ...]
    origin: str

    def __post_init__(self) -> None:
        names = [s.name for s in self.sites]
        if len(names) < 1:
            raise ValueError("a GeoSpec needs at least one site")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")
        if self.origin not in names:
            raise ValueError(f"origin {self.origin!r} is not a site")
        covered = set()
        for a, b, _link in self.links:
            if a not in names or b not in names or a == b:
                raise ValueError(f"bad link endpoints ({a!r}, {b!r})")
            key = frozenset((a, b))
            if key in covered:
                raise ValueError(f"duplicate link {a!r}<->{b!r}")
            covered.add(key)
        needed = {frozenset((a, b))
                  for i, a in enumerate(names) for b in names[i + 1:]}
        missing = needed - covered
        if missing:
            raise ValueError(f"missing WAN links: {sorted(map(sorted, missing))}")

    # -- lookups ----------------------------------------------------------
    @property
    def site_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.sites)

    @property
    def edge_names(self) -> tuple[str, ...]:
        """Every non-origin site, in declaration order."""
        return tuple(s.name for s in self.sites if s.name != self.origin)

    def site(self, name: str) -> SiteSpec:
        for s in self.sites:
            if s.name == name:
                return s
        raise KeyError(name)

    def link(self, a: str, b: str) -> WanLink:
        """The WAN link between two distinct sites (symmetric)."""
        if a == b:
            raise ValueError(f"no self-link for site {a!r}")
        key = frozenset((a, b))
        for la, lb, link in self.links:
            if frozenset((la, lb)) == key:
                return link
        raise KeyError(f"no link {a!r}<->{b!r}")

    def nearest_order(self, site: str) -> tuple[str, ...]:
        """Every *other* site ordered by WAN latency ascending — the
        deterministic spill sequence when ``site`` is overloaded or dark.
        Ties break on site name."""
        others = [s.name for s in self.sites if s.name != site]
        return tuple(sorted(others,
                            key=lambda o: (self.link(site, o).latency, o)))

    def total_weight(self) -> float:
        return sum(s.weight for s in self.sites)


def geo3(origin_nodes: int = 4, edge_nodes: int = 2,
         west_latency: float = 30e-3, east_latency: float = 80e-3,
         wan_bandwidth: float = 8 * MB) -> GeoSpec:
    """The reference testbed: one Meiko origin plus two smaller edges.

    ``west`` sits one coast away (default 30 ms), ``east`` across the
    country (default 80 ms); the edge-to-edge path is the sum of both
    hops — routing through the origin, as mid-90s topologies did.
    """
    return GeoSpec(
        name="geo3",
        sites=(
            SiteSpec("origin", replace(meiko_cs2(origin_nodes),
                                       name="origin"), weight=2.0),
            SiteSpec("west", replace(meiko_cs2(edge_nodes), name="west"),
                     weight=1.0),
            SiteSpec("east", replace(meiko_cs2(edge_nodes), name="east"),
                     weight=1.0),
        ),
        links=(
            ("origin", "west", WanLink(latency=west_latency,
                                       bandwidth=wan_bandwidth)),
            ("origin", "east", WanLink(latency=east_latency,
                                       bandwidth=wan_bandwidth)),
            ("west", "east", WanLink(latency=west_latency + east_latency,
                                     bandwidth=wan_bandwidth / 2)),
        ),
        origin="origin",
    )
