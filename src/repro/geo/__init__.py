"""repro.geo — the geo-distributed CDN tier (docs/GEO.md).

Origin + edge clusters behind WAN links, heat-proportional cross-site
replica placement, geo-affinity DNS with overload/partition spill, and
the scenario harness the X13 experiment drives.  Sits between
``workload`` and ``experiments`` in the enforced layer DAG.
"""

from .daemon import GeoPlacementDaemon
from .fs import GeoFileSystem
from .placement import plan_placement
from .routing import GeoDNS
from .scenario import GeoResult, GeoScenario, PopulationStats, run_geo
from .spec import GeoSpec, SiteSpec, WanLink, geo3
from .system import GeoSystem

__all__ = [
    "GeoDNS",
    "GeoFileSystem",
    "GeoPlacementDaemon",
    "GeoResult",
    "GeoScenario",
    "GeoSpec",
    "GeoSystem",
    "PopulationStats",
    "SiteSpec",
    "WanLink",
    "geo3",
    "plan_placement",
    "run_geo",
]
