"""Geo scenarios: multi-site client populations against a GeoSystem.

One :class:`GeoScenario` describes the whole deployment — topology,
corpus, Zipf workload, per-edge replica budget, optional site partition
— and :func:`run_geo` executes it deterministically: arrival times are a
fixed-rate grid, each arrival's *home site* is drawn from the registered
``geo-affinity`` substream proportionally to site weights, and the path
comes from the standard Zipf sampler.  Site routing happens at arrival
time through :class:`~repro.geo.routing.GeoDNS`, so overload spill and
partitions act on live simulation state.

Clients are modelled per ``(home, target)`` pair: a spilled request pays
the inter-site WAN latency on top of the base last-mile path, which is
exactly the trade the X13 experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.costmodel import CostParameters
from ..obs import percentile
from ..sim import AllOf, RandomStreams
from ..web.client import Client, ClientProfile
from ..cluster.network import WANPath
from ..workload.corpus import uniform_corpus
from ..workload.generators import zipf_sampler
from .spec import GeoSpec, geo3
from .system import GeoSystem

__all__ = ["GeoScenario", "PopulationStats", "GeoResult", "run_geo"]

KB = 1e3
MB = 1e6

#: last-mile path every geo client rides before any inter-site hop
_BASE_LATENCY = 5e-3
_BASE_BANDWIDTH = 4e6


@dataclass
class GeoScenario:
    """Everything needed to run one multi-site workload."""

    name: str = "geo"
    spec: Optional[GeoSpec] = None
    n_files: int = 60
    hot_files: int = 12
    file_bytes: float = 100 * KB
    alpha: float = 1.1
    tail_weight: float = 0.2
    rps: float = 40.0
    duration: float = 15.0
    seed: int = 0
    params: Optional[CostParameters] = None
    graceful: bool = False
    edge_budget_bytes: float = 16 * MB
    spill_threshold: float = 6.0
    client_timeout: float = 30.0
    placement_period: float = 2.0
    placement_skew: float = 1.5
    placement_max_per_cycle: int = 4
    #: partition this site for ``partition_window`` (sim seconds)
    partition_site: Optional[str] = None
    partition_window: Tuple[float, float] = (4.0, 10.0)

    def resolved_spec(self) -> GeoSpec:
        return self.spec or geo3()


@dataclass
class PopulationStats:
    """What one home-site population experienced."""

    site: str
    offered: int = 0
    completed: int = 0
    dropped: int = 0
    #: arrivals the resolver could not route anywhere (dark POP,
    #: non-graceful mode) — never reached any cluster
    lost: int = 0
    #: completed requests served by a non-home site
    spilled: int = 0
    response_times: List[float] = field(default_factory=list)

    @property
    def p95(self) -> float:
        return percentile(self.response_times, 95)

    @property
    def mean(self) -> float:
        if not self.response_times:
            return float("nan")
        return sum(self.response_times) / len(self.response_times)

    @property
    def loss_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return (self.dropped + self.lost) / self.offered


@dataclass
class GeoResult:
    """Outcome of one :func:`run_geo` execution."""

    scenario: GeoScenario
    system: GeoSystem
    populations: Dict[str, PopulationStats]
    edge_hit_rate: float
    wan_reads: int
    wan_bytes: float
    placements: int
    spills: int
    partition_spills: int
    unroutable: int
    finished_at: float

    def population(self, site: str) -> PopulationStats:
        return self.populations[site]

    def summary_line(self) -> str:
        pops = " ".join(
            f"{site}:p95={stats.p95:.3f}s loss={stats.loss_rate:.0%}"
            for site, stats in sorted(self.populations.items()))
        return (f"{self.scenario.name}: hit={self.edge_hit_rate:.0%} "
                f"wan={self.wan_reads} placed={self.placements} {pops}")


def run_geo(scenario: GeoScenario) -> GeoResult:
    """Build the GeoSystem, drive the populations, aggregate per site."""
    spec = scenario.resolved_spec()
    system = GeoSystem(
        spec=spec, params=scenario.params, seed=scenario.seed,
        graceful=scenario.graceful,
        edge_budget_bytes=scenario.edge_budget_bytes,
        placement_period=scenario.placement_period,
        placement_skew=scenario.placement_skew,
        placement_max_per_cycle=scenario.placement_max_per_cycle,
        spill_threshold=scenario.spill_threshold)
    sim = system.sim

    origin_nodes = spec.site(spec.origin).cluster.num_nodes
    corpus = uniform_corpus(scenario.n_files, scenario.file_bytes,
                            origin_nodes, prefix="/geo")
    system.install_corpus(corpus)

    rng = RandomStreams(seed=scenario.seed)
    sample_path = zipf_sampler(corpus, rng, alpha=scenario.alpha,
                               hot_set=min(scenario.hot_files,
                                           scenario.n_files),
                               tail_weight=(scenario.tail_weight
                                            if scenario.hot_files
                                            < scenario.n_files else 0.0))

    # Pre-draw every arrival's home site and path in arrival order, so
    # the draw sequence is independent of simulation interleaving.
    sites = list(spec.site_names)
    weights = [spec.site(name).weight for name in sites]
    total_weight = sum(weights)
    n_requests = int(scenario.rps * scenario.duration)
    arrivals: List[Tuple[float, str, str]] = []
    for i in range(n_requests):
        u = rng.uniform("geo-affinity") * total_weight
        home = sites[-1]
        for name, w in zip(sites, weights):
            if u < w:
                home = name
                break
            u -= w
        arrivals.append((i / scenario.rps, home, sample_path()))

    populations = {name: PopulationStats(site=name) for name in sites}
    clients: Dict[Tuple[str, str], Client] = {}

    def client_for(home: str, target: str) -> Client:
        key = (home, target)
        client = clients.get(key)
        if client is None:
            extra = 0.0 if home == target else spec.link(home, target).latency
            profile = ClientProfile(
                name=home,
                wan=WANPath(latency=_BASE_LATENCY + extra,
                            bandwidth=_BASE_BANDWIDTH,
                            name=f"{home}->{target}"),
                domain=f"{home}.pop")
            client = Client(system.clusters[target], profile=profile,
                            timeout=scenario.client_timeout)
            clients[key] = client
        return client

    def one_arrival(at: float, home: str, path: str):
        delay = at - sim.now
        if delay > 0:
            yield sim.timeout(delay)
        pop = populations[home]
        pop.offered += 1
        target = system.dns.route(home)
        if target is None:
            pop.lost += 1
            return
        rec = yield client_for(home, target).fetch(path)
        if rec.dropped:
            pop.dropped += 1
        elif rec.ok and rec.response_time is not None:
            pop.completed += 1
            pop.response_times.append(rec.response_time)
            if target != home:
                pop.spilled += 1

    procs = [sim.spawn(one_arrival(at, home, path),
                       name=f"geo.arrival{idx}")
             for idx, (at, home, path) in enumerate(arrivals)]

    if scenario.partition_site is not None:
        start, end = scenario.partition_window
        if not 0 <= start < end:
            raise ValueError(
                f"bad partition window: {scenario.partition_window}")

        def partition_proc():
            yield sim.timeout(start)
            system.dns.partition_site(scenario.partition_site)
            yield sim.timeout(end - start)
            system.dns.heal_site(scenario.partition_site)

        sim.spawn(partition_proc(), name="geo.partition")

    system.run(until=AllOf(sim, procs))

    return GeoResult(
        scenario=scenario,
        system=system,
        populations=populations,
        edge_hit_rate=system.edge_hit_rate(),
        wan_reads=sum(fs.wan_reads for fs in system.edge_fs.values()),
        wan_bytes=system.wan_bytes(),
        placements=system.total_placements(),
        spills=system.dns.spills,
        partition_spills=system.dns.partition_spills,
        unroutable=system.dns.unroutable,
        finished_at=sim.now,
    )
