"""An edge site's view of the origin's namespace.

Every document's authoritative copy lives on the origin cluster's disks;
an edge cluster carries only a *catalog* (``FileMeta`` entries flagged
``wan=True``, homed at the edge gateway node) plus whatever the
placement daemon or demand pull-through has parked in its page caches.
A read at an edge node therefore resolves in cost order:

1. the reading node's own page cache (an edge hit at RAM speed);
2. any peer cache inside the site (edge hit plus one fabric hop);
3. the WAN: the origin serves the file from its own cache/disk, the
   bytes cross the uplink :class:`~repro.cluster.network.Link` with the
   NFS penalty, and — budget permitting — the file is installed in the
   reading node's cache so the next request is an edge hit.

The per-site budget bounds how many *geo replica bytes* may sit in the
site's RAM at once; demand fills and daemon placements are gated by the
same accounting, so a zero-budget edge never caches and every read pays
the WAN — the clean lower bound the X13 sweep anchors on.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.filesystem import (
    DistributedFileSystem,
    FileMeta,
    ReadOutcome,
)
from ..cluster.network import ClusterNetwork, Link
from ..cluster.node import Node
from ..obs import Span
from ..sim import Event, Simulator

__all__ = ["GeoFileSystem"]


class GeoFileSystem(DistributedFileSystem):
    """A :class:`DistributedFileSystem` whose misses cross a WAN link."""

    def __init__(self, sim: Simulator, nodes: list[Node],
                 network: ClusterNetwork, remote_penalty: float,
                 origin_fs: DistributedFileSystem, uplink: Link,
                 budget_bytes: float, site: str = "edge") -> None:
        super().__init__(sim, nodes, network, remote_penalty=remote_penalty)
        if budget_bytes < 0:
            raise ValueError(f"negative geo budget: {budget_bytes}")
        self.origin_fs = origin_fs
        self.uplink = uplink
        self.budget_bytes = float(budget_bytes)
        self.site = site
        #: cache misses that crossed the WAN (and the bytes they moved)
        self.wan_reads = 0
        self.wan_bytes = 0.0
        #: reads satisfied inside the site (own or peer cache)
        self.edge_hits = 0
        #: pull-through installs admitted under the byte budget
        self.edge_installs = 0
        #: installs refused because the budget was exhausted
        self.budget_rejections = 0

    # -- namespace --------------------------------------------------------
    def add_origin_file(self, path: str, size: float) -> FileMeta:
        """Register an origin-homed document in this site's catalog.

        No disk space is allocated here — the authoritative bytes live at
        the origin; the local ``home`` is the gateway node 0, which is
        where the cost model charges a miss."""
        if path in self._files:
            raise ValueError(f"duplicate path: {path!r}")
        if size < 0:
            raise ValueError(f"negative size for {path!r}: {size}")
        meta = FileMeta(path=path, size=float(size), home=0, wan=True)
        self._files[path] = meta
        return meta

    # -- budget accounting -------------------------------------------------
    def resident_replica_bytes(self) -> float:
        """Geo-replica bytes currently in any of this site's page caches.

        Self-correcting by construction: evictions free budget the next
        time anyone asks, with no shadow ledger to drift out of sync."""
        total = 0.0
        for path, meta in self._files.items():
            if not meta.wan:
                continue
            if any(path in node.cache for node in self.nodes):
                total += meta.size
        return total

    def admits(self, size: float) -> bool:
        """True if installing ``size`` more replica bytes fits the budget."""
        return self.resident_replica_bytes() + size <= self.budget_bytes

    def install_replica(self, path: str, target: Node) -> bool:
        """Install a fetched copy in ``target``'s cache, budget permitting."""
        meta = self.locate(path)
        if meta.size > target.cache.capacity or not self.admits(meta.size):
            self.budget_rejections += 1
            return False
        target.cache.insert(path, meta.size)
        self.edge_installs += 1
        return True

    # -- I/O ---------------------------------------------------------------
    def read(self, path: str, at_node: int,
             ctx: Optional[Span] = None) -> Event:
        meta = self.locate(path)
        if not meta.wan:
            return super().read(path, at_node, ctx)
        reader = self.nodes[at_node]
        done = Event(self.sim)

        if path in reader.cache:
            self.edge_hits += 1
            reader.cache.lookup(path)

            def pump_local():
                sp = self._read_span(ctx, "edge_cache_read", at_node,
                                     path=path, site=self.site)
                yield reader.read_from_cache(meta.size, tag=path)
                self._end_span(sp, bytes=meta.size)
                done.succeed(ReadOutcome(path=path, nbytes=meta.size,
                                         source="cache", remote=False,
                                         home=meta.home))

            self.sim.spawn(pump_local(), name=f"geo.read:{path}")
            return done

        holder = self._cached_holder(path, at_node)
        if holder is not None:
            self.edge_hits += 1
            self.peer_cache_reads += 1
            holder.cache.lookup(path)

            def pump_peer():
                sp = self._read_span(ctx, "edge_peer_read", holder.id,
                                     path=path, dst=at_node, site=self.site)
                yield holder.read_from_cache(meta.size, tag=path)
                wire = meta.size * (1.0 + self.remote_penalty)
                yield self.network.transfer(holder.id, at_node, wire,
                                            tag=path)
                self._end_span(sp, bytes=meta.size)
                done.succeed(ReadOutcome(path=path, nbytes=meta.size,
                                         source="cache", remote=True,
                                         home=meta.home))

            self.sim.spawn(pump_peer(), name=f"geo.read:{path}")
            return done

        # WAN miss: origin read + uplink transfer + gated pull-through.
        self.wan_reads += 1
        self.wan_bytes += meta.size
        self.remote_reads += 1

        def pump_wan():
            origin_meta = self.origin_fs.locate(path)
            sp = self._read_span(ctx, "wan_fetch", at_node, path=path,
                                 site=self.site)
            yield self.origin_fs.read(path, at_node=origin_meta.home, ctx=sp)
            wire = meta.size * (1.0 + self.remote_penalty)
            yield self.uplink.transfer(wire, tag=path)
            self._end_span(sp, bytes=wire)
            self.install_replica(path, reader)
            done.succeed(ReadOutcome(path=path, nbytes=meta.size,
                                     source="wan", remote=True,
                                     home=meta.home))

        self.sim.spawn(pump_wan(), name=f"geo.read:{path}")
        return done

    def _cached_holder(self, path: str, at_node: int) -> Optional[Node]:
        """Least-loaded alive peer (not the reader) caching ``path``."""
        best: Optional[Node] = None
        best_key: Optional[tuple[float, int]] = None
        for node in self.nodes:
            if node.id == at_node or not node.alive:
                continue
            if path not in node.cache:
                continue
            key = (float(self.network.node_load(node.id)), node.id)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best

    def hit_rate(self) -> float:
        """Fraction of WAN-catalog reads served inside the site."""
        total = self.edge_hits + self.wan_reads
        return self.edge_hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"<GeoFileSystem site={self.site!r} files={len(self._files)} "
                f"edge_hits={self.edge_hits} wan_reads={self.wan_reads}>")
