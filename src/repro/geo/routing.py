"""Geo-affinity DNS: pin clients to their home site, spill when needed.

The paper's round-robin DNS spreads arrivals over *nodes*; the geo tier
adds the stage above it — which *site* a client's resolver hands out.
A client population pins to its home site (lowest WAN latency), and the
geo DNS overrides that pin in exactly two cases:

* **overload** — the home site's mean CPU run queue exceeds the spill
  threshold, so new arrivals divert to the nearest site with headroom
  (the communication-cost-vs-balance trade-off of arXiv:1610.04513:
  extra WAN latency buys a shorter queue);
* **partition** — the home site's POP is dark.  Under graceful mode its
  population re-resolves to the nearest healthy site; in paper-faithful
  mode the resolver keeps answering the dead address and the requests
  are lost — the contrast X13's third shape check measures.

Routing is deterministic: load is read from the live simulation state at
resolve time and the spill order is the :meth:`GeoSpec.nearest_order`
latency ranking, so no RNG is consumed here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from .spec import GeoSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..core.sweb import SWEBCluster

__all__ = ["GeoDNS"]


class GeoDNS:
    """Site-level resolver over a built :class:`GeoSystem`'s clusters."""

    def __init__(self, spec: GeoSpec,
                 clusters: Dict[str, "SWEBCluster"],
                 graceful: bool = False,
                 spill_threshold: float = 6.0) -> None:
        if spill_threshold <= 0:
            raise ValueError(f"spill_threshold must be > 0: {spill_threshold}")
        self.spec = spec
        self.clusters = clusters
        self.graceful = graceful
        self.spill_threshold = float(spill_threshold)
        #: sites whose POP uplink is currently dark
        self.partitioned: set[str] = set()
        self.routes = 0
        self.spills = 0
        self.partition_spills = 0
        self.unroutable = 0

    # -- partition control -------------------------------------------------
    def partition_site(self, site: str) -> None:
        """Cut ``site`` off: its clients cannot reach it until healed."""
        if site not in self.spec.site_names:
            raise KeyError(site)
        self.partitioned.add(site)

    def heal_site(self, site: str) -> None:
        self.partitioned.discard(site)

    # -- load probes ------------------------------------------------------
    def site_load(self, site: str) -> float:
        """Mean CPU run-queue length over the site's alive nodes."""
        nodes = [n for n in self.clusters[site].nodes if n.alive]
        if not nodes:
            return float("inf")
        return sum(n.cpu_load() for n in nodes) / len(nodes)

    def _usable(self, site: str) -> bool:
        return (site not in self.partitioned
                and any(n.alive for n in self.clusters[site].nodes))

    # -- resolution --------------------------------------------------------
    def route(self, home_site: str) -> Optional[str]:
        """The site that should serve a request homed at ``home_site``.

        ``None`` means unroutable: the home POP is dark and the resolver
        is not graceful (or every site is dark) — the request is lost.
        """
        if home_site not in self.spec.site_names:
            raise KeyError(home_site)
        self.routes += 1
        if home_site in self.partitioned:
            if not self.graceful:
                self.unroutable += 1
                return None
            for other in self.spec.nearest_order(home_site):
                if self._usable(other):
                    self.partition_spills += 1
                    return other
            self.unroutable += 1
            return None
        if (self.graceful
                and self.site_load(home_site) > self.spill_threshold):
            for other in self.spec.nearest_order(home_site):
                if (self._usable(other)
                        and self.site_load(other) <= self.spill_threshold):
                    self.spills += 1
                    return other
        return home_site

    def __repr__(self) -> str:
        return (f"<GeoDNS routes={self.routes} spills={self.spills} "
                f"partitioned={sorted(self.partitioned)}>")
