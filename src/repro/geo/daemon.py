"""The cross-site placement daemon: the geo analogue of PR 4's
:class:`~repro.cache.replication.ReplicationDaemon`.

Every ``period`` simulated seconds the daemon snapshots the geo-wide
:class:`~repro.cache.stats.FileHeat` counters, runs the pure planner
(:func:`repro.geo.placement.plan_placement`) against each edge's
remaining byte budget, and executes the plan by *paying for it*: an
origin-side read (cache or disk), the WAN uplink transfer with the NFS
penalty, and only then the install into the least-loaded edge node's
page cache.  The in-flight set keeps one copy of a file per site from
being shipped twice while a transfer is still on the wire.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..cache import FileHeat
from ..sim import Event, Process, Simulator, Trace
from .fs import GeoFileSystem
from .placement import plan_placement
from .spec import GeoSpec

__all__ = ["GeoPlacementDaemon"]


class GeoPlacementDaemon:
    """Periodic origin→edge replica pusher for one :class:`GeoSystem`."""

    def __init__(self, sim: Simulator, spec: GeoSpec,
                 edge_fs: Dict[str, GeoFileSystem],
                 heat: FileHeat, period: float = 2.0, skew: float = 1.5,
                 max_per_cycle: int = 4,
                 trace: Optional[Trace] = None) -> None:
        if period <= 0:
            raise ValueError("placement period must be positive")
        if skew < 1.0:
            raise ValueError("placement skew threshold must be >= 1")
        if max_per_cycle < 1:
            raise ValueError("max_per_cycle must be >= 1")
        self.sim = sim
        self.spec = spec
        self.edge_fs = edge_fs
        self.heat = heat
        self.period = float(period)
        self.skew = float(skew)
        self.max_per_cycle = int(max_per_cycle)
        self.trace = trace
        self.placements = 0
        self.bytes_placed = 0.0
        self.cycles = 0
        self._in_flight: set[Tuple[str, str]] = set()
        self._proc: Optional[Process] = None

    # -- planning ----------------------------------------------------------
    def _heat_snapshot(self) -> Dict[str, float]:
        """The hottest files by served bytes, as a plain dict."""
        width = 4 * self.max_per_cycle * max(len(self.edge_fs), 1)
        return dict(self.heat.top_bytes(width))

    def _remaining_budgets(self) -> Dict[str, float]:
        """Per-site budget minus resident and in-flight replica bytes."""
        out: Dict[str, float] = {}
        for site, fs in self.edge_fs.items():
            pending = sum(fs.locate(path).size
                          for path, s in self._in_flight
                          if s == site and fs.exists(path))
            out[site] = max(0.0,
                            fs.budget_bytes - fs.resident_replica_bytes()
                            - pending)
        return out

    def _existing(self, paths) -> Dict[str, set[str]]:
        """Which sites already hold (or are receiving) each hot path."""
        out: Dict[str, set[str]] = {}
        for path in paths:
            sites = {site for site, fs in self.edge_fs.items()
                     if fs.exists(path)
                     and any(path in node.cache for node in fs.nodes)}
            sites |= {s for p, s in self._in_flight if p == path}
            if sites:
                out[path] = sites
        return out

    def plan(self) -> Tuple[Tuple[str, str], ...]:
        """One deterministic planning pass over the current heat."""
        snapshot = self._heat_snapshot()
        sizes = {}
        for path in snapshot:
            for fs in self.edge_fs.values():
                if fs.exists(path):
                    sizes[path] = fs.locate(path).size
                    break
        return plan_placement(snapshot, sizes,
                              edge_sites=list(self.edge_fs),
                              budgets=self._remaining_budgets(),
                              existing=self._existing(snapshot),
                              skew=self.skew,
                              max_placements=self.max_per_cycle)

    # -- execution ---------------------------------------------------------
    def place(self, path: str, site: str) -> Event:
        """Ship one copy of ``path`` to ``site``, paying the real costs."""
        fs = self.edge_fs[site]
        meta = fs.locate(path)
        done = Event(self.sim)
        self._in_flight.add((path, site))

        def pump() -> Iterator[Event]:
            origin_meta = fs.origin_fs.locate(path)
            yield fs.origin_fs.read(path, at_node=origin_meta.home)
            wire = meta.size * (1.0 + fs.remote_penalty)
            yield fs.uplink.transfer(wire, tag="geo-place")
            self._in_flight.discard((path, site))
            target = self._target_node(fs)
            if target is not None and fs.install_replica(path, target):
                self.placements += 1
                self.bytes_placed += meta.size
                if self.trace is not None and self.trace.active:
                    self.trace.emit(self.sim.now, "geo", "placementd",
                                    "place", path=path, site=site,
                                    node=target.id, bytes=meta.size)
            done.succeed(path)

        self.sim.spawn(pump(), name=f"geo.place:{path}->{site}")
        return done

    @staticmethod
    def _target_node(fs: GeoFileSystem):
        """Least-loaded alive node in the site (ties on node id)."""
        alive = [n for n in fs.nodes if n.alive]
        if not alive:
            return None
        return min(alive, key=lambda n: (float(fs.network.node_load(n.id)),
                                         n.id))

    # -- the daemon loop ---------------------------------------------------
    def start(self) -> Process:
        if self._proc is None:
            self._proc = self.sim.spawn(self._run(), name="geo-placementd")
        return self._proc

    def run_cycle(self) -> List[Tuple[str, str]]:
        self.cycles += 1
        planned = list(self.plan())
        for path, site in planned:
            self.place(path, site)
        return planned

    def _run(self) -> Iterator[Event]:
        while True:
            yield self.sim.timeout(self.period)
            self.run_cycle()
