"""GeoSystem — every site's SWEBCluster sharing one event loop.

The facade mirrors :class:`~repro.core.sweb.SWEBCluster` one level up:
it builds the origin cluster first, then each edge cluster with its
file system swapped for a :class:`GeoFileSystem` bound to the origin
namespace and the site's WAN uplink, wires a geo-wide
:class:`~repro.cache.stats.FileHeat` into every httpd, and runs the
:class:`GeoPlacementDaemon` above them all.  Because every cluster is
handed the *same* :class:`~repro.sim.Simulator`, cross-site transfers,
placement traffic and per-site request handling interleave in one
deterministic event order.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cache import FileHeat
from ..cluster.network import Link
from ..core.costmodel import CostParameters
from ..core.sweb import SWEBCluster
from ..sim import Simulator, Trace
from ..workload.corpus import Corpus
from .daemon import GeoPlacementDaemon
from .fs import GeoFileSystem
from .routing import GeoDNS
from .spec import GeoSpec, geo3

__all__ = ["GeoSystem"]

MB = 1e6


class GeoSystem:
    """All sites of a :class:`GeoSpec`, live in one simulation."""

    def __init__(self, spec: Optional[GeoSpec] = None,
                 params: Optional[CostParameters] = None,
                 seed: int = 0,
                 graceful: bool = False,
                 edge_budget_bytes: float = 16 * MB,
                 backlog: int = 64,
                 dns_ttl: float = 0.0,
                 placement_period: float = 2.0,
                 placement_skew: float = 1.5,
                 placement_max_per_cycle: int = 4,
                 spill_threshold: float = 6.0,
                 trace: Optional[Trace] = None,
                 start_daemons: bool = True) -> None:
        self.spec = spec or geo3()
        self.params = params or CostParameters()
        self.seed = seed
        self.graceful = graceful
        self.edge_budget_bytes = float(edge_budget_bytes)
        self.sim = Simulator()
        self.trace = trace

        #: geo-wide per-file heat: every site's httpds feed one tally, so
        #: the placement daemon sees global popularity, not one site's
        self.heat = FileHeat()

        origin_site = self.spec.site(self.spec.origin)
        self.clusters: Dict[str, SWEBCluster] = {}
        self.edge_fs: Dict[str, GeoFileSystem] = {}
        self.uplinks: Dict[str, Link] = {}

        origin_built = origin_site.cluster.build(self.sim)
        self.origin = SWEBCluster(
            spec=origin_site.cluster, params=self.params,
            seed=self._site_seed(0), backlog=backlog, dns_ttl=dns_ttl,
            trace=trace, sim=self.sim, built=origin_built)
        self.clusters[origin_site.name] = self.origin

        for idx, edge in enumerate(s for s in self.spec.sites
                                   if s.name != self.spec.origin):
            built = edge.cluster.build(self.sim)
            wan = self.spec.link(self.spec.origin, edge.name)
            uplink = Link(self.sim, bandwidth=wan.bandwidth,
                          latency=wan.latency, name=f"wan.{edge.name}")
            geo_fs = GeoFileSystem(
                self.sim, built.nodes, built.network,
                remote_penalty=edge.cluster.nfs_penalty,
                origin_fs=self.origin.fs, uplink=uplink,
                budget_bytes=self.edge_budget_bytes, site=edge.name)
            built.fs = geo_fs
            cluster = SWEBCluster(
                spec=edge.cluster, params=self.params,
                seed=self._site_seed(idx + 1), backlog=backlog,
                dns_ttl=dns_ttl, trace=trace, sim=self.sim, built=built)
            # Price edge cache misses as WAN fetches (docs/GEO.md): the
            # broker's t_data then reflects the link, not a local disk.
            cluster.cost_model.wan_bandwidth = wan.bandwidth
            cluster.cost_model.wan_latency = wan.latency
            self.clusters[edge.name] = cluster
            self.edge_fs[edge.name] = geo_fs
            self.uplinks[edge.name] = uplink

        # One heat tally across every site's servers (and any intra-site
        # replication daemon) so cross-site placement sees global demand.
        for cluster in self.clusters.values():
            for server in cluster.servers.values():
                server.heat = self.heat
            if cluster.heat is not None:
                cluster.heat = self.heat
            if cluster.replicator is not None:
                cluster.replicator.heat = self.heat

        self.dns = GeoDNS(self.spec, self.clusters, graceful=graceful,
                          spill_threshold=spill_threshold)
        self.placementd = GeoPlacementDaemon(
            self.sim, self.spec, self.edge_fs, self.heat,
            period=placement_period, skew=placement_skew,
            max_per_cycle=placement_max_per_cycle, trace=trace)
        if start_daemons and self.edge_fs:
            self.placementd.start()

    def _site_seed(self, index: int) -> int:
        """Derived per-site seed — pure arithmetic, no RNG draw."""
        return (self.seed * 1_000_003 + index * 7_919 + 13) % (2 ** 31)

    # -- content -----------------------------------------------------------
    def install_corpus(self, corpus: Corpus) -> None:
        """Authoritative copies at the origin; catalog entries at edges."""
        corpus.install(self.origin)
        for fs in self.edge_fs.values():
            for doc in corpus.documents:
                fs.add_origin_file(doc.path, doc.size)

    # -- execution ---------------------------------------------------------
    def run(self, until=None):
        return self.sim.run(until=until)

    # -- aggregates --------------------------------------------------------
    def edge_hit_rate(self) -> float:
        """Fraction of edge-site reads served without crossing the WAN."""
        hits = sum(fs.edge_hits for fs in self.edge_fs.values())
        misses = sum(fs.wan_reads for fs in self.edge_fs.values())
        total = hits + misses
        return hits / total if total else 0.0

    def wan_bytes(self) -> float:
        """Demand-miss bytes plus placement bytes shipped over WAN."""
        return (sum(fs.wan_bytes for fs in self.edge_fs.values())
                + self.placementd.bytes_placed)

    def total_placements(self) -> int:
        return self.placementd.placements

    def __repr__(self) -> str:
        return (f"<GeoSystem {self.spec.name!r} sites={len(self.clusters)} "
                f"hit_rate={self.edge_hit_rate():.2f}>")
