"""Heat-proportional cross-site replica placement (the planning half).

The planner is a *pure function* of its inputs: the same heat snapshot,
size table, budgets and existing-placement map always yield the same
plan, draw no randomness, and touch no simulator state.  That purity is
pinned by Hypothesis property tests (``tests/test_geo.py``) and is what
keeps the geo tier inside the determinism contract — all scheduling
noise lives in *when* the daemon runs the planner, never in what the
planner answers.

Placement is heat-proportional in the arXiv:1009.4563 sense: a file's
replica count scales with how far its served byte volume rises above the
per-file mean, so the hottest documents fan out to every edge while
merely-warm ones earn a single copy.  Which edge gets a copy first is
decided by rendezvous hashing on the path (``repro.sched.hashring``) so
the assignment is stable under replanning and spreads files evenly
across edges without coordination.
"""

from __future__ import annotations

from typing import AbstractSet, List, Mapping, Optional, Sequence, Tuple

from ..sched.hashring import preference_order

__all__ = ["plan_placement"]


def plan_placement(heat: Mapping[str, float],
                   sizes: Mapping[str, float],
                   edge_sites: Sequence[str],
                   budgets: Mapping[str, float],
                   existing: Optional[Mapping[str, AbstractSet[str]]] = None,
                   skew: float = 1.5,
                   max_placements: Optional[int] = None,
                   ) -> Tuple[Tuple[str, str], ...]:
    """Plan ``(path, edge_site)`` copies from a heat snapshot.

    ``heat`` maps path -> served bytes (the :class:`FileHeat` byte
    counters); ``sizes`` maps path -> file size; ``budgets`` maps edge
    site -> *remaining* cache bytes available for geo replicas there;
    ``existing`` maps path -> the sites already holding a copy.

    Guarantees (property-tested):

    * placed bytes per site never exceed that site's budget;
    * no ``(path, site)`` pair appears twice, and no copy is planned to
      a site that already holds the file;
    * the output is a pure function of the inputs.
    """
    if skew < 1.0:
        raise ValueError(f"skew must be >= 1, got {skew}")
    edges = list(edge_sites)
    if not edges or not heat:
        return ()
    existing = existing or {}
    mean = sum(heat.values()) / len(heat)
    if mean <= 0:
        return ()
    remaining = {site: float(budgets.get(site, 0.0)) for site in edges}
    ranked = sorted(heat.items(), key=lambda item: (-item[1], item[0]))
    out: List[Tuple[str, str]] = []
    for path, heat_bytes in ranked:
        if max_placements is not None and len(out) >= max_placements:
            break
        if heat_bytes < skew * mean:
            break  # heat-sorted: nothing below the threshold qualifies
        size = float(sizes.get(path, 0.0))
        if size <= 0:
            continue
        # Heat-proportional replica count: one edge per multiple of the
        # skew threshold, capped at every edge.
        want = min(len(edges), int(heat_bytes / (skew * mean)))
        if want < 1:
            continue
        holders = existing.get(path, frozenset())
        placed = 0
        for idx in preference_order(path, len(edges)):
            if placed >= want:
                break
            if max_placements is not None and len(out) >= max_placements:
                break
            site = edges[idx]
            if site in holders:
                placed += 1  # an existing copy counts toward the target
                continue
            if remaining[site] < size:
                continue
            remaining[site] -= size
            out.append((path, site))
            placed += 1
    return tuple(out)
