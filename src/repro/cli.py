"""Command-line interface: ``sweb-repro``.

Subcommands:

* ``list`` — show every reproducible table/figure;
* ``run T3 [--full]`` — regenerate one artifact and print it;
* ``all [--full]`` — regenerate everything (EXPERIMENTS.md source);
* ``serve`` — run an ad-hoc scenario from flags (testbed, policy, rps...);
* ``bench`` — measure kernel/stack performance, write ``BENCH_kernel.json``
  (see ``docs/PERFORMANCE.md``; ``--profile`` adds a cProfile breakdown);
* ``trace`` — run a seeded scenario with per-request tracing on and emit
  a Chrome ``trace_event`` JSON plus a text flamegraph
  (see ``docs/TRACING.md``);
* ``fuzz`` — run the scenario fuzzer (seeded random configurations
  checked against cross-cutting invariants; failures are shrunk to
  minimal replayable artifacts — see ``docs/FUZZING.md``).
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main", "build_parser"]


def _nonneg_int(text: str) -> int:
    """argparse type: a non-negative integer (``--trace-requests``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer."""
    value = _nonneg_int(text)
    if value == 0:
        raise argparse.ArgumentTypeError("must be >= 1, got 0")
    return value


def build_parser() -> argparse.ArgumentParser:
    from .sched import policy_names

    parser = argparse.ArgumentParser(
        prog="sweb-repro",
        description="SWEB (IPPS'96) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible artifacts")

    run = sub.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", help="id, e.g. T1..T5, F1..F3, S1..S3, X1..X9")
    run.add_argument("--full", action="store_true",
                     help="paper-scale durations (slower)")

    allp = sub.add_parser("all", help="regenerate every artifact")
    allp.add_argument("--full", action="store_true")

    serve = sub.add_parser("serve", help="run an ad-hoc scenario")
    serve.add_argument("--testbed",
                       choices=["meiko", "now", "hetmeiko", "hetnow",
                                "geo3"],
                       default="meiko",
                       help="cluster preset; hetmeiko/hetnow are the "
                            "heterogeneous variants (docs/SCHEDULING.md); "
                            "geo3 is the three-site CDN topology and "
                            "implies --geo (docs/GEO.md)")
    serve.add_argument("--geo", action="store_true",
                       help="multi-site mode: run the geo3 topology "
                            "(origin + two WAN-linked edges) with "
                            "geo-affinity DNS and the placement daemon "
                            "(docs/GEO.md); --nodes is ignored")
    serve.add_argument("--wan-latency", type=float, metavar="SECONDS",
                       default=None,
                       help="geo mode: origin<->west one-way WAN latency; "
                            "the east link keeps the geo3 ratio "
                            "(default 0.030)")
    serve.add_argument("--geo-budget", type=float, metavar="MB",
                       default=16.0,
                       help="geo mode: per-edge replica RAM budget in MB "
                            "(0 disables cross-site placement)")
    serve.add_argument("--partition-site", metavar="SITE", default=None,
                       help="geo mode: cut this site's POP off for the "
                            "middle half of the run (with --graceful its "
                            "population spills to the next-nearest site)")
    serve.add_argument("--nodes", type=int, default=6)
    serve.add_argument("--scheduler", "--policy", dest="policy",
                       choices=list(policy_names()), default="sweb",
                       help="scheduling policy — the zoo is documented in "
                            "docs/SCHEDULING.md (--policy is an alias)")
    serve.add_argument("--rps", type=int, default=16)
    serve.add_argument("--duration", type=float, default=30.0)
    serve.add_argument("--file-size", type=float, default=1.5e6)
    serve.add_argument("--files", type=int, default=120)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--faults", metavar="SPEC",
                       help="fault plan, e.g. 'crash:n2@30,partition:10-20' "
                            "(see docs/FAULTS.md for the grammar)")
    serve.add_argument("--graceful", action="store_true",
                       help="enable graceful degradation (client retries, "
                            "stale-load fallback, suspicion filtering)")
    serve.add_argument("--coop-cache", action="store_true",
                       help="cooperative caching: loadd piggybacks each "
                            "node's hot cached-file set and the broker "
                            "prices RAM-resident candidates at memory "
                            "bandwidth (docs/CACHING.md)")
    serve.add_argument("--replicate", action="store_true",
                       help="proactively replicate Zipf-hot files to "
                            "underloaded peers (implies --coop-cache)")
    serve.add_argument("--zipf", type=float, metavar="ALPHA", default=None,
                       help="use a Zipf(ALPHA) popularity distribution "
                            "instead of uniform sampling")
    serve.add_argument("--trace-requests", type=_nonneg_int, metavar="N",
                       default=None,
                       help="trace the first N requests (0 = trace all); "
                            "off by default — tracing is observational and "
                            "never changes results (docs/TRACING.md)")
    serve.add_argument("--trace-out", metavar="PATH", default=None,
                       help="Chrome trace_event JSON output path "
                            "(default trace.json; requires "
                            "--trace-requests)")

    bench = sub.add_parser(
        "bench", help="benchmark the simulation kernel and the full stack")
    bench.add_argument("-o", "--out", default="BENCH_kernel.json",
                       help="output JSON path ('' to skip writing)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per phase (best run is kept)")
    bench.add_argument("--scale", default="1.0", metavar="FACTOR|TIER",
                       help="float factor on every phase's workload size, "
                            "or a tier letter S/M/L/XL that also runs the "
                            "million-request fluid_stream@T and "
                            "shard_grid@T phases (docs/SCALING.md)")
    bench.add_argument("--phase", action="append", dest="phases",
                       metavar="NAME",
                       help="run only this phase (repeatable); "
                            "default: all phases")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile each phase: top functions + "
                            "per-subsystem time split")
    bench.add_argument("--top", type=int, default=20,
                       help="rows in the --profile function table")

    replay = sub.add_parser(
        "replay", help="replay a Common Log Format access log")
    replay.add_argument("logfile", help="path to an access_log in CLF")
    replay.add_argument("--config", help="JSON config file (see config-template)")
    replay.add_argument("--time-scale", type=float, default=1.0,
                        help="compress (<1) or stretch (>1) arrival times")
    replay.add_argument("--default-size", type=float, default=8e3,
                        help="size for paths absent from the log's bytes column")

    sub.add_parser("config-template",
                   help="print a complete JSON configuration file")

    lint = sub.add_parser(
        "lint", help="run the sweb-lint static analyzer "
                     "(see docs/LINTING.md)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint "
                           "(default: src/ and scripts/)")
    lint.add_argument("--types", action="store_true",
                      help="also run the optional mypy pass (strict on "
                           "repro.sim/core/obs/sched/lint; skipped when "
                           "mypy is not installed)")
    lint.add_argument("--deep", action="store_true",
                      help="also run the whole-program analyses: call-graph "
                           "sim-reachability, the RNG substream audit and "
                           "observation-purity (docs/LINTING.md)")
    lint.add_argument("--baseline", metavar="PATH", default=None,
                      help="deep-finding baseline file (default: "
                           ".sweb-lint-baseline.json at the repo root)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    trace = sub.add_parser(
        "trace", help="run a seeded scenario with per-request tracing "
                      "and export Chrome trace JSON (docs/TRACING.md)")
    trace.add_argument("experiment", nargs="?", default="X10",
                       help="what to trace: X10 (Zipf hot set with "
                            "cooperative cache + replication, the default) "
                            "or a named scenario (T1, T3, T4, SKEWED)")
    trace.add_argument("-o", "--out", default="trace.json",
                       help="Chrome trace_event JSON output path")
    trace.add_argument("--requests", type=_positive_int, metavar="N",
                       default=None,
                       help="trace only the first N requests "
                            "(default: all)")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--duration", type=float, default=30.0,
                       help="workload window in simulated seconds")
    trace.add_argument("--flame", action="store_true",
                       help="also print the text flamegraph rollup")

    fuzz = sub.add_parser(
        "fuzz", help="run the scenario fuzzer: random end-to-end configs "
                     "checked against cross-cutting invariants "
                     "(docs/FUZZING.md)")
    fuzz.add_argument("--smoke", action="store_true",
                      help="the fixed tier-1 campaign (seed 7, 20 cases, "
                           "smoke profile) regardless of other flags")
    fuzz.add_argument("--seed", type=int, default=7,
                      help="root seed; every case derives from it "
                           "deterministically")
    fuzz.add_argument("--cases", type=_positive_int, default=20,
                      metavar="N", help="number of cases to generate")
    fuzz.add_argument("--profile", choices=["smoke", "full"],
                      default="smoke",
                      help="case-size profile (full draws bigger "
                           "clusters and longer workloads)")
    fuzz.add_argument("--replay", metavar="PATH", default=None,
                      help="re-run one saved case artifact instead of a "
                           "campaign")
    fuzz.add_argument("-o", "--out", default="fuzz-case.json",
                      help="where to write the shrunk artifact of the "
                           "first failing case ('' to skip writing)")

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (all artifacts)")
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")
    report.add_argument("--full", action="store_true",
                        help="paper-scale durations (slower)")
    report.add_argument("--only", nargs="*", metavar="ID",
                        help="restrict to specific experiment ids")
    return parser


def _cmd_list() -> int:
    from .experiments import ALL_EXPERIMENTS
    for exp_id, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{exp_id:>3}  {doc}")
    return 0


def _cmd_run(exp_id: str, full: bool) -> int:
    from .experiments import run_experiment
    start = time.time()
    report = run_experiment(exp_id, fast=not full)
    print(report.render())
    print(f"\n[{report.exp_id} finished in {time.time() - start:.1f}s; "
          f"shape holds: {report.shape_holds}]")
    return 0 if report.shape_holds else 1

def _cmd_all(full: bool) -> int:
    from .experiments import ALL_EXPERIMENTS, run_experiment
    failures = []
    for exp_id in ALL_EXPERIMENTS:
        start = time.time()
        report = run_experiment(exp_id, fast=not full)
        print(report.render())
        print(f"\n[{exp_id} in {time.time() - start:.1f}s; "
              f"shape holds: {report.shape_holds}]\n")
        if not report.shape_holds:
            failures.append(exp_id)
    if failures:
        print(f"shape checks FAILED for: {', '.join(failures)}")
        return 1
    print("all shape checks hold")
    return 0


def _cmd_serve_geo(args: argparse.Namespace) -> int:
    """The multi-site branch of ``serve`` (docs/GEO.md)."""
    from .geo import GeoScenario, geo3, run_geo

    if args.faults:
        print("--faults is the single-cluster fault grammar; in geo mode "
              "use --partition-site (docs/GEO.md)", file=sys.stderr)
        return 2
    if args.trace_requests is not None or args.trace_out is not None:
        print("request tracing is not wired through geo mode yet",
              file=sys.stderr)
        return 2
    scale = (args.wan_latency / 30e-3) if args.wan_latency is not None else 1.0
    if scale < 0:
        print("--wan-latency must be >= 0", file=sys.stderr)
        return 2
    spec = geo3(west_latency=30e-3 * scale, east_latency=80e-3 * scale)
    if (args.partition_site is not None
            and args.partition_site not in spec.site_names):
        print(f"unknown --partition-site {args.partition_site!r}; "
              f"choose from {', '.join(spec.site_names)}", file=sys.stderr)
        return 2
    scenario = GeoScenario(
        name="cli-geo", spec=spec,
        n_files=args.files, file_bytes=args.file_size,
        alpha=args.zipf if args.zipf is not None else 1.1,
        rps=args.rps, duration=args.duration, seed=args.seed,
        graceful=args.graceful,
        edge_budget_bytes=args.geo_budget * 1e6,
        partition_site=args.partition_site,
        partition_window=(args.duration * 0.25, args.duration * 0.75))
    result = run_geo(scenario)
    print(result.summary_line())
    for site in spec.site_names:
        pop = result.population(site)
        print(f"  {site}: offered {pop.offered} completed {pop.completed} "
              f"dropped {pop.dropped} lost {pop.lost} "
              f"spilled {pop.spilled} p95 {pop.p95:.3f}s")
    print(f"edges: hit rate {result.edge_hit_rate:.1%}, "
          f"wan reads {result.wan_reads}, "
          f"wan bytes {result.wan_bytes / 1e6:.1f} MB, "
          f"placements {result.placements}")
    print(f"dns: load spills {result.spills}, partition spills "
          f"{result.partition_spills}, unroutable {result.unroutable}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .cluster import (heterogeneous_meiko, heterogeneous_now, meiko_cs2,
                          sun_now)
    from .core.costmodel import CostParameters
    from .experiments.runner import Scenario, run_scenario
    from .faults import FaultPlan, FaultSpecError
    from .sim import RandomStreams
    from .workload import (burst_workload, uniform_corpus, uniform_sampler,
                           zipf_sampler)

    if args.geo or args.testbed == "geo3":
        return _cmd_serve_geo(args)
    if args.wan_latency is not None or args.partition_site is not None:
        print("--wan-latency/--partition-site require --geo "
              "(or --testbed geo3)", file=sys.stderr)
        return 2
    if args.trace_out is not None and args.trace_requests is None:
        print("--trace-out requires --trace-requests", file=sys.stderr)
        return 2
    tracer = None
    if args.trace_requests is not None:
        from .obs import Tracer
        # 0 means "no cap": trace every request of the run.
        tracer = Tracer(max_requests=args.trace_requests or None)
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.parse(args.faults)
            plan.validate(args.nodes)
        except FaultSpecError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2
    _now_speeds = (40e6, 25e6, 25e6, 10e6)
    builders = {"meiko": meiko_cs2, "now": sun_now,
                "hetmeiko": heterogeneous_meiko,
                "hetnow": lambda n: heterogeneous_now(
                    [_now_speeds[i % len(_now_speeds)] for i in range(n)])}
    spec = builders[args.testbed](args.nodes)
    corpus = uniform_corpus(args.files, args.file_size, args.nodes)
    rng = RandomStreams(seed=42)
    if args.zipf is not None:
        sampler = zipf_sampler(corpus, rng, alpha=args.zipf)
    else:
        sampler = uniform_sampler(corpus, rng)
    workload = burst_workload(args.rps, args.duration, sampler)
    coop = args.coop_cache or args.replicate
    scenario = Scenario(name="cli", spec=spec, corpus=corpus,
                        workload=workload, policy=args.policy,
                        seed=args.seed,
                        params=CostParameters(
                            graceful_degradation=args.graceful,
                            coop_cache=coop,
                            replicate=args.replicate),
                        faults=plan, tracer=tracer)
    result = run_scenario(scenario)
    print(result.summary_line())
    summary = result.response_summary
    print(f"response: mean {summary.mean:.3f}s p50 {summary.p50:.3f}s "
          f"p90 {summary.p90:.3f}s p99 {summary.p99:.3f}s")
    print(f"redirected: {result.redirection_rate:.1%}, "
          f"remote reads: {result.remote_read_fraction():.1%}")
    # Two different caches are in play; label each unambiguously.
    totals = result.metrics.page_cache_totals()
    line = (f"page cache (RAM): {result.cache_hit_rate():.1%} hit rate "
            f"({totals['hits']:.0f} hits / {totals['misses']:.0f} misses, "
            f"{totals['evictions']:.0f} evictions)")
    if result.replications:
        line += f", {result.replications} hot-file replications"
    print(line)
    print(f"dns cache (client TTL): {result.dns_cache_hit_rate():.1%} "
          f"hit rate")
    print("cpu shares: " + ", ".join(
        f"{k} {v:.2%}" for k, v in sorted(result.cpu_shares().items())))
    if result.injector is not None:
        mode = "graceful" if args.graceful else "paper-faithful"
        print(f"\nfault injection ({mode} mode):")
        print(result.injector.report())
        print(f"degradation: fallbacks {result.fallback_count}, "
              f"retries {result.retry_count}, "
              f"connections reset {result.reset_count}")
    if tracer is not None:
        from .obs import flame_rollup, render_chrome_trace
        out = args.trace_out if args.trace_out is not None else "trace.json"
        with open(out, "w") as fh:
            fh.write(render_chrome_trace(tracer.traces()))
        print(f"\ntraced {len(tracer)} requests -> {out}")
        print(flame_rollup(tracer.traces()))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .experiments.runner import run_scenario
    from .obs import Tracer, flame_rollup, render_chrome_trace
    from .workload import build_scenario

    exp = args.experiment.upper()
    tracer = Tracer(max_requests=args.requests)
    if exp == "X10":
        # The X10 shape (docs/CACHING.md): Zipf hot set homed on node 0,
        # cooperative cache directory + hot-file replication on — the
        # richest traces (replica reads, peer-cache hops, redirections).
        from .cluster import meiko_cs2
        from .experiments.cache_coop import (
            CONFIGS, N_HOT, TAIL_WEIGHT, hot_cold_corpus)
        from .sim import RandomStreams
        from .workload import Scenario, burst_workload, zipf_sampler

        corpus = hot_cold_corpus(6)
        sampler = zipf_sampler(corpus, RandomStreams(seed=args.seed),
                               alpha=1.0, hot_set=N_HOT,
                               tail_weight=TAIL_WEIGHT)
        workload = burst_workload(6, args.duration, sampler)
        scenario = Scenario(name="trace-x10", spec=meiko_cs2(6),
                            corpus=corpus, workload=workload, policy="sweb",
                            seed=args.seed, client_timeout=600.0,
                            backlog=1024, params=CONFIGS["dir+repl"](),
                            tracer=tracer)
    else:
        named = {"T1": "table1", "T3": "table3", "T4": "table4",
                 "SKEWED": "skewed"}
        if exp not in named:
            print(f"unknown trace experiment {args.experiment!r}; "
                  f"choose X10, {', '.join(sorted(named))}",
                  file=sys.stderr)
            return 2
        scenario = build_scenario(named[exp], duration=args.duration,
                                  seed=args.seed)
        scenario = replace(scenario, tracer=tracer)
    result = run_scenario(scenario)
    traces = tracer.traces()
    with open(args.out, "w") as fh:
        fh.write(render_chrome_trace(traces))
    # Reconciliation check: every completed, traced request's stage sums
    # must be consistent with its terminal latency.
    checked = failed = 0
    for rec in result.metrics.records:
        trace = tracer.get(rec.req_id)
        if trace is None or not rec.ok or rec.response_time is None:
            continue
        checked += 1
        if not trace.reconciles(rec.response_time) or trace.problems():
            failed += 1
    print(result.summary_line())
    print(f"traced {len(traces)} requests -> {args.out}")
    print(f"span sums reconcile with latency: {checked - failed}/{checked}")
    if args.flame:
        print()
        print(flame_rollup(traces))
    return 0 if failed == 0 else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .config import load_config
    from .experiments.runner import DEFAULT_PROFILES
    from .sim import AllOf
    from .web.client import Client
    from .workload.logs import parse_clf, workload_from_clf

    entries = parse_clf(Path(args.logfile).read_text())
    if not entries:
        print(f"no parseable CLF entries in {args.logfile}")
        return 1
    workload = workload_from_clf(entries, time_scale=args.time_scale)
    config = load_config(args.config) if args.config else load_config({})
    cluster = config.build()
    # Place every referenced path; sizes come from the log when present.
    sizes: dict[str, float] = {}
    for entry in entries:
        if entry.nbytes > 0:
            sizes[entry.path] = max(sizes.get(entry.path, 0.0),
                                    float(entry.nbytes))
    n = len(cluster.nodes)
    for i, path in enumerate(sorted({e.path for e in entries})):
        if not cluster.cgi.is_cgi(path):
            cluster.add_file(path, sizes.get(path, args.default_size),
                             home=i % n)
    client = Client(cluster, profile=DEFAULT_PROFILES["ucsb"])
    sim = cluster.sim

    def driver():
        procs = []
        for arrival in workload:
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            procs.append(client.fetch(arrival.path))
        yield AllOf(sim, procs)

    sim.run(until=sim.spawn(driver(), name="replay"))
    metrics = cluster.metrics
    print(f"replayed {metrics.total} requests over "
          f"{workload.duration:.1f}s (x{args.time_scale:g} time scale)")
    summary = metrics.response_summary()
    print(f"completed {metrics.completed}, dropped {metrics.dropped} "
          f"({metrics.drop_rate:.1%}); response mean {summary.mean:.3f}s "
          f"p90 {summary.p90:.3f}s")
    return 0


def _cmd_config_template() -> int:
    from .cluster import meiko_cs2
    from .config import SWEBConfig, dump_config
    from .core import CostParameters, Oracle

    config = SWEBConfig(spec=meiko_cs2(), params=CostParameters(),
                        oracle=Oracle())
    print(dump_config(config))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from .fuzz import (
        case_artifact,
        config_from_artifact,
        profile_by_name,
        replay_case,
        run_fuzz,
    )

    if args.replay is not None:
        with open(args.replay) as handle:
            config = config_from_artifact(json.load(handle))
        report = replay_case(config)
        print(report.summary_line())
        for violation in report.violations:
            print(f"  {violation}")
        return 0 if report.ok else 1

    seed = 7 if args.smoke else args.seed
    n_cases = 20 if args.smoke else args.cases
    profile = profile_by_name("smoke" if args.smoke else args.profile)
    started = time.perf_counter()
    campaign = run_fuzz(root_seed=seed, n_cases=n_cases, profile=profile)
    for line in campaign.summary_lines():
        print(line)
    print(f"wall time: {time.perf_counter() - started:.1f}s")
    if campaign.ok:
        return 0
    first = campaign.failures[0]
    for violation in first.violations:
        print(f"  {violation}")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(case_artifact(first), handle, indent=2)
            handle.write("\n")
        print(f"wrote minimized case to {args.out} "
              f"(replay: sweb-repro fuzz --replay {args.out})")
    return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, args.full)
    if args.command == "all":
        return _cmd_all(args.full)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "bench":
        from .bench import main as bench_main, parse_scale
        try:
            parse_scale(args.scale)
        except ValueError as exc:
            print(f"sweb-repro bench: {exc}", file=sys.stderr)
            return 2
        return bench_main(out=args.out or None, repeats=args.repeats,
                          scale=args.scale, profile=args.profile,
                          top=args.top, phases=args.phases)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "config-template":
        return _cmd_config_template()
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "lint":
        from .lint.runner import run_cli
        return run_cli(paths=args.paths, types=args.types,
                       list_rules=args.list_rules, deep=args.deep,
                       baseline=args.baseline)
    if args.command == "report":
        from .experiments.report import generate_report

        ids = [i.upper() for i in args.only] if args.only else None
        _text, all_hold = generate_report(fast=not args.full,
                                          output=args.output,
                                          experiment_ids=ids)
        print(f"wrote {args.output}; all shape checks hold: {all_hold}")
        return 0 if all_hold else 1
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
