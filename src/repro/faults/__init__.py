"""Fault injection and graceful degradation.

The subsystem has two halves:

* :class:`FaultPlan` / :class:`Fault` — a declarative schedule of node
  crashes, network partitions, disk degradations, heartbeat losses and
  load-report corruptions (:mod:`repro.faults.plan`);
* :class:`FaultInjector` — attaches a plan to a live
  :class:`~repro.core.sweb.SWEBCluster` and flips the state at the
  scheduled times (:mod:`repro.faults.injector`).

The degradation *responses* live in the layers they protect: the broker's
stale-load round-robin fallback (:mod:`repro.core.broker`), the client's
bounded retry-with-backoff (:mod:`repro.web.client`), and loadd's
suspicion-based availability view (:mod:`repro.core.loadinfo`) — all
gated by ``CostParameters.graceful_degradation``.  See ``docs/FAULTS.md``
for the fault model and ``sweb-repro run X9`` for the measured effect.
"""

from .injector import FaultInjector, InjectionRecord
from .plan import FAULT_KINDS, Fault, FaultPlan, FaultSpecError

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "InjectionRecord",
]
