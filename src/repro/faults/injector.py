"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan` to a live cluster.

One injector attaches to one :class:`~repro.core.sweb.SWEBCluster`.  Each
fault in the plan becomes a simulator process that sleeps until the
fault's start time, flips the relevant state — on the :class:`Node`, the
:class:`ClusterNetwork`, a :class:`Disk`, or a :class:`LoadDaemon` — and,
for windowed faults, flips it back at the end time.  Every application
and reversal is appended to :attr:`FaultInjector.log` and emitted on the
cluster's trace under category ``"fault"``, so experiments and tests can
assert exactly what happened and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .plan import Fault, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.sweb import SWEBCluster

__all__ = ["FaultInjector", "InjectionRecord"]


@dataclass(frozen=True)
class InjectionRecord:
    """One state flip the injector performed."""

    time: float
    action: str      # "apply" | "revert"
    fault: Fault

    def format(self) -> str:
        return f"[{self.time:10.3f}] {self.action:>6} {self.fault.describe()}"


class FaultInjector:
    """Drives a fault plan against a running cluster.

    Usage::

        plan = FaultPlan.parse("crash:n2@30-50,partition:10-20")
        injector = FaultInjector(cluster, plan)
        injector.start()
        cluster.run()
        print(injector.report())
    """

    def __init__(self, cluster: "SWEBCluster", plan: FaultPlan) -> None:
        plan.validate(len(cluster.nodes))
        self.cluster = cluster
        self.plan = plan
        self.log: list[InjectionRecord] = []
        self._procs: list = []

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Spawn one driver process per fault (idempotent)."""
        if self._procs:
            return self
        sim = self.cluster.sim
        for i, fault in enumerate(self.plan):
            self._procs.append(
                sim.spawn(self._drive(fault), name=f"fault{i}.{fault.kind}"))
        return self

    def _drive(self, fault: Fault):
        sim = self.cluster.sim
        if fault.start > sim.now:
            yield sim.timeout(fault.start - sim.now)
        self._apply(fault)
        if fault.end is not None:
            yield sim.timeout(fault.end - sim.now)
            self._revert(fault)

    # -- state flips ----------------------------------------------------------
    def _record(self, action: str, fault: Fault) -> None:
        now = self.cluster.sim.now
        self.log.append(InjectionRecord(time=now, action=action, fault=fault))
        if self.cluster.trace is not None:
            self.cluster.trace.emit(now, "fault", "injector", action,
                                    kind=fault.kind, target=fault.node,
                                    window=fault.window)

    def _apply(self, fault: Fault) -> None:
        cluster = self.cluster
        if fault.kind == "crash":
            cluster.node_crash(fault.node)
        elif fault.kind == "partition":
            cluster.network.partition(self._groups(fault))
        elif fault.kind == "slowdisk":
            cluster.nodes[fault.node].disk.degrade(fault.factor)
        elif fault.kind == "mute":
            cluster.loadds[fault.node].muted = True
        elif fault.kind == "corrupt":
            cluster.loadds[fault.node].corrupt_factor = fault.factor
        self._record("apply", fault)

    def _revert(self, fault: Fault) -> None:
        cluster = self.cluster
        if fault.kind == "crash":
            cluster.node_restart(fault.node)
        elif fault.kind == "partition":
            cluster.network.heal()
            # A healed fabric carries heartbeats again immediately: every
            # daemon re-announces so views converge without waiting out a
            # full broadcast period.
            for daemon in cluster.loadds.values():
                if daemon.node.alive and not daemon.muted:
                    daemon.broadcast_now()
        elif fault.kind == "slowdisk":
            cluster.nodes[fault.node].disk.restore()
        elif fault.kind == "mute":
            cluster.loadds[fault.node].muted = False
            if cluster.nodes[fault.node].alive:
                cluster.loadds[fault.node].broadcast_now()
        elif fault.kind == "corrupt":
            cluster.loadds[fault.node].corrupt_factor = None
        self._record("revert", fault)

    def _groups(self, fault: Fault) -> tuple[tuple[int, ...], ...]:
        """Resolve a partition's groups (default: split into two halves)."""
        if fault.groups:
            return fault.groups
        n = len(self.cluster.nodes)
        half = max(1, n // 2)
        return (tuple(range(half)), tuple(range(half, n)))

    # -- reporting -------------------------------------------------------------
    def report(self) -> str:
        """Chronological log of every state flip performed so far."""
        if not self.log:
            return "(no faults applied)"
        return "\n".join(rec.format() for rec in self.log)

    def applied(self, kind: str) -> int:
        """How many faults of ``kind`` have been applied so far."""
        return sum(1 for rec in self.log
                   if rec.action == "apply" and rec.fault.kind == kind)

    def __repr__(self) -> str:
        return (f"<FaultInjector faults={len(self.plan)} "
                f"applied={len(self.log)}>")
