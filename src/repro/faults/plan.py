"""Declarative fault plans.

The paper's loadd exists because nodes fail: it "broadcasts load every
2-3 s and marks silent peers unavailable" (§2.3/§3.1).  A
:class:`FaultPlan` makes those failures a first-class, reproducible
input to any run: a list of :class:`Fault` events, each flipping some
piece of cluster state at a scheduled simulated time and (optionally)
flipping it back later.

Five fault kinds are modelled:

``crash``
    The node dies abruptly: it refuses new connections, resets the
    connections it was serving, and its loadd falls silent.  With an end
    time the node restarts and rejoins (loadd re-announces it).
``partition``
    The cluster interconnect splits into disjoint groups; transfers
    (including loadd broadcasts and NFS reads) between groups are lost
    until the partition heals.
``slowdisk``
    A node's disk channel degrades by a factor (bad sectors, a rebuild,
    a failing drive).  The node does *not* know: loadd keeps advertising
    the nominal bandwidth, so brokers misprice it — the silent
    degradation scenario.
``mute``
    Heartbeat loss: the node keeps serving but its loadd stops
    broadcasting, so peers stale it out after the suspicion/staleness
    timeouts even though it is healthy.
``corrupt``
    Load-report corruption: broadcasts go out with the CPU load scaled
    by a factor (default 0 — the node advertises itself idle and
    attracts the herd).

Plans are built either programmatically (:meth:`FaultPlan.crash` and
friends) or from the compact CLI spec string parsed by
:meth:`FaultPlan.parse` — see ``docs/FAULTS.md`` for the grammar.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["Fault", "FaultPlan", "FaultSpecError", "FAULT_KINDS"]

#: Every fault kind a plan may contain.
FAULT_KINDS = ("crash", "partition", "slowdisk", "mute", "corrupt")

#: kinds that target a single node (partition targets the fabric)
_NODE_KINDS = ("crash", "slowdisk", "mute", "corrupt")

#: kinds whose end time is required (the others may be permanent)
_WINDOW_KINDS = ("partition", "slowdisk")


class FaultSpecError(ValueError):
    """Raised for an unparseable or inconsistent fault specification."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what breaks, when, and (optionally) when it heals.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    start:
        Simulated time the fault is injected.
    end:
        Simulated time it is reverted; ``None`` means permanent (only
        legal for ``crash``, ``mute`` and ``corrupt``).
    node:
        Target node id for the single-node kinds; ``None`` for
        ``partition``.
    factor:
        ``slowdisk``: bandwidth divisor (4.0 = quarter speed).
        ``corrupt``: multiplier applied to the broadcast CPU load
        (0.0 = advertise idle).
    groups:
        ``partition``: explicit node groups; empty means "split the
        cluster into two halves", resolved when the plan is attached.
    """

    kind: str
    start: float
    end: Optional[float] = None
    node: Optional[int] = None
    factor: Optional[float] = None
    groups: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {self.kind!r}; "
                                 f"choose from {FAULT_KINDS}")
        if self.start < 0:
            raise FaultSpecError(f"{self.kind}: negative start {self.start}")
        if self.end is not None and self.end <= self.start:
            raise FaultSpecError(
                f"{self.kind}: end {self.end} must be after start {self.start}")
        if self.kind in _NODE_KINDS:
            if self.node is None or self.node < 0:
                raise FaultSpecError(f"{self.kind}: needs a target node id")
        elif self.node is not None:
            raise FaultSpecError(f"{self.kind}: does not target a single node")
        if self.kind in _WINDOW_KINDS and self.end is None:
            raise FaultSpecError(f"{self.kind}: needs an end time "
                                 f"(use start-end)")
        if self.kind == "slowdisk":
            if self.factor is None or self.factor < 1.0:
                raise FaultSpecError(
                    f"slowdisk: factor must be >= 1, got {self.factor}")
        if self.kind == "corrupt" and self.factor is not None \
                and self.factor < 0:
            raise FaultSpecError(
                f"corrupt: factor must be >= 0, got {self.factor}")

    @property
    def window(self) -> str:
        """Human-readable time window, e.g. ``"30s"`` or ``"10-20s"``."""
        if self.end is None:
            return f"{self.start:g}s"
        return f"{self.start:g}-{self.end:g}s"

    def describe(self) -> str:
        """One-line description for reports and traces."""
        if self.kind == "partition":
            groups = ("halves" if not self.groups else
                      "|".join(",".join(f"n{n}" for n in g)
                               for g in self.groups))
            return f"partition[{groups}] @ {self.window}"
        extra = ""
        if self.kind == "slowdisk":
            extra = f" x{self.factor:g}"
        elif self.kind == "corrupt":
            extra = f" x{0.0 if self.factor is None else self.factor:g}"
        return f"{self.kind} n{self.node}{extra} @ {self.window}"


# grammar pieces for the compact spec strings (see docs/FAULTS.md)
_NODE_RE = re.compile(r"^n(\d+)$")
_TIME_RE = re.compile(r"^(\d+(?:\.\d+)?)(?:-(\d+(?:\.\d+)?))?$")


def _parse_time(text: str, clause: str) -> tuple[float, Optional[float]]:
    """Parse ``30`` or ``10-20`` into (start, end)."""
    m = _TIME_RE.match(text)
    if not m:
        raise FaultSpecError(f"bad time window {text!r} in {clause!r} "
                             f"(expected START or START-END)")
    start = float(m.group(1))
    end = float(m.group(2)) if m.group(2) is not None else None
    return start, end


def _parse_node(text: str, clause: str) -> int:
    m = _NODE_RE.match(text)
    if not m:
        raise FaultSpecError(f"bad node {text!r} in {clause!r} "
                             f"(expected nID, e.g. n2)")
    return int(m.group(1))


def _split_factor(text: str) -> tuple[str, Optional[float]]:
    """Split a trailing ``xFACTOR`` off a time window."""
    if "x" in text:
        window, _, factor = text.rpartition("x")
        try:
            return window, float(factor)
        except ValueError:
            raise FaultSpecError(f"bad factor in {text!r}") from None
    return text, None


@dataclass
class FaultPlan:
    """An ordered collection of :class:`Fault` events.

    Plans are plain data: they do not touch a cluster until a
    :class:`~repro.faults.injector.FaultInjector` attaches them.
    """

    faults: list[Fault] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        """Append one fault (chainable)."""
        self.faults.append(fault)
        return self

    def crash(self, node: int, at: float,
              restart_at: Optional[float] = None) -> "FaultPlan":
        """Crash ``node`` at ``at``; restart it at ``restart_at`` if given."""
        return self.add(Fault("crash", start=at, end=restart_at, node=node))

    def partition(self, start: float, end: float,
                  groups: Sequence[Iterable[int]] = ()) -> "FaultPlan":
        """Split the fabric for [start, end); default groups = two halves."""
        frozen = tuple(tuple(int(n) for n in g) for g in groups)
        return self.add(Fault("partition", start=start, end=end,
                              groups=frozen))

    def slow_disk(self, node: int, start: float, end: float,
                  factor: float = 4.0) -> "FaultPlan":
        """Degrade ``node``'s disk bandwidth by ``factor`` for the window."""
        return self.add(Fault("slowdisk", start=start, end=end, node=node,
                              factor=factor))

    def mute(self, node: int, start: float,
             end: Optional[float] = None) -> "FaultPlan":
        """Silence ``node``'s loadd broadcasts (heartbeat loss)."""
        return self.add(Fault("mute", start=start, end=end, node=node))

    def corrupt(self, node: int, start: float, end: Optional[float] = None,
                factor: float = 0.0) -> "FaultPlan":
        """Corrupt ``node``'s load reports (CPU load scaled by ``factor``)."""
        return self.add(Fault("corrupt", start=start, end=end, node=node,
                              factor=factor))

    # -- parsing ---------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a comma-separated CLI fault spec.

        Examples (full grammar in ``docs/FAULTS.md``)::

            crash:n2@30            crash node 2 at t=30, no restart
            crash:n2@30-50         crash at 30, restart at 50
            partition:10-20        split into halves for [10, 20)
            partition:n0+n1|n2@10-20   explicit groups (+ within, | between)
            slowdisk:n1@5-25x4     node 1's disk 4x slower for [5, 25)
            mute:n3@10-30          heartbeat loss for [10, 30)
            corrupt:n2@10-30x0     broadcast zero CPU load for [10, 30)
        """
        plan = cls()
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            kind, sep, rest = clause.partition(":")
            if not sep or not rest:
                raise FaultSpecError(f"bad fault clause {clause!r} "
                                     f"(expected KIND:ARGS)")
            if kind == "partition":
                groups_text, sep, window_text = rest.partition("@")
                if not sep:             # bare window: default halves
                    groups_text, window_text = "", groups_text
                start, end = _parse_time(window_text, clause)
                groups = tuple(
                    tuple(_parse_node(n, clause) for n in g.split("+"))
                    for g in groups_text.split("|")) if groups_text else ()
                plan.add(Fault("partition", start=start, end=end,
                               groups=groups))
                continue
            node_text, sep, window_text = rest.partition("@")
            if not sep:
                raise FaultSpecError(f"bad fault clause {clause!r} "
                                     f"(expected {kind}:nID@WINDOW)")
            node = _parse_node(node_text, clause)
            window_text, factor = _split_factor(window_text)
            start, end = _parse_time(window_text, clause)
            if kind == "corrupt" and factor is None:
                factor = 0.0
            plan.add(Fault(kind, start=start, end=end, node=node,
                           factor=factor))
        if not plan.faults:
            raise FaultSpecError(f"empty fault spec {spec!r}")
        return plan

    # -- validation / introspection -------------------------------------------
    def validate(self, num_nodes: int) -> None:
        """Check every fault's targets fit a cluster of ``num_nodes``."""
        for fault in self.faults:
            if fault.node is not None and fault.node >= num_nodes:
                raise FaultSpecError(
                    f"{fault.describe()}: node {fault.node} out of range "
                    f"(cluster has {num_nodes} nodes)")
            for group in fault.groups:
                for n in group:
                    if n >= num_nodes:
                        raise FaultSpecError(
                            f"{fault.describe()}: node {n} out of range "
                            f"(cluster has {num_nodes} nodes)")

    def describe(self) -> str:
        """One line per fault, in start-time order."""
        return "\n".join(f.describe()
                         for f in sorted(self.faults, key=lambda f: f.start))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.faults)} faults>"
