"""§3.3 — the closed-form sustained-rps bound vs the simulation.

The paper validates its analysis once: 17.3 rps predicted (§3.3; 17.8 in
the §4.1 restatement) against 16 rps measured, for 1.5 MB files on six
Meiko nodes.  We do the same, and extend it with a node sweep showing the
bound tracks the simulation across p.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..core import AnalysisInputs, max_sustained_rps, paper_example
from .base import ExperimentReport
from .paper_data import ANALYSIS
from .table1 import max_rps_cell
from .tables import ComparisonRow, render_table

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentReport:
    duration = 40.0 if fast else 120.0
    node_counts = (2, 4, 6)

    rows = []
    data = {}
    for p in node_counts:
        inputs = AnalysisInputs(p=p, F=1.5e6, b1=5e6, b2=4.5e6, d=0.0,
                                A=paper_example().A)
        predicted = max_sustained_rps(inputs)
        measured = max_rps_cell(meiko_cs2(p), 1.5e6, duration, cap=96)
        rows.append([p, predicted, measured,
                     measured / predicted if predicted else float("nan")])
        data[p] = {"predicted": predicted, "measured": measured}

    table = render_table(
        headers=["#nodes", "analytic rps", "simulated max rps",
                 "ratio sim/analytic"],
        rows=rows,
        title="§3.3 analysis vs simulation — sustained max rps, 1.5 MB files")

    six = data[6]
    paper_pred = ANALYSIS["total_rps_s33"].value
    comparisons = [
        ComparisonRow(
            "analytic bound at p=6",
            f"{paper_pred} rps (17.8 in §4.1)",
            f"{six['predicted']:.1f} rps",
            "formula reproduces the worked example",
            ok=abs(six["predicted"] - paper_pred) < 0.5),
        ComparisonRow(
            "simulation near the bound at p=6",
            f"{ANALYSIS['measured_rps'].value} rps measured vs 17.3 analytic",
            f"{six['measured']} rps vs {six['predicted']:.1f} analytic",
            "within 35% of the bound",
            ok=abs(six["measured"] - six["predicted"])
               < 0.35 * six["predicted"]),
        ComparisonRow(
            "bound tracks the node sweep",
            "(extension)",
            " / ".join(f"p={p}: {data[p]['measured']}/{data[p]['predicted']:.0f}"
                       for p in node_counts),
            "measured within 50% of analytic at every p",
            ok=all(abs(data[p]["measured"] - data[p]["predicted"])
                   < 0.5 * data[p]["predicted"] for p in node_counts)),
    ]
    notes = ("Shorter sustained window in fast mode raises the measured max "
             "slightly (more queueing slack per offered second).")
    return ExperimentReport(exp_id="S1", title="Analytic bound vs simulation (§3.3)",
                            table=table, data=data, comparisons=comparisons,
                            notes=notes)
