"""Extension X5 — the self-correcting cost function.

§3.2: "modeling the cost associated with processing a HTTP request
accurately is not easy.  We still need to investigate further the design
of such a function."  We inject a badly mis-specified oracle table (per-
byte CPU underestimated 60×) into the heavy Table 3 workload and compare
three servers:

* **well-specified** — the static table matches reality (the default);
* **mis-specified** — the wrong static table, forever;
* **adaptive** — starts from the same wrong table, learns from served
  requests (:class:`~repro.core.adaptive_oracle.AdaptiveOracle`).

The adaptive server should recover most of the gap.
"""

from __future__ import annotations

from ..core import AdaptiveOracle, Oracle, OracleRule
from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run"]

WRONG_RULES = [OracleRule(pattern="*", ops_per_byte=0.1)]   # truth: ~6


def _cell(oracle, rps: int, duration: float, label: str) -> ScenarioResult:
    """One X5 cell: the Table 3 heavy workload with an injected oracle.

    ``Scenario`` has no oracle hook (it is a per-experiment concern), so
    this builds the cluster directly and replays the workload with the
    same DNS-cached 4-host client layout Table 3 uses.
    """
    from dataclasses import replace as _replace

    from ..core import SWEBCluster
    from ..sim import AllOf
    from ..web import Client, UCSB_CLIENT

    corpus = bimodal_corpus(150, 6, large_frac=0.5, seed=9)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    cluster = SWEBCluster(spec=meiko_cs2(6), policy="sweb", seed=1,
                          oracle=oracle, dns_ttl=300.0)
    corpus.install(cluster)
    sim = cluster.sim
    hosts = [Client(cluster,
                    profile=_replace(UCSB_CLIENT, name=f"ucsb#{i}",
                                     domain=f"ucsb#{i}"))
             for i in range(4)]

    def driver():
        procs = []
        for k, arrival in enumerate(workload):
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            procs.append(hosts[k % 4].fetch(arrival.path))
        yield AllOf(sim, procs)

    done = sim.spawn(driver(), name="driver")
    sim.run(until=done)
    return ScenarioResult(scenario=f"x5-{label}", cluster=cluster,
                          metrics=cluster.metrics,
                          duration=workload.duration, finished_at=sim.now,
                          offered_rps=workload.offered_rps)


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    rps = 25

    results = {
        "well-specified": _cell(Oracle(), rps, duration, "good"),
        "mis-specified (static)": _cell(Oracle(rules=list(WRONG_RULES)),
                                        rps, duration, "bad"),
        "mis-specified (adaptive)": _cell(
            AdaptiveOracle(rules=list(WRONG_RULES), alpha=0.4,
                           min_observations=3),
            rps, duration, "adaptive"),
    }

    rows = [[label, res.mean_response_time, res.drop_rate * 100.0,
             res.redirection_rate * 100.0]
            for label, res in results.items()]
    table = render_table(
        headers=["oracle", "time (s)", "drop (%)", "redirected (%)"],
        rows=rows,
        title=f"X5 — oracle mis-specification and recovery, {rps} rps "
              f"non-uniform, Meiko-6", floatfmt=".3f")

    good = results["well-specified"].mean_response_time
    bad = results["mis-specified (static)"].mean_response_time
    adaptive = results["mis-specified (adaptive)"].mean_response_time
    recovered = (bad - adaptive) / (bad - good) if bad > good else 1.0
    comparisons = [
        ComparisonRow(
            "mis-specification hurts",
            "cost model quality matters (§3.2)",
            f"good {good:.3f}s vs bad {bad:.3f}s",
            "bad table no faster than good",
            ok=bad >= good * 0.98),
        ComparisonRow(
            "adaptive oracle recovers",
            "(the paper's stated future work)",
            f"adaptive {adaptive:.3f}s, recovering {recovered:.0%} of the gap",
            "adaptive at least as good as static-bad",
            ok=adaptive <= bad * 1.02),
        ComparisonRow(
            "adaptive approaches well-specified",
            "learned rate == true send cost",
            f"{adaptive / good:.2f}x of well-specified",
            "within 25% of the good table",
            ok=adaptive <= 1.25 * good),
    ]
    notes = ("The wrong table underestimates per-byte CPU 60x, so the "
             "broker undervalues big-file load when comparing nodes; the "
             "adaptive oracle re-learns the rate from the first few served "
             "requests per file class.")
    return ExperimentReport(exp_id="X5", title="Adaptive oracle recovery",
                            table=table,
                            data={l: r.mean_response_time
                                  for l, r in results.items()},
                            comparisons=comparisons, notes=notes)
