"""Scenario runner: one experiment = cluster + corpus + workload → results.

This is the harness behind every table and figure: it builds a
:class:`SWEBCluster`, installs the corpus, replays the workload arrival
by arrival through simulated clients, waits for every request to finish
(complete, drop or time out), and aggregates the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core import SWEBCluster
from ..sim import AllOf, Summary
from ..web import Client, Metrics
# Deprecated re-export shim: ``Scenario`` and ``DEFAULT_PROFILES`` moved
# to :mod:`repro.workload` when the scenario presets grew into their own
# layer; they stay importable from here only so pre-move callers keep
# working.  New code should import from ``repro.workload`` —
# tests/test_experiments_runner.py pins both paths to the same objects
# so the shim cannot silently drift from the real definitions.
from ..workload import DEFAULT_PROFILES, Scenario

__all__ = ["DEFAULT_PROFILES", "Scenario", "ScenarioResult",
           "run_scenario", "find_max_rps"]


@dataclass
class ScenarioResult:
    """Aggregated outcome of one scenario run."""

    scenario: str
    cluster: SWEBCluster
    metrics: Metrics
    duration: float          # nominal workload window
    finished_at: float       # simulated time the last request settled
    offered_rps: float
    #: the injector that drove the scenario's faults (None = healthy run)
    injector: Optional[object] = None

    # -- headline numbers -------------------------------------------------
    @property
    def completed(self) -> int:
        return self.metrics.completed

    @property
    def drop_rate(self) -> float:
        return self.metrics.drop_rate

    @property
    def mean_response_time(self) -> float:
        return self.metrics.mean_response_time()

    @property
    def response_summary(self) -> Summary:
        return self.metrics.response_summary()

    @property
    def sustained_rps(self) -> float:
        """Completed requests per second of the offered window."""
        return self.metrics.throughput(self.duration)

    @property
    def redirection_rate(self) -> float:
        if not self.metrics.total:
            return 0.0
        return self.metrics.counters["redirected"] / self.metrics.total

    # -- degradation statistics ---------------------------------------------
    @property
    def fallback_count(self) -> int:
        """Stale-load round-robin fallbacks across all brokers."""
        return self.cluster.total_fallbacks()

    @property
    def retry_count(self) -> int:
        """Client connection retries (graceful degradation only)."""
        return self.metrics.counters["retries"]

    @property
    def reset_count(self) -> int:
        """Connections reset by node crashes."""
        return sum(s.connections_reset
                   for s in self.cluster.servers.values())

    # -- substrate statistics -----------------------------------------------
    def cache_hit_rate(self) -> float:
        """Aggregate *page-cache* (RAM) hit rate across all nodes.

        Not the DNS cache — see :meth:`dns_cache_hit_rate` for that.
        """
        hits = sum(n.cache.hits for n in self.cluster.nodes)
        misses = sum(n.cache.misses for n in self.cluster.nodes)
        total = hits + misses
        return hits / total if total else 0.0

    def dns_cache_hit_rate(self) -> float:
        """Client-side DNS cache hit rate (TTL-driven; not the page cache)."""
        return self.cluster.dns.cache_hit_rate

    def page_cache_stats(self) -> dict[int, dict[str, float]]:
        """Per-node page-cache counters (hits/misses/evictions/bytes)."""
        return self.cluster.page_cache_stats()

    def p95_response_time(self) -> float:
        """95th-percentile response time over completed requests.

        Routed through ``Metrics.response_percentile`` (and from there
        the shared ``repro.obs.percentiles`` helper) rather than a
        local re-derivation."""
        if not self.metrics.response_times().count:
            return 0.0
        return self.metrics.response_percentile(95)

    @property
    def replications(self) -> int:
        """Hot-file copies landed by the replication daemon (0 when off)."""
        return self.cluster.total_replications()

    def remote_read_fraction(self) -> float:
        fs = self.cluster.fs
        total = fs.local_reads + fs.remote_reads
        return fs.remote_reads / total if total else 0.0

    def cpu_shares(self) -> dict[str, float]:
        return self.cluster.cpu_share_by_category()

    def balance_index(self) -> float:
        """Jain's fairness index over bytes served per node, in (0, 1].

        1.0 = perfectly even service; 1/n = one node served everything.
        This quantifies how well a policy's *second-stage* assignment
        evened out the byte load.
        """
        served = [0.0] * len(self.cluster.nodes)
        for rec in self.metrics.records:
            if rec.ok and rec.served_by is not None:
                served[rec.served_by] += rec.size
        total = sum(served)
        if total <= 0:
            return 1.0
        n = len(served)
        square_of_sum = total * total
        sum_of_squares = sum(s * s for s in served)
        return square_of_sum / (n * sum_of_squares)

    def phase_means(self) -> dict[str, float]:
        acc = self.metrics.phase_breakdown()
        return {phase: acc.mean(phase) for phase in acc.phases()}

    def summary_line(self) -> str:
        rt = self.mean_response_time
        return (f"{self.scenario}: offered={self.offered_rps:.1f} rps, "
                f"completed={self.completed}, drop={self.drop_rate:.1%}, "
                f"mean_rt={rt:.3f}s")


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one scenario to completion and aggregate its metrics."""
    cluster = SWEBCluster(
        spec=scenario.spec,
        policy=scenario.policy,
        params=scenario.params,
        seed=scenario.seed,
        backlog=scenario.backlog,
        dns_ttl=scenario.dns_ttl,
        trace=scenario.trace,
        tracer=scenario.tracer,
        dispatcher=scenario.dispatcher,
    )
    scenario.corpus.install(cluster)
    injector = (cluster.attach_faults(scenario.faults)
                if scenario.faults is not None else None)
    sim = cluster.sim
    from dataclasses import replace as _replace
    nhosts = max(1, scenario.hosts_per_profile)
    clients: dict[str, list[Client]] = {}
    for name, profile in scenario.profiles.items():
        hosts = []
        for i in range(nhosts):
            prof = profile if nhosts == 1 else _replace(
                profile, name=f"{profile.name}#{i}",
                domain=f"{profile.domain}#{i}")
            hosts.append(Client(cluster, profile=prof,
                                timeout=scenario.client_timeout))
        clients[name] = hosts
    cursors = {name: 0 for name in clients}

    def driver():
        procs = []
        for arrival in scenario.workload:
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            hosts = clients.get(arrival.client)
            if hosts is None:
                raise KeyError(
                    f"workload references unknown client {arrival.client!r}")
            # Spread a profile's requests over its hosts round-robin.
            idx = cursors[arrival.client]
            cursors[arrival.client] = (idx + 1) % len(hosts)
            procs.append(hosts[idx].fetch(arrival.path))
        if procs:
            yield AllOf(sim, procs)

    done = sim.spawn(driver(), name="workload-driver")
    sim.run(until=done)
    # Surface the cluster-layer page-cache counters in the metrics object
    # so reports need not reach back into the cluster (docs/CACHING.md).
    for node_id, stats in cluster.page_cache_stats().items():
        cluster.metrics.record_page_cache(
            node_id, stats["hits"], stats["misses"], stats["evictions"],
            used_bytes=stats["used_bytes"],
            capacity_bytes=stats["capacity_bytes"])
    return ScenarioResult(
        scenario=scenario.name,
        cluster=cluster,
        metrics=cluster.metrics,
        duration=scenario.workload.duration,
        finished_at=sim.now,
        offered_rps=scenario.workload.offered_rps,
        injector=injector,
    )


def find_max_rps(make_scenario: Callable[[int], Scenario],
                 start: int = 1, cap: int = 256,
                 drop_threshold: float = 0.02,
                 ) -> tuple[int, dict[int, ScenarioResult]]:
    """The paper's procedure: "the maximum rps is determined by fixing the
    average file size and increasing the rps until requests start to
    fail".

    Doubles the offered rate until failure (drop rate above
    ``drop_threshold``), then bisects.  Returns the highest integer rps
    that did not fail, plus every evaluated result.
    """
    if start < 1:
        raise ValueError(f"start must be >= 1, got {start}")
    results: dict[int, ScenarioResult] = {}

    def fails(rps: int) -> bool:
        if rps not in results:
            results[rps] = run_scenario(make_scenario(rps))
        return results[rps].drop_rate > drop_threshold

    if fails(start):
        return 0, results
    lo = start
    hi = None
    probe = start
    while hi is None:
        probe = min(probe * 2, cap)
        if fails(probe):
            hi = probe
        else:
            lo = probe
            if probe >= cap:
                return cap, results
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fails(mid):
            hi = mid
        else:
            lo = mid
    return lo, results
