"""Table 5 — cost distribution in the average response time.

"Table 5 shows the case of a 1.5MB file fetched over a fairly heavily
loaded system. … For a client fetching a 1.5M file on the Meiko, of the
5.4 sec. total time, well over 90% is spent doing data transfer.  The
results indicate that the overall overhead introduced by SWEB analysis
and scheduling algorithm is insignificant."

We run the same 16 rps × 1.5 MB burst on the 6-node Meiko under SWEB and
report the mean per-phase costs measured at the clients.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .paper_data import TABLE5
from .runner import Scenario, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run"]

PHASE_LABELS = {
    "preprocessing": "Preprocessing",
    "analysis": "Req. Analysis (SWEB)",
    "redirection": "Redirection (SWEB)",
    "data_transfer": "Data Transfer",
    "network": "Network Costs",
}


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    corpus = uniform_corpus(120, 1.5e6, 6)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(16, duration, sampler)
    scenario = Scenario(name="t5", spec=meiko_cs2(6), corpus=corpus,
                        workload=workload, policy="sweb", seed=1)
    result = run_scenario(scenario)

    phases = result.phase_means()
    total = result.mean_response_time
    rows = []
    for key, label in PHASE_LABELS.items():
        measured = phases.get(key, 0.0)
        paper = TABLE5.get(key)
        rows.append([label, paper.value if paper else None, measured,
                     measured / total * 100.0 if total else 0.0])
    rows.append(["Total Client Time", TABLE5["total"].value, total, 100.0])

    table = render_table(
        headers=["activity", "paper (s)", "measured (s)", "% of total"],
        rows=rows,
        title="Table 5 — cost distribution, 1.5 MB fetch, loaded Meiko",
        floatfmt=".4f")

    transfer_share = phases.get("data_transfer", 0.0) / total if total else 0.0
    sweb_overhead = (phases.get("analysis", 0.0)
                     + phases.get("redirection", 0.0))
    comparisons = [
        ComparisonRow(
            "data transfer dominates",
            "well over 90% of total",
            f"{transfer_share:.0%}",
            "more than 75% of total time",
            ok=transfer_share > 0.75),
        ComparisonRow(
            "SWEB-added overhead insignificant",
            "1-4 ms analysis + 4 ms redirect",
            f"{sweb_overhead * 1e3:.1f} ms mean",
            "under 5% of total",
            ok=sweb_overhead < 0.05 * total),
        ComparisonRow(
            "preprocessing is a small slice",
            f"{TABLE5['preprocessing'].value * 1e3:.0f} ms (70 ms CPU; "
            "queueing inflates it under load)",
            f"{phases.get('preprocessing', 0.0) * 1e3:.0f} ms",
            "10-1000 ms and well below transfer",
            ok=(0.01 < phases.get("preprocessing", 0.0) < 1.0
                and phases.get("preprocessing", 0.0)
                < 0.3 * phases.get("data_transfer", 1.0))),
        ComparisonRow(
            "total client time ~ seconds",
            f"{TABLE5['total'].value:.1f} s",
            f"{total:.1f} s",
            "within ~3x of 5.4 s",
            ok=1.5 < total < 16.0),
    ]
    notes = ("'Data Transfer' here covers the disk/cache/NFS read plus "
             "pushing bytes through the TCP stack to the client; 'Network "
             "Costs' covers DNS, connects and WAN latency — the same split "
             "as the paper's instrumentation.")
    return ExperimentReport(exp_id="T5",
                            title="Cost distribution (Table 5)",
                            table=table,
                            data={"phases": phases, "total": total},
                            comparisons=comparisons, notes=notes)
