"""Extension X3 — nodes leaving and joining the resource pool under load.

§1: workstations "can be used for other computing needs, and can leave
and join the system resource pool at any time. Thus scheduling
techniques which are adaptive to the dynamic change of system load and
configuration are desirable.  The DNS in a round-robin fashion cannot
predict those changes."

We take a node out mid-run (DNS keeps rotating to it — administrators
are slower than loadd) and bring it back.  Round-robin keeps sending a
share of requests into the dead node; SWEB only loses the requests that
land there before loadd's staleness timeout... but since the dead node
refuses connections outright, what SWEB actually buys is *post-redirect*
safety: survivors stop *redirecting into* the dead node once it goes
stale, and the rejoin is absorbed automatically.
"""

from __future__ import annotations

from ..core import SWEBCluster
from ..cluster import meiko_cs2
from ..sim import AllOf, RandomStreams
from ..web import Client
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run", "run_churn"]


def run_churn(policy: str, duration: float = 30.0, rps: int = 12,
              leave_at: float = 5.0, rejoin_at: float = 20.0,
              victim: int = 3, seed: int = 1) -> dict:
    """One churn run; returns the headline metrics."""
    n_nodes = 6
    cluster = SWEBCluster(meiko_cs2(n_nodes), policy=policy, seed=seed)
    corpus = bimodal_corpus(120, n_nodes, large_frac=0.5, seed=9)
    corpus.install(cluster)
    sim = cluster.sim
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    client = Client(cluster, timeout=120.0)

    def churner():
        yield sim.timeout(leave_at)
        cluster.node_leave(victim)           # DNS is NOT updated
        yield sim.timeout(rejoin_at - leave_at)
        cluster.node_join(victim, update_dns=False)

    def driver():
        procs = []
        for arrival in workload:
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            procs.append(client.fetch(arrival.path))
        yield AllOf(sim, procs)

    sim.spawn(churner(), name="churner")
    done = sim.spawn(driver(), name="driver")
    sim.run(until=done)

    metrics = cluster.metrics
    served_by_victim_after_rejoin = sum(
        1 for rec in metrics.records
        if rec.ok and rec.served_by == victim and rec.start > rejoin_at)
    redirected_into_victim_while_down = sum(
        1 for rec in metrics.records
        if rec.redirected and rec.dropped
        and leave_at < rec.start < rejoin_at)
    return {
        "drop_rate": metrics.drop_rate,
        "dropped": metrics.dropped,
        "total": metrics.total,
        "mean_rt": metrics.mean_response_time(),
        "victim_serves_after_rejoin": served_by_victim_after_rejoin,
        "redirected_then_dropped": redirected_into_victim_while_down,
    }


def run(fast: bool = True) -> ExperimentReport:
    duration = 18.0 if fast else 30.0
    rejoin_at = 12.0 if fast else 20.0
    results = {policy: run_churn(policy, duration=duration,
                                 rejoin_at=rejoin_at)
               for policy in ("round-robin", "sweb")}

    rows = [[policy, r["drop_rate"] * 100.0, r["mean_rt"],
             r["victim_serves_after_rejoin"], r["redirected_then_dropped"]]
            for policy, r in results.items()]
    table = render_table(
        headers=["policy", "drop (%)", "time (s)",
                 "victim serves after rejoin", "redirected-into-dead drops"],
        rows=rows,
        title="X3 — node leave/join under load (DNS never updated)")

    rr, sw = results["round-robin"], results["sweb"]
    comparisons = [
        ComparisonRow(
            "churn causes drops under both",
            "DNS cannot predict membership changes",
            f"RR {rr['drop_rate']:.0%} vs SWEB {sw['drop_rate']:.0%}",
            "both positive, SWEB <= RR",
            ok=sw["drop_rate"] <= rr["drop_rate"] + 1e-9),
        ComparisonRow(
            "SWEB never redirects into the dead node",
            "loadd marks silent nodes unavailable",
            f"{sw['redirected_then_dropped']} redirected-then-dropped",
            "zero after staleness timeout",
            ok=sw["redirected_then_dropped"] == 0),
        ComparisonRow(
            "rejoin is absorbed automatically",
            "loadd notices joins",
            f"victim served {sw['victim_serves_after_rejoin']} requests "
            f"after rejoining",
            "victim serves again",
            ok=sw["victim_serves_after_rejoin"] > 0),
    ]
    notes = ("Drops here are connection refusals at the departed node — "
             "unavoidable while DNS still rotates to it; the scheduler's "
             "job is to stop *sending more work* its way, which loadd's "
             "staleness rule accomplishes.")
    return ExperimentReport(exp_id="X3", title="Membership churn under load",
                            table=table, data=results,
                            comparisons=comparisons, notes=notes)
