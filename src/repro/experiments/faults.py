"""Extension X9 — fault injection and graceful degradation.

The paper motivates SWEB with availability: §3.1 rejects the central
dispatcher because it "becomes a single point of failure", and §1 wants
scheduling "adaptive to the dynamic change of system load and
configuration".  X3 covered *graceful* departures; this experiment
covers the ungraceful ones: a node crashes mid-run (in-flight
connections reset, DNS keeps rotating to the corpse), every loadd is
silenced long enough that brokers lose their peer-load picture, and a
disk silently degrades.

We run the same fault plan twice — once paper-faithful (no client
retries, brokers trust whatever load data they have) and once with the
graceful-degradation extensions on (bounded client retry with backoff,
broker stale-load round-robin fallback, suspicion filtering).  The
claim checked: under identical faults, graceful degradation strictly
lowers the drop rate, the broker fallback demonstrably engages, and
client retries demonstrably recover reset/refused connections.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..core import CostParameters
from ..sim import RandomStreams
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "run_faulted", "DEFAULT_PLAN"]

#: One crash (connections reset, DNS never updated), a cluster-wide
#: loadd blackout longer than ``fallback_staleness`` (forces the
#: stale-load fallback decision at every broker), and a silent 8x disk
#: slowdown.  Node ids assume >= 6 nodes.
DEFAULT_PLAN = ("crash:n2@4-14,"
                "mute:n0@3-15,mute:n1@3-15,mute:n3@3-15,"
                "mute:n4@3-15,mute:n5@3-15,"
                "slowdisk:n1@2-16x8")


def run_faulted(graceful: bool, duration: float = 20.0, rps: int = 12,
                plan: str = DEFAULT_PLAN, seed: int = 1) -> ScenarioResult:
    """One fault-injected run; identical workload either way."""
    n_nodes = 6
    corpus = bimodal_corpus(120, n_nodes, large_frac=0.5, seed=9)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    scenario = Scenario(
        name=f"X9/{'graceful' if graceful else 'faithful'}",
        spec=meiko_cs2(n_nodes),
        corpus=corpus,
        workload=burst_workload(rps, duration, sampler),
        policy="sweb",
        seed=seed,
        params=CostParameters(graceful_degradation=graceful),
        faults=plan,
    )
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 20.0 if fast else 40.0
    rps = 12 if fast else 16
    results = {mode: run_faulted(graceful=(mode == "graceful"),
                                 duration=duration, rps=rps)
               for mode in ("faithful", "graceful")}

    rows = [[mode, r.drop_rate * 100.0, r.completed,
             r.mean_response_time, r.fallback_count, r.retry_count,
             r.reset_count]
            for mode, r in results.items()]
    table = render_table(
        headers=["mode", "drop (%)", "completed", "time (s)",
                 "fallbacks", "retries", "resets"],
        rows=rows,
        title="X9 — crash + loadd blackout + slow disk, "
              "graceful degradation off vs on")

    ng, g = results["faithful"], results["graceful"]
    comparisons = [
        ComparisonRow(
            "graceful degradation lowers the drop rate",
            "availability is the design goal (§3.1)",
            f"faithful {ng.drop_rate:.1%} vs graceful {g.drop_rate:.1%}",
            "strictly lower with degradation on",
            ok=g.drop_rate < ng.drop_rate),
        ComparisonRow(
            "broker falls back when all peer load info is stale",
            "don't trust a load picture older than fallback_staleness",
            f"{g.fallback_count} fallback decisions (faithful: "
            f"{ng.fallback_count})",
            "engages only in graceful mode",
            ok=g.fallback_count > 0 and ng.fallback_count == 0),
        ComparisonRow(
            "client retry-with-backoff recovers failed connections",
            "a refused/reset connection need not be a lost request",
            f"{g.retry_count} retries (faithful: {ng.retry_count})",
            "retries occur only in graceful mode",
            ok=g.retry_count > 0 and ng.retry_count == 0),
        ComparisonRow(
            "the crash actually bites",
            "node_crash resets in-flight connections",
            f"faithful run reset {ng.reset_count} connections",
            "at least one reset observed",
            ok=ng.reset_count > 0),
    ]
    notes = ("Both runs replay the identical arrival sequence against "
             "the identical fault plan; the only difference is "
             "CostParameters.graceful_degradation.  The faithful run "
             "shows what the paper's design loses to an ungraceful "
             "failure; the graceful run shows the recovery machinery "
             "(retry, fallback, suspicion) buying the drop rate down "
             "while preserving the at-most-once redirect rule.")
    return ExperimentReport(exp_id="X9",
                            title="Fault injection and graceful degradation",
                            table=table, data={
                                mode: {
                                    "drop_rate": r.drop_rate,
                                    "completed": r.completed,
                                    "mean_rt": r.mean_response_time,
                                    "fallbacks": r.fallback_count,
                                    "retries": r.retry_count,
                                    "resets": r.reset_count,
                                    "injector_log": (
                                        [rec.format()
                                         for rec in r.injector.log]
                                        if r.injector else []),
                                } for mode, r in results.items()},
                            comparisons=comparisons, notes=notes)
