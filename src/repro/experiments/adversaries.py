"""X12 adversarial clients — hostile workloads vs the mitigation tiers.

SWEB's §1 promise is service that stays balanced and responsive when
"the environment can change over time and SWEB cannot predict those
changes".  The fuzz layer's adversarial actors
(:mod:`repro.workload.adversaries`) make that concrete: four hostile
client populations — hotspot flood, cache-busting URL churn, slowloris
slow-drip, DNS-cache skew abuse — each mixed into the same plain
background load.  Because every attack stream runs under its own client
name, the experiment scores what matters: the *background population's*
experience (its p95, mean latency, drop rate), not the attackers'.

For every adversary the cluster runs twice:

* **plain** — paper-faithful SWEB (no retries, no cache directory);
* **mitigated** — ``--graceful`` + ``--coop-cache`` + replication: the
  fault-tolerance tier retries refused connections and stops trusting
  stale load data, while the cooperative-cache tier spreads hot bytes
  across cluster RAM.

The shape claims mirror the fuzz layer's acceptance bar: each adversary
*strictly degrades* the plain configuration on the metric it attacks,
while the mitigated configuration *stays within graceful-degradation
bounds* — no worse than plain under the same attack (within a small
slack) and still completing most of the background's requests.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster import meiko_cs2
from ..core import CostParameters
from ..sim import RandomStreams
from ..web import RequestRecord
from ..workload import (
    BACKGROUND_CLIENT,
    Corpus,
    Document,
    MB,
    burst_workload,
    make_adversary,
    uniform_sampler,
)
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["ATTACKS", "Attack", "run", "run_adversary", "skewed_corpus"]

NODES = 6
RPS = 6
#: the listen backlog is kept small so connection-holding attacks bite
BACKLOG = 24

#: hot set: 24 x 1.5 MB (the paper's large-file size) all homed on node
#: 0 — 36 MB together, deliberately larger than one Meiko node's 32 MB
#: RAM so a cache-busting scan has something to thrash.
N_HOT = 24
HOT_SIZE = 1.5 * MB
N_COLD = 48
COLD_SIZE = 100e3

#: mitigated runs must keep completing at least this fraction of the
#: background's offered load — the graceful-degradation bound
COMPLETION_BOUND = 0.60
#: and may exceed the plain run's attacked metric by at most this slack
SLACK = 0.05


def skewed_corpus(n_nodes: int, hot_home: int = 0) -> Corpus:
    """Hot 1.5 MB files all homed on one node, cold pages round-robin."""
    docs = [Document(path=f"/hot/map{i:03d}.gif", size=HOT_SIZE,
                     home=hot_home % n_nodes)
            for i in range(N_HOT)]
    docs.extend(Document(path=f"/cold/page{i:04d}.html", size=COLD_SIZE,
                         home=i % n_nodes)
                for i in range(N_COLD))
    return Corpus(name="adv-skewed", documents=docs)


# -- background-population metrics -----------------------------------------
def _bg_records(res: ScenarioResult) -> list[RequestRecord]:
    return [rec for rec in res.metrics.records
            if rec.client.split("#")[0] == BACKGROUND_CLIENT]


def bg_mean(res: ScenarioResult) -> float:
    """Mean response time over the background's completed requests."""
    times = [rec.response_time for rec in _bg_records(res)
             if rec.ok and rec.response_time is not None]
    return sum(times) / len(times) if times else 0.0


def bg_p95(res: ScenarioResult) -> float:
    """95th-percentile response time over the background's completions."""
    times = sorted(rec.response_time for rec in _bg_records(res)
                   if rec.ok and rec.response_time is not None)
    if not times:
        return 0.0
    return times[int(0.95 * (len(times) - 1))]


def bg_drop_rate(res: ScenarioResult) -> float:
    """Fraction of the background's requests that were dropped."""
    records = _bg_records(res)
    if not records:
        return 0.0
    return sum(1 for rec in records if rec.dropped) / len(records)


def bg_completion(res: ScenarioResult) -> float:
    """Fraction of the background's requests that completed OK."""
    records = _bg_records(res)
    if not records:
        return 0.0
    return sum(1 for rec in records if rec.ok) / len(records)


class Attack:
    """One X12 column: the adversary plus how we score its damage."""

    def __init__(self, name: str, intensity: float, label: str,
                 metric: Callable[[ScenarioResult], float]):
        self.name = name
        self.intensity = intensity
        self.label = label
        self.metric = metric


#: canonical X12 attack roster.  The metric is always "higher = worse"
#: for the background: tail latency for the flood, the scan and the
#: skew (queueing behind the attack is what bystanders feel), drop rate
#: for the backlog-exhausting drip.
ATTACKS = (
    Attack("hotspot", intensity=1.0, label="bg p95 (s)", metric=bg_p95),
    Attack("cachebust", intensity=2.0, label="bg p95 (s)", metric=bg_p95),
    Attack("slowdrip", intensity=1.0, label="bg drop rate",
           metric=bg_drop_rate),
    Attack("dnsskew", intensity=2.0, label="bg p95 (s)", metric=bg_p95),
)


def _params(mitigated: bool) -> CostParameters:
    if not mitigated:
        return CostParameters()
    # Replication is tuned to spread *attacks*, not the whole corpus: a
    # high skew threshold means only files drawing several times the
    # mean byte volume (the flood's targets) qualify, and those few go
    # to every node — partial replication would concentrate a flood on
    # the replica holders, and a low threshold would set off perpetual
    # replicate/evict churn (24 hot files x 6 copies is more bytes than
    # the cluster has RAM).
    return CostParameters(
        graceful_degradation=True,
        coop_cache=True, cache_hot_set=4, replicate=True,
        replication_factor=NODES, replication_period=1.0,
        replication_skew=4.0, replication_max_per_cycle=8)


def run_adversary(adversary: Optional[str], mitigated: bool,
                  duration: float = 60.0, rps: int = RPS,
                  nodes: int = NODES, seed: int = 7,
                  intensity: Optional[float] = None) -> ScenarioResult:
    """One cell: the named adversary (or clean baseline) vs one tier."""
    corpus = skewed_corpus(nodes)
    rng = RandomStreams(seed=seed)
    overrides: dict = {}
    if adversary is None:
        workload = burst_workload(rps, duration,
                                  uniform_sampler(corpus, rng))
    else:
        workload, overrides = make_adversary(
            adversary, corpus, rng, rps=rps, duration=duration,
            intensity=intensity)
    name = adversary or "baseline"
    tier = "mitigated" if mitigated else "plain"
    scenario = Scenario(name=f"adv-{name}-{tier}", spec=meiko_cs2(nodes),
                        corpus=corpus, workload=workload, policy="sweb",
                        seed=seed, backlog=BACKLOG, client_timeout=120.0,
                        params=_params(mitigated), **overrides)
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 60.0 if fast else 120.0
    baseline = run_adversary(None, mitigated=False, duration=duration)
    results: dict[str, dict[str, ScenarioResult]] = {}
    for attack in ATTACKS:
        results[attack.name] = {
            "plain": run_adversary(attack.name, False, duration=duration,
                                   intensity=attack.intensity),
            "mitigated": run_adversary(attack.name, True, duration=duration,
                                       intensity=attack.intensity),
        }

    def row(name: str, res: ScenarioResult) -> list:
        return [name,
                bg_p95(res),
                bg_mean(res),
                bg_drop_rate(res) * 100.0,
                res.cache_hit_rate() * 100.0,
                res.balance_index(),
                float(res.retry_count)]

    rows = [row("baseline/plain", baseline)]
    for attack in ATTACKS:
        rows.append(row(f"{attack.name}/plain", results[attack.name]["plain"]))
        rows.append(row(f"{attack.name}/mitigated",
                        results[attack.name]["mitigated"]))
    table = render_table(
        headers=["workload/tier", "bg p95 (s)", "bg mean (s)",
                 "bg drop (%)", "hit (%)", "balance", "retries"],
        rows=rows,
        title=(f"Adversarial clients — {NODES} nodes, {RPS} rps "
               f"background, backlog {BACKLOG} (bg = victim population)"))

    comparisons = []
    for attack in ATTACKS:
        plain = results[attack.name]["plain"]
        mitigated = results[attack.name]["mitigated"]
        m_base = attack.metric(baseline)
        m_plain = attack.metric(plain)
        m_mit = attack.metric(mitigated)
        comparisons.append(ComparisonRow(
            f"{attack.name} strictly degrades plain SWEB",
            "(not in paper — our extension)",
            f"{attack.label} {m_plain:.3f} vs {m_base:.3f} clean",
            f"{attack.label} strictly worse than the clean baseline",
            ok=m_plain > m_base))
        within = (m_mit <= m_plain + SLACK * abs(m_plain)
                  and bg_completion(mitigated) >= COMPLETION_BOUND)
        comparisons.append(ComparisonRow(
            f"{attack.name}: mitigations hold the line",
            "(not in paper — our extension)",
            f"{attack.label} {m_mit:.3f}, "
            f"bg completion {bg_completion(mitigated):.1%}",
            f"graceful+coop-cache within {SLACK:.0%} of plain under "
            f"attack, >= {COMPLETION_BOUND:.0%} bg completion",
            ok=within))

    notes = ("Each adversary mixes its attack stream (own client name) "
             "into the same 6 rps background the baseline runs alone, so "
             "the victim population's experience is directly comparable "
             "across rows.  The mitigation tier combines X9's graceful "
             "degradation (bounded retries, staleness fallback) with "
             "X10's cooperative cache and replication; the bound checked "
             "is the practical one — under attack the mitigated cluster "
             "must stay within a small slack of paper-faithful SWEB on "
             "the attacked metric and keep completing the background's "
             "requests.")
    data = {"baseline": {"bg_p95": bg_p95(baseline),
                         "bg_mean": bg_mean(baseline),
                         "bg_drop_rate": bg_drop_rate(baseline),
                         "hit_rate": baseline.cache_hit_rate(),
                         "balance": baseline.balance_index()}}
    for name, pair in results.items():
        for tier, res in pair.items():
            data[f"{name}/{tier}"] = {
                "bg_p95": bg_p95(res),
                "bg_mean": bg_mean(res),
                "bg_drop_rate": bg_drop_rate(res),
                "hit_rate": res.cache_hit_rate(),
                "balance": res.balance_index(),
                "bg_completion": bg_completion(res),
                "retries": res.retry_count}
    return ExperimentReport(
        exp_id="X12",
        title="Adversarial clients vs mitigation tiers (extension)",
        table=table,
        data=data,
        comparisons=comparisons,
        notes=notes)
