"""Run validation: invariant checks over a completed scenario.

Simulation results are only as trustworthy as their bookkeeping, so this
module re-derives a scenario's headline numbers from first principles
and cross-checks them.  The benchmark harness and downstream users can
call :func:`validate_result` after any run; a violation raises
:class:`ValidationError` with the exact records involved.

Checked invariants:

* **settlement** — every request either completed with a status or was
  dropped with a reason; none left dangling;
* **accounting** — completed + dropped + errored == total;
* **causality** — end >= start for every settled request; phases are
  non-negative and sum to ≈ the response time for successful GETs;
* **placement** — served_by / dns_node are real nodes; non-redirected
  requests were served where DNS sent them;
* **conservation** — Internet bytes sent ≥ bytes of all delivered
  bodies; every node's CPU-seconds ≤ elapsed time;
* **caches** — hit + miss counts equal the file system's read count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .runner import ScenarioResult

__all__ = ["ValidationError", "ValidationReport", "validate_result"]

_REL_TOL = 0.05


class ValidationError(AssertionError):
    """An invariant violation in a completed run."""


@dataclass
class ValidationReport:
    """What was checked and what was found."""

    checks: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def note(self, check: str) -> None:
        self.checks.append(check)

    def fail(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        if self.violations:
            raise ValidationError("; ".join(self.violations))


def validate_result(result: "ScenarioResult",
                    strict: bool = True) -> ValidationReport:
    """Check every invariant; raises on violation unless ``strict=False``."""
    report = ValidationReport()
    metrics = result.metrics
    cluster = result.cluster
    n_nodes = len(cluster.nodes)

    # -- settlement & accounting --------------------------------------------
    report.note("settlement")
    errored = 0
    for rec in metrics.records:
        if rec.end is None:
            report.fail(f"request {rec.req_id} never settled")
        elif rec.dropped:
            if rec.drop_reason not in ("refused", "timeout", "dns"):
                report.fail(f"request {rec.req_id} has unknown drop reason "
                            f"{rec.drop_reason!r}")
        elif rec.status is None:
            report.fail(f"request {rec.req_id} finished without a status")
        elif not rec.ok:
            errored += 1
    report.note("accounting")
    if metrics.completed + metrics.dropped + errored != metrics.total:
        report.fail(
            f"accounting mismatch: {metrics.completed} ok + "
            f"{metrics.dropped} dropped + {errored} errors != "
            f"{metrics.total} total")

    # -- causality ---------------------------------------------------------------
    report.note("causality")
    for rec in metrics.records:
        if rec.end is not None and rec.end < rec.start - 1e-9:
            report.fail(f"request {rec.req_id} ends before it starts")
        for phase, duration in rec.phases.items():
            if duration < -1e-12:
                report.fail(f"request {rec.req_id} phase {phase} negative")
        if rec.ok and rec.phases and rec.end is not None:
            total_phases = sum(rec.phases.values())
            rt = rec.response_time
            if rt > 1e-9 and abs(total_phases - rt) > _REL_TOL * rt:
                report.fail(
                    f"request {rec.req_id} phases sum {total_phases:.4f} != "
                    f"response time {rt:.4f}")

    # -- placement -----------------------------------------------------------------
    report.note("placement")
    for rec in metrics.records:
        if rec.dns_node is not None and not 0 <= rec.dns_node < n_nodes:
            report.fail(f"request {rec.req_id} dns_node {rec.dns_node} "
                        f"out of range")
        if rec.ok:
            if rec.served_by is None or not 0 <= rec.served_by < n_nodes:
                report.fail(f"request {rec.req_id} served_by invalid")
            elif not rec.redirected and rec.served_by != rec.dns_node:
                report.fail(
                    f"request {rec.req_id} moved ({rec.dns_node} -> "
                    f"{rec.served_by}) without being marked redirected")

    # -- conservation --------------------------------------------------------------
    report.note("conservation")
    delivered = sum(rec.size for rec in metrics.records if rec.ok)
    if cluster.internet.bytes_sent + 1e-6 < delivered:
        report.fail(
            f"internet carried {cluster.internet.bytes_sent:.0f} B but "
            f"{delivered:.0f} B of bodies were delivered")
    elapsed = cluster.sim.now
    for node in cluster.nodes:
        busy = sum(node.cpu_seconds_by_category().values())
        if busy > elapsed * 1.001 + 1e-9:
            report.fail(f"{node.name} consumed {busy:.2f}s CPU in "
                        f"{elapsed:.2f}s of simulated time")

    # -- caches ---------------------------------------------------------------------
    report.note("caches")
    lookups = sum(n.cache.hits + n.cache.misses for n in cluster.nodes)
    reads = cluster.fs.local_reads + cluster.fs.remote_reads
    if lookups < reads:
        report.fail(f"cache lookups ({lookups}) fewer than file reads "
                    f"({reads})")

    if strict:
        report.raise_if_failed()
    return report
