"""Table 1 — maximum requests/second, short burst vs sustained.

"The maximum rps is determined by fixing the average file size and
increasing the rps until requests start to fail."  Four cells per
testbed: {1 KB, 1.5 MB} × {30 s short period, 120 s sustained}, for a
single-node server and the full SWEB configuration.

Shape expectations: multi-node ≫ single node; short-period max >
sustained max (short bursts can be queued); the NOW collapses on 1.5 MB
files (Ethernet limit, paper: 11 rps short / 1 rps sustained); the Meiko
sustains ~16 rps on 1.5 MB files (analytic 17.3–17.8).
"""

from __future__ import annotations

from ..cluster import ClusterSpec, meiko_cs2, sun_now
from ..sim import RandomStreams
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .paper_data import TABLE1
from .runner import Scenario, find_max_rps
from .tables import ComparisonRow, render_table

__all__ = ["run", "max_rps_cell"]

SIZES = {"1K": 1e3, "1.5M": 1.5e6}


def max_rps_cell(spec: ClusterSpec, size: float, duration: float,
                 policy: str = "sweb", n_files: int = 120, seed: int = 1,
                 cap: int = 128) -> int:
    """One Table 1 cell: the max rps before requests start to fail."""

    def factory(rps: int) -> Scenario:
        corpus = uniform_corpus(n_files, size, spec.num_nodes)
        sampler = uniform_sampler(corpus, RandomStreams(seed=42))
        workload = burst_workload(rps, duration, sampler)
        return Scenario(name=f"t1-{spec.name}-{int(size)}B-{rps}rps",
                        spec=spec, corpus=corpus, workload=workload,
                        policy=policy, seed=seed)

    best, _results = find_max_rps(factory, cap=cap)
    return best


def run(fast: bool = True) -> ExperimentReport:
    """Regenerate Table 1 (scaled durations when ``fast``)."""
    short = 10.0 if fast else 30.0
    sustained = 40.0 if fast else 120.0
    cap = 96 if fast else 160
    testbeds = {
        "meiko": (meiko_cs2(6), meiko_cs2(1)),
        "now": (sun_now(4), sun_now(1)),
    }

    rows = []
    data: dict[str, dict] = {}
    for bed, (multi, single) in testbeds.items():
        for size_label, size in SIZES.items():
            cells = {}
            for dur_label, dur in (("short", short), ("sustained", sustained)):
                cells[("single", dur_label)] = max_rps_cell(
                    single, size, dur, policy="round-robin", cap=cap)
                cells[("sweb", dur_label)] = max_rps_cell(
                    multi, size, dur, cap=cap)
            rows.append([bed, size_label,
                         cells[("single", "short")], cells[("sweb", "short")],
                         cells[("single", "sustained")],
                         cells[("sweb", "sustained")]])
            data[f"{bed}/{size_label}"] = {f"{s}/{d}": v
                                           for (s, d), v in cells.items()}

    table = render_table(
        headers=["testbed", "file size", "single 30s", "SWEB 30s",
                 "single 120s", "SWEB 120s"],
        rows=rows,
        title="Table 1 — maximum rps (burst vs sustained)",
        floatfmt=".0f")

    meiko_15m = data["meiko/1.5M"]
    now_15m = data["now/1.5M"]
    comparisons = [
        ComparisonRow(
            "Meiko 1.5M sustained (SWEB)",
            TABLE1[("meiko", "1.5M", "sustained", "sweb")].value,
            meiko_15m["sweb/sustained"],
            "within ~2x of 16 rps",
            ok=8 <= meiko_15m["sweb/sustained"] <= 32 or fast),
        ComparisonRow(
            "multi-node >> single node (1.5M)",
            "speedup > 2x",
            f"{meiko_15m['sweb/sustained']} vs {meiko_15m['single/sustained']}",
            "SWEB sustained > 2x single",
            ok=meiko_15m["sweb/sustained"] >
               2 * max(1, meiko_15m["single/sustained"])),
        ComparisonRow(
            "short-period max >= sustained max",
            "queueing effect",
            f"{meiko_15m['sweb/short']} vs {meiko_15m['sweb/sustained']}",
            "30s burst max >= 120s max",
            ok=meiko_15m["sweb/short"] >= meiko_15m["sweb/sustained"]),
        ComparisonRow(
            "NOW 1.5M sustained collapses",
            TABLE1[("now", "1.5M", "sustained", "sweb")].value,
            now_15m["sweb/sustained"],
            "~1 rps (Ethernet/disk limit)",
            ok=now_15m["sweb/sustained"] <= 4),
        ComparisonRow(
            "single-node 1K ~ NCSA httpd",
            "5-10 rps",
            data["meiko/1K"]["single/sustained"],
            "same order of magnitude",
            ok=3 <= data["meiko/1K"]["single/sustained"] <= 40),
    ]
    if fast:
        notes = ("Durations scaled down in fast mode; absolute rps shifts "
                 "with duration but every ordering above is "
                 "duration-invariant.")
    else:
        notes = ("Paper-scale durations (30 s bursts / 120 s sustained), "
                 "matching Table 1's test procedure.")
    return ExperimentReport(exp_id="T1", title="Maximum rps (Table 1)",
                            table=table, data=data,
                            comparisons=comparisons, notes=notes)
