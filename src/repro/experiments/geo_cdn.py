"""X13 geo CDN — WAN latency × replica budget across three sites.

The geo tier (docs/GEO.md) puts an origin Meiko plus two edge clusters
behind WAN links, with heat-proportional replica placement pushing hot
files toward the edges under a per-site RAM budget, and geo-affinity DNS
pinning each client population to its nearest site.  This experiment
sweeps the two axes that govern the CDN trade-off of arXiv:1610.04513
and checks three shapes:

1. **budget** — edge hit rate is monotone non-decreasing in the per-site
   replica budget (zero budget = every edge read pays the WAN, the
   anchor of the sweep);
2. **latency** — with the budget forced to zero (pure cache-miss
   traffic) the edge populations' p95 is monotone non-decreasing in WAN
   latency: the link cost is real and nothing else absorbs it;
3. **partition** — cutting one edge's POP under graceful mode degrades
   *only that site's* population (it spills to the next-nearest site and
   pays the extra WAN hop) while the other populations hold within
   slack, and nothing is lost; the paper-faithful resolver instead loses
   the partitioned population's arrivals outright.
"""

from __future__ import annotations

from ..geo import GeoResult, GeoScenario, geo3, run_geo
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run", "run_budget", "run_latency", "run_partition",
           "BUDGETS_MB", "LATENCY_SCALES"]

MB = 1e6

#: per-edge replica budget sweep (MB of cache reserved for geo copies)
BUDGETS_MB = (0.0, 1.0, 16.0)
#: multipliers on the geo3 reference WAN latencies (30 ms / 80 ms)
LATENCY_SCALES = (1.0, 2.0, 4.0)

#: how much the non-partitioned populations' p95 may move before the
#: blast radius counts as leaking beyond the partitioned site (spilled
#: traffic legitimately queues at the absorbing site)
BYSTANDER_SLACK = 1.5


def _scenario(fast: bool, **overrides) -> GeoScenario:
    base = dict(rps=30.0 if fast else 40.0,
                duration=8.0 if fast else 15.0,
                seed=7)
    base.update(overrides)
    return GeoScenario(**base)


def run_budget(fast: bool = True) -> dict[float, GeoResult]:
    """Edge hit rate as the per-site budget grows (default latencies)."""
    return {mb: run_geo(_scenario(fast, name=f"geo-budget-{mb:g}MB",
                                  edge_budget_bytes=mb * MB))
            for mb in BUDGETS_MB}


def run_latency(fast: bool = True) -> dict[float, GeoResult]:
    """Edge p95 as WAN latency scales, with caching disabled (budget 0)."""
    out = {}
    for scale in LATENCY_SCALES:
        spec = geo3(west_latency=30e-3 * scale, east_latency=80e-3 * scale)
        out[scale] = run_geo(_scenario(fast, name=f"geo-lat-{scale:g}x",
                                       spec=spec, edge_budget_bytes=0.0))
    return out


def run_partition(fast: bool = True,
                  graceful: bool = True) -> tuple[GeoResult, GeoResult]:
    """(healthy, partitioned) pair: east's POP dark for half the run."""
    duration = 8.0 if fast else 15.0
    window = (duration * 0.25, duration * 0.75)
    healthy = run_geo(_scenario(fast, name="geo-healthy", duration=duration,
                                graceful=graceful))
    dark = run_geo(_scenario(fast, name="geo-partition", duration=duration,
                             graceful=graceful, partition_site="east",
                             partition_window=window))
    return healthy, dark


def _edge_p95(result: GeoResult) -> float:
    """Mean p95 over the two edge populations."""
    edges = [result.population(s).p95
             for s in result.scenario.resolved_spec().edge_names]
    return sum(edges) / len(edges)


def run(fast: bool = True) -> ExperimentReport:
    budget_runs = run_budget(fast)
    latency_runs = run_latency(fast)
    healthy, dark = run_partition(fast, graceful=True)
    _, dark_plain = run_partition(fast, graceful=False)

    rows = []
    for mb, res in budget_runs.items():
        rows.append([f"budget {mb:g} MB", res.edge_hit_rate * 100.0,
                     _edge_p95(res), float(res.wan_reads),
                     float(res.placements)])
    for scale, res in latency_runs.items():
        rows.append([f"latency {scale:g}x (no cache)",
                     res.edge_hit_rate * 100.0, _edge_p95(res),
                     float(res.wan_reads), float(res.placements)])
    table = render_table(
        headers=["config", "edge hit (%)", "edge p95 (s)", "wan reads",
                 "placements"],
        rows=rows,
        title=("Geo CDN — geo3 testbed (4-node origin + two 2-node "
               "edges), Zipf head homed at the origin"))

    hit_rates = [budget_runs[mb].edge_hit_rate for mb in BUDGETS_MB]
    hits_monotone = (all(a <= b for a, b in zip(hit_rates, hit_rates[1:]))
                     and hit_rates[-1] > hit_rates[0])
    p95s = [_edge_p95(latency_runs[s]) for s in LATENCY_SCALES]
    p95_monotone = all(a < b for a, b in zip(p95s, p95s[1:]))

    east_h, east_d = healthy.population("east"), dark.population("east")
    bystanders_ok = all(
        dark.population(s).p95 <= BYSTANDER_SLACK * healthy.population(s).p95
        for s in ("origin", "west"))
    partition_ok = (east_d.p95 > east_h.p95
                    and east_d.lost == 0 and east_d.dropped == 0
                    and dark.partition_spills > 0
                    and bystanders_ok)

    comparisons = [
        ComparisonRow(
            "edge hit rate is monotone in the replica budget",
            "(not in paper — our extension)",
            " -> ".join(f"{r:.0%}" for r in hit_rates),
            "non-decreasing over the budget sweep, strict at the top",
            ok=hits_monotone),
        ComparisonRow(
            "cache-miss p95 is monotone in WAN latency",
            "(not in paper — our extension)",
            " -> ".join(f"{p:.3f}s" for p in p95s),
            "edge p95 strictly increasing over the latency sweep",
            ok=p95_monotone),
        ComparisonRow(
            "a dark edge POP degrades only its own population",
            "(not in paper — our extension)",
            f"east p95 {east_h.p95:.3f}s -> {east_d.p95:.3f}s, "
            f"{dark.partition_spills} spills, 0 lost; bystanders within "
            f"{BYSTANDER_SLACK:g}x",
            "graceful spill completes everything; others hold",
            ok=partition_ok),
    ]
    plain_east = dark_plain.population("east")
    notes = (f"The graceful resolver re-homes a dark POP's arrivals to the "
             f"next-nearest site ({dark.partition_spills} spills, zero "
             f"loss); the paper-faithful resolver instead lost "
             f"{plain_east.lost} of east's {plain_east.offered} arrivals "
             f"({plain_east.loss_rate:.0%}).  The budget sweep moved "
             f"{budget_runs[BUDGETS_MB[-1]].placements} daemon placements "
             f"plus demand pull-through over the WAN to lift the edge hit "
             f"rate from {hit_rates[0]:.0%} to {hit_rates[-1]:.0%} — RAM "
             f"spent at the edge buys WAN bytes back, the replica-placement "
             f"trade of arXiv:1009.4563.")
    return ExperimentReport(
        exp_id="X13",
        title="Geo CDN — WAN latency x replica budget (extension)",
        table=table,
        data={
            "budget_hit_rates": {f"{mb:g}": budget_runs[mb].edge_hit_rate
                                 for mb in BUDGETS_MB},
            "latency_p95s": {f"{s:g}": _edge_p95(latency_runs[s])
                             for s in LATENCY_SCALES},
            "partition": {"east_p95_healthy": east_h.p95,
                          "east_p95_dark": east_d.p95,
                          "spills": dark.partition_spills,
                          "plain_lost": plain_east.lost},
        },
        comparisons=comparisons, notes=notes)
