"""Extension X6 — parallel retrieval from inexpensive disks.

§1: "using the idle cycles of those processing units and retrieving
files in parallel from inexpensive disks can significantly improve the
scalability of the server."  The paper never isolates that claim; we do:
the same large-file corpus is placed whole-file vs striped across all
six disks, and we measure both the single-fetch latency (cold cache) and
the sustained throughput under a burst that defeats the page caches.
"""

from __future__ import annotations

from ..core import SWEBCluster
from ..cluster import meiko_cs2
from ..sim import AllOf, RandomStreams
from ..web import Client
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run"]

FILE_SIZE = 6e6   # a full-resolution aerial photograph
N_FILES = 40      # working set 240 MB >> 6 x 32 MB of RAM


def _build(striped: bool, stripe_width: int = 6) -> SWEBCluster:
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=1)
    for i in range(N_FILES):
        path = f"/photos/p{i:03d}.tif"
        if striped:
            stripes = [(i + k) % 6 for k in range(stripe_width)]
            cluster.add_striped_file(path, FILE_SIZE, stripes=stripes)
        else:
            cluster.add_file(path, FILE_SIZE, home=i % 6)
    return cluster


def _cold_fetch_latency(striped: bool) -> float:
    cluster = _build(striped)
    rec = cluster.run(until=cluster.fetch("/photos/p000.tif"))
    assert rec.ok
    return rec.response_time


def _burst(striped: bool, rps: int, duration: float):
    cluster = _build(striped)
    rng = RandomStreams(seed=42)
    client = Client(cluster, timeout=240.0)
    sim = cluster.sim

    def driver():
        procs = []
        for second in range(int(duration)):
            if second > sim.now:
                yield sim.timeout(second - sim.now)
            for _ in range(rps):
                idx = rng.integers("pick", 0, N_FILES)
                procs.append(client.fetch(f"/photos/p{idx:03d}.tif"))
        yield AllOf(sim, procs)

    done = sim.spawn(driver(), name="driver")
    sim.run(until=done)
    return cluster


def run(fast: bool = True) -> ExperimentReport:
    duration = 10.0 if fast else 30.0
    rps = 4

    lat_whole = _cold_fetch_latency(False)
    lat_striped = _cold_fetch_latency(True)
    whole = _burst(False, rps, duration)
    striped = _burst(True, rps, duration)

    def stats(cluster):
        m = cluster.metrics
        return (m.mean_response_time(), m.drop_rate)

    rt_whole, drop_whole = stats(whole)
    rt_striped, drop_striped = stats(striped)
    rows = [
        ["whole-file placement", lat_whole, rt_whole, drop_whole * 100.0],
        ["6-way striped", lat_striped, rt_striped, drop_striped * 100.0],
    ]
    table = render_table(
        headers=["placement", "cold fetch (s)", f"burst @{rps} rps (s)",
                 "drop (%)"],
        rows=rows,
        title=f"X6 — parallel retrieval from inexpensive disks "
              f"({FILE_SIZE / 1e6:.0f} MB photos)", floatfmt=".3f")

    comparisons = [
        ComparisonRow(
            "striping cuts cold-fetch latency",
            "parallel disk retrieval (§1)",
            f"{lat_whole:.2f}s -> {lat_striped:.2f}s "
            f"({lat_whole / lat_striped:.1f}x)",
            "at least 25% faster end-to-end (disk leaves the critical "
            "path; the client send remains)",
            ok=lat_striped < 0.75 * lat_whole),
        ComparisonRow(
            "striping helps under cache-defeating load",
            "disk channel is the bottleneck",
            f"{rt_whole:.2f}s -> {rt_striped:.2f}s",
            "striped no slower",
            ok=rt_striped <= rt_whole * 1.05),
    ]
    notes = ("Working set (240 MB) exceeds aggregate RAM, so bursts hit the "
             "disks; striping turns each 6 MB read into six parallel 1 MB "
             "chunk reads across the fat-tree.")
    return ExperimentReport(exp_id="X6",
                            title="Disk striping (parallel retrieval)",
                            table=table,
                            data={"cold": {"whole": lat_whole,
                                           "striped": lat_striped},
                                  "burst": {"whole": rt_whole,
                                            "striped": rt_striped}},
                            comparisons=comparisons, notes=notes)
