"""Table 2 — response time and drop rate vs number of server nodes.

Meiko at 16 rps (both 1 KB and 1.5 MB files) for 1/2/4/6 nodes; NOW at
16 rps (1 KB) and 8 rps (1.5 MB) for 1/2/4 nodes; 30 s bursts.

Shape expectations (all stated in §4.1):

* 1 KB — no drops at any node count, response flat beyond ~2 nodes;
* 1.5 MB on the Meiko — drop rate collapses as nodes are added
  (paper: 37.3 % → 5 % → 3.5 % → 0 %) and response time improves
  substantially (superlinear, thanks to aggregate RAM);
* 1.5 MB on the NOW — the single server effectively times out; adding
  nodes brings the drop rate down.
"""

from __future__ import annotations

from ..cluster import ClusterSpec, meiko_cs2, sun_now
from ..sim import RandomStreams
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .paper_data import TABLE2
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "sweep_nodes"]


def sweep_nodes(base_spec_factory, node_counts, size: float, rps: int,
                duration: float, seed: int = 1,
                client_timeout: float = 120.0) -> dict[int, ScenarioResult]:
    """Run the same burst against 1..N-node versions of a testbed."""
    out: dict[int, ScenarioResult] = {}
    for n in node_counts:
        spec: ClusterSpec = base_spec_factory(n)
        corpus = uniform_corpus(120, size, n)
        sampler = uniform_sampler(corpus, RandomStreams(seed=42))
        workload = burst_workload(rps, duration, sampler)
        scenario = Scenario(name=f"t2-{spec.name}{n}-{int(size)}B",
                            spec=spec, corpus=corpus, workload=workload,
                            policy="sweb", seed=seed,
                            client_timeout=client_timeout)
        out[n] = run_scenario(scenario)
    return out


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    meiko_counts = (1, 2, 4, 6)
    now_counts = (1, 2, 4)

    cells = {
        ("meiko", "1K"): sweep_nodes(meiko_cs2, meiko_counts, 1e3, 16, duration),
        ("meiko", "1.5M"): sweep_nodes(meiko_cs2, meiko_counts, 1.5e6, 16, duration),
        ("now", "1K"): sweep_nodes(sun_now, now_counts, 1e3, 16, duration),
        # NOW clients must be very patient: the shared Ethernet needs
        # ~16 s of drain per offered second of 8 rps x 1.5 MB, and the
        # paper's reported times ("> 120", 94.3 s averages) show theirs
        # were.  Scale the timeout with the offered window.
        ("now", "1.5M"): sweep_nodes(sun_now, now_counts, 1.5e6, 8, duration,
                                     client_timeout=max(240.0,
                                                        18.0 * duration)),
    }

    rows = []
    data: dict[str, dict] = {}
    for (bed, size_label), sweep in cells.items():
        for n, res in sweep.items():
            rows.append([bed, size_label, n,
                         res.mean_response_time, res.drop_rate * 100.0,
                         res.cache_hit_rate() * 100.0])
            data[f"{bed}/{size_label}/{n}"] = {
                "time": res.mean_response_time,
                "drop_rate": res.drop_rate,
                "cache_hit_rate": res.cache_hit_rate(),
            }

    table = render_table(
        headers=["testbed", "file size", "#nodes", "time (s)", "drop (%)",
                 "cache hit (%)"],
        rows=rows,
        title=f"Table 2 — response time & drop rate vs #nodes "
              f"({duration:.0f}s bursts)")

    m15 = cells[("meiko", "1.5M")]
    m1k = cells[("meiko", "1K")]
    n15 = cells[("now", "1.5M")]
    comparisons = [
        ComparisonRow(
            "Meiko 1.5M drop rate falls with nodes",
            "37.3% -> 5% -> 3.5% -> 0%",
            " -> ".join(f"{m15[n].drop_rate:.0%}" for n in meiko_counts),
            "monotone non-increasing, 1-node >> 6-node",
            ok=(m15[1].drop_rate > 0.10 and m15[6].drop_rate <= 0.02
                and m15[1].drop_rate >= m15[6].drop_rate)),
        ComparisonRow(
            "Meiko 1.5M time improves with nodes",
            "substantially better",
            f"{m15[1].mean_response_time:.1f}s -> {m15[6].mean_response_time:.1f}s",
            "6-node much faster than 1-node",
            ok=m15[6].mean_response_time < 0.5 * m15[1].mean_response_time),
        ComparisonRow(
            "1K files never stress multi-node",
            "0% drops everywhere",
            f"1-node {m1k[1].drop_rate:.1%}, 2+ nodes "
            f"{max(m1k[n].drop_rate for n in meiko_counts[1:]):.1%}",
            "0% beyond 1 node, small at 1 node",
            ok=(all(m1k[n].drop_rate == 0.0 for n in meiko_counts[1:])
                and m1k[1].drop_rate < 0.15)),
        ComparisonRow(
            "1K response flat beyond 2 nodes",
            "constant for 2+ nodes",
            f"{m1k[2].mean_response_time:.3f}s vs {m1k[6].mean_response_time:.3f}s",
            "within 2x of each other",
            ok=m1k[6].mean_response_time < 2 * m1k[2].mean_response_time),
        ComparisonRow(
            "NOW 1.5M: single server worst",
            "single timed out; 20.5% @2; 0% @4",
            " -> ".join(f"{n15[n].drop_rate:.0%}" for n in now_counts),
            "drop rate falls with nodes",
            ok=n15[1].drop_rate >= n15[4].drop_rate),
        ComparisonRow(
            "superlinear speedup evidence (aggregate RAM)",
            "multi-node fits working set in memory",
            f"hit rate {m15[1].cache_hit_rate():.0%} @1 node vs "
            f"{m15[6].cache_hit_rate():.0%} @6 nodes",
            "cache hit rate grows with nodes",
            ok=m15[6].cache_hit_rate() > m15[1].cache_hit_rate()),
    ]
    notes = ("Paper drop-rate magnitudes depend on listen-queue depth and "
             "client patience; the monotone collapse with node count is the "
             "reproduced result.")
    return ExperimentReport(exp_id="T2",
                            title="Response time & drop rate vs #nodes (Table 2)",
                            table=table, data=data, comparisons=comparisons,
                            notes=notes)
