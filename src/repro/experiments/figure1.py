"""Figure 1 — a simple HTTP transaction.

The figure is a sequence diagram: client C resolves the server name via
its local DNS, opens a TCP connection, sends request r, receives
response f.  We regenerate it as an event trace of one real request
through the simulator and render the sequence.
"""

from __future__ import annotations

from ..core import SWEBCluster
from ..cluster import meiko_cs2
from ..sim import Trace
from ..web import AuthoritativeDNS, Client, LocalResolver, RUTGERS_CLIENT
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run", "transaction_trace"]


def transaction_trace(path: str = "/index.html", size: float = 8e3,
                      seed: int = 1) -> tuple[Trace, object]:
    """One request through the *full* Figure 1 chain — client, local DNS,
    authoritative DNS on the destination side, then HTTP — all traced."""
    trace = Trace()
    cluster = SWEBCluster(meiko_cs2(2), policy="sweb", seed=seed, trace=trace)
    cluster.add_file(path, size, home=0)
    authoritative = AuthoritativeDNS(cluster.sim,
                                     [n.id for n in cluster.nodes], ttl=30.0)
    resolver = LocalResolver(cluster.sim, authoritative,
                             wan=RUTGERS_CLIENT.wan,
                             domain=RUTGERS_CLIENT.domain, trace=trace)
    client = Client(cluster, profile=RUTGERS_CLIENT, resolver=resolver)
    proc = client.fetch(path)
    record = cluster.run(until=proc)
    return trace, record


def run(fast: bool = True) -> ExperimentReport:
    trace, record = transaction_trace()
    events = [rec for rec in trace if rec.category in ("dns", "http")]
    rows = [[f"{rec.time * 1e3:9.3f} ms", rec.category, rec.actor, rec.action,
             " ".join(f"{k}={v}" for k, v in sorted(rec.detail.items()))]
            for rec in events]
    table = render_table(
        headers=["time", "layer", "actor", "event", "detail"],
        rows=rows,
        title="Figure 1 — the HTTP transaction sequence (traced, "
              "east-coast client)")

    actions = [rec.action for rec in events]
    comparisons = [
        ComparisonRow(
            "two-level DNS resolution",
            "client -> local DNS -> destination DNS",
            " -> ".join(a for a in actions
                        if a in ("query_authoritative",
                                 "authoritative_answer", "cache_hit")),
            "local resolver consulted the destination side",
            ok=("query_authoritative" in actions
                and "authoritative_answer" in actions)),
        ComparisonRow(
            "sequence order",
            "DNS -> connect/request -> response",
            " -> ".join(actions),
            "resolution precedes completion",
            ok=("authoritative_answer" in actions and "complete" in actions
                and actions.index("authoritative_answer")
                < actions.index("complete"))),
        ComparisonRow(
            "request completed",
            "200 OK",
            f"status={record.status}",
            "response code 200",
            ok=record.status == 200),
    ]
    notes = ("The Rutgers client's local resolver did not know the SWEB "
             "name, queried the authoritative server at the destination "
             "side (one coast-to-coast round trip), then the browser "
             "connected and received the full response — §2's transaction, "
             "end to end.")
    return ExperimentReport(exp_id="F1", title="HTTP transaction (Figure 1)",
                            table=table,
                            data={"actions": actions,
                                  "response_time": record.response_time},
                            comparisons=comparisons, notes=notes)
