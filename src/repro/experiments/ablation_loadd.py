"""Ablation X2 — load-broadcast period and Δ-inflation sweeps.

DESIGN.md §5: the paper fixes the loadd period at 2–3 s and Δ at 30 %
with one sentence of justification each.  We sweep both:

* staler load information should degrade scheduling quality;
* Δ = 0 re-creates the "unsynchronized overloading" herd of [SHK95]
  (every broker routes to the same believed-idle node).
"""

from __future__ import annotations

from dataclasses import replace

from ..core import CostParameters
from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run"]


def _cell(params: CostParameters, rps: int, duration: float,
          label: str) -> ScenarioResult:
    corpus = bimodal_corpus(150, 6, large_frac=0.5, seed=9)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    scenario = Scenario(name=f"x2-{label}", spec=meiko_cs2(6), corpus=corpus,
                        workload=workload, policy="sweb", seed=1,
                        params=params, dns_ttl=300.0, hosts_per_profile=4)
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    rps = 25
    periods = (0.5, 2.5, 10.0) if fast else (0.5, 2.5, 10.0, 30.0)
    deltas = (0.0, 0.30, 1.0)

    rows = []
    period_results: dict[float, ScenarioResult] = {}
    for period in periods:
        params = replace(CostParameters(), loadd_period=period,
                         staleness_timeout=max(8.0, 3.2 * period))
        res = _cell(params, rps, duration, f"period{period}")
        period_results[period] = res
        rows.append([f"period = {period:g}s (delta 0.3)",
                     res.mean_response_time, res.drop_rate * 100.0,
                     res.redirection_rate * 100.0])
    delta_results: dict[float, ScenarioResult] = {}
    for delta in deltas:
        params = replace(CostParameters(), delta=delta)
        res = _cell(params, rps, duration, f"delta{delta}")
        delta_results[delta] = res
        rows.append([f"delta = {delta:g} (period 2.5s)",
                     res.mean_response_time, res.drop_rate * 100.0,
                     res.redirection_rate * 100.0])

    table = render_table(
        headers=["variant", "time (s)", "drop (%)", "redirected (%)"],
        rows=rows,
        title=f"Ablation X2 — loadd period & Δ-inflation, {rps} rps "
              f"non-uniform, Meiko-6", floatfmt=".3f")

    fresh = period_results[min(periods)].mean_response_time
    stale = period_results[max(periods)].mean_response_time
    comparisons = [
        ComparisonRow(
            "staleness costs performance",
            "2-3s period chosen as cheap-but-fresh",
            f"{min(periods):g}s: {fresh:.3f}s vs {max(periods):g}s: "
            f"{stale:.3f}s",
            "fresher info never worse (within 10%)",
            ok=fresh <= 1.10 * stale),
        ComparisonRow(
            "delta=0 herds onto believed-idle nodes",
            "Δ=30% found effective [SHK95]",
            f"Δ=0: {delta_results[0.0].redirection_rate:.0%} redirected vs "
            f"Δ=0.3: {delta_results[0.30].redirection_rate:.0%}",
            "Δ=0 redirects at least as much",
            ok=delta_results[0.0].redirection_rate
               >= delta_results[0.30].redirection_rate),
        ComparisonRow(
            "paper's operating point is sane",
            "period 2.5s, Δ=0.3",
            f"{period_results[2.5].mean_response_time:.3f}s",
            "within 20% of the best swept variant",
            ok=period_results[2.5].mean_response_time <= 1.20 * min(
                [r.mean_response_time for r in period_results.values()]
                + [r.mean_response_time for r in delta_results.values()])),
    ]
    notes = ("staleness_timeout scales with the period so long periods do "
             "not spuriously mark nodes unavailable.")
    return ExperimentReport(exp_id="X2", title="loadd period & Δ ablation",
                            table=table,
                            data={"periods": {p: r.mean_response_time
                                              for p, r in period_results.items()},
                                  "deltas": {d: r.mean_response_time
                                             for d, r in delta_results.items()}},
                            comparisons=comparisons, notes=notes)
