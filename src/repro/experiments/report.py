"""EXPERIMENTS.md generation.

``sweb-repro report -o EXPERIMENTS.md [--full]`` regenerates every
artifact and writes the paper-vs-measured report, so the document in the
repository is a build product, not hand-maintained prose.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Union

from . import ALL_EXPERIMENTS, run_experiment
from .base import ExperimentReport

__all__ = ["generate_report", "PREAMBLE"]

PREAMBLE = """# EXPERIMENTS — paper vs measured

Every table and figure of *SWEB: Towards a Scalable World Wide Web Server
on Multicomputers* (IPPS 1996), regenerated on the simulated testbeds.
This file is produced by `sweb-repro report -o EXPERIMENTS.md`{mode_note};
`pytest benchmarks/ --benchmark-only` regenerates and checks the same
artifacts and archives them under `benchmarks/artifacts/`.

**Fidelity policy.** The substrate is a discrete-event simulator
parameterised from the paper, not the authors' Meiko CS-2, so absolute
numbers are not expected to match.  What is checked — the `shape check`
column of every comparison table — is the paper's *qualitative* claims:
who wins, by roughly what factor, and where the crossovers fall.

Several of the paper's own numbers are internally inconsistent (noted
inline where relevant): §4.3's "4.4 % of CPU for parsing" conflicts with
Table 5's 70 ms preprocessing at 2.7 rps/node (~19 % of a 40 MHz CPU),
and its "<0.01 % for scheduling decisions" conflicts with the quoted
1–4 ms direct cost per request.  We calibrate to Table 5's per-request
costs and reproduce the *ordering* claims.

Portions of the available paper text are OCR-damaged;
`repro/experiments/paper_data.py` records every reported value with an
`exact`/`approx`/`garbled` legibility flag, and the comparisons below
only bind to the legible ones (plus the prose claims about the garbled
table bodies).

---
"""


def generate_report(fast: bool = True,
                    output: Optional[Union[str, Path]] = None,
                    experiment_ids: Optional[list[str]] = None,
                    ) -> tuple[str, bool]:
    """Run the registry and render the report.

    Returns ``(markdown_text, all_shapes_hold)``.
    """
    ids = experiment_ids or list(ALL_EXPERIMENTS)
    sections: list[tuple[ExperimentReport, float]] = []
    for exp_id in ids:
        start = time.time()
        report = run_experiment(exp_id, fast=fast)
        sections.append((report, time.time() - start))

    all_hold = all(report.shape_holds for report, _ in sections)
    held = sum(1 for report, _ in sections if report.shape_holds)
    mode_note = (" (fast mode — scaled-down durations)" if fast
                 else " `--full` (paper-scale durations)")
    parts = [PREAMBLE.format(mode_note=mode_note)]
    parts.append(f"**Status: {held}/{len(sections)} artifacts pass all "
                 f"shape checks.**\n\n---\n")
    for report, wall in sections:
        parts.append(f"## {report.exp_id} — {report.title}\n")
        parts.append("```text")
        # Strip the render()'s own header; the markdown heading carries it.
        body = report.render().split("\n", 2)[-1].strip("\n")
        parts.append(body)
        parts.append("```")
        verdict = "all shape checks hold" if report.shape_holds \
            else "SHAPE CHECKS FAILED"
        parts.append(f"\n*(regenerated in {wall:.1f}s; {verdict})*\n")
    text = "\n".join(parts)
    if output is not None:
        Path(output).write_text(text)
    return text, all_hold
