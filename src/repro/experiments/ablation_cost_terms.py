"""Ablation X1 — knocking out cost-model terms one at a time.

DESIGN.md §5: is the *multi-faceted* part of the scheduler actually
earning its keep?  We rerun the heavy Table 3 cell with individual terms
of t_s disabled, plus the single-faceted CPU-only policy the paper
argues against ([SHK95]/[GDI93] style).
"""

from __future__ import annotations

from dataclasses import replace

from ..core import CostParameters
from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "VARIANTS"]

VARIANTS = {
    "sweb (full)": {},
    "no t_data": {"use_data_term": False},
    "no t_cpu": {"use_cpu_term": False},
    "no t_redirection": {"use_redirection_term": False},
}


def _cell(policy: str, params: CostParameters, rps: int,
          duration: float) -> ScenarioResult:
    corpus = bimodal_corpus(150, 6, large_frac=0.5, seed=9)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    scenario = Scenario(name=f"x1-{policy}", spec=meiko_cs2(6),
                        corpus=corpus, workload=workload, policy=policy,
                        seed=1, params=params, dns_ttl=300.0,
                        hosts_per_profile=4)
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    rps = 25

    results: dict[str, ScenarioResult] = {}
    for label, knockouts in VARIANTS.items():
        params = replace(CostParameters(), **knockouts)
        results[label] = _cell("sweb", params, rps, duration)
    results["cpu-only (single-faceted)"] = _cell(
        "cpu-only", CostParameters(), rps, duration)
    results["round-robin"] = _cell("round-robin", CostParameters(), rps,
                                   duration)

    rows = [[label, res.mean_response_time, res.drop_rate * 100.0,
             res.redirection_rate * 100.0]
            for label, res in results.items()]
    table = render_table(
        headers=["variant", "time (s)", "drop (%)", "redirected (%)"],
        rows=rows,
        title=f"Ablation X1 — cost-model terms, {rps} rps non-uniform, "
              f"Meiko-6", floatfmt=".3f")

    full = results["sweb (full)"].mean_response_time
    comparisons = [
        ComparisonRow(
            "full model is competitive",
            "multi-faceted wins (§3.2)",
            f"{full:.3f}s (best variant "
            f"{min(r.mean_response_time for r in results.values()):.3f}s)",
            "full within 15% of the best variant",
            ok=full < 1.15 * min(r.mean_response_time
                                 for r in results.values())),
        ComparisonRow(
            "t_redirection term never pays to drop",
            "the margin guards against churn",
            f"no-term: {results['no t_redirection'].mean_response_time:.3f}s/"
            f"{results['no t_redirection'].redirection_rate:.0%} redirected "
            f"vs full {results['sweb (full)'].mean_response_time:.3f}s/"
            f"{results['sweb (full)'].redirection_rate:.0%}",
            "dropping the term never improves response time",
            ok=results["no t_redirection"].mean_response_time
               >= 0.95 * results["sweb (full)"].mean_response_time),
        ComparisonRow(
            "multi-faceted beats single-faceted",
            "CPU load alone is insufficient (§1)",
            f"full {full:.3f}s vs cpu-only "
            f"{results['cpu-only (single-faceted)'].mean_response_time:.3f}s",
            "full no worse than cpu-only",
            ok=full <= 1.05 * results["cpu-only (single-faceted)"]
               .mean_response_time),
    ]
    notes = "Same workload and seed for every variant; only t_s changes."
    return ExperimentReport(exp_id="X1", title="Cost-term ablation",
                            table=table,
                            data={l: r.mean_response_time
                                  for l, r in results.items()},
                            comparisons=comparisons, notes=notes)
