"""Experiment harness: one module per table/figure of the paper.

Registry:

====  =============================================  =================
id    artifact                                       module
====  =============================================  =================
T1    Table 1 — maximum rps                          table1
T2    Table 2 — response/drop vs #nodes              table2
T3    Table 3 — non-uniform sizes, policy compare    table3
T4    Table 4 — uniform 1.5 MB on NOW Ethernet       table4
T5    Table 5 — cost distribution                    table5
F1    Figure 1 — HTTP transaction                    figure1
F2    Figure 2 — two-stage assignment architecture   figure2
F3    Figure 3 — scheduler functional modules        figure3
S1    §3.3 analysis vs simulation                    analysis_vs_sim
S2    §4.2 skewed hot-file test                      skewed
S3    §4.3 server-side overhead                      overhead
X1    ablation — cost-model terms                    ablation_cost_terms
X2    ablation — loadd period and Δ                  ablation_loadd
X3    extension — membership churn                   churn
X4    extension — forwarding vs redirection          forwarding
X5    extension — adaptive oracle                    adaptive
X6    extension — disk striping                      striping
X7    extension — centralized dispatcher             centralized
X8    extension — burst/queue dynamics               dynamics
X9    extension — faults & graceful degradation      faults
X10   extension — cooperative cache & replication    cache_coop
X11   extension — scheduler tournament (het zoo)     tournament
X12   extension — adversarial clients vs mitigations adversaries
X13   extension — geo CDN: WAN latency x budget      geo_cdn
====  =============================================  =================
"""

from . import (
    ablation_cost_terms,
    ablation_loadd,
    adaptive,
    adversaries,
    analysis_vs_sim,
    cache_coop,
    centralized,
    churn,
    dynamics,
    faults,
    figure1,
    figure2,
    figure3,
    forwarding,
    geo_cdn,
    overhead,
    skewed,
    striping,
    table1,
    table2,
    table3,
    table4,
    table5,
    tournament,
)
from .base import ExperimentReport
from .validate import ValidationError, ValidationReport, validate_result
from .runner import Scenario, ScenarioResult, find_max_rps, run_scenario
from .shard import (
    CellResult,
    FluidCell,
    ScenarioCell,
    ShardReport,
    grid_fingerprint,
    make_fluid_grid,
    run_cell,
    run_grid,
    scenario_record_lines,
)
from .tables import ComparisonRow, render_comparison, render_table

#: id -> module with a run(fast=True) -> ExperimentReport entry point
ALL_EXPERIMENTS = {
    "T1": table1,
    "T2": table2,
    "T3": table3,
    "T4": table4,
    "T5": table5,
    "F1": figure1,
    "F2": figure2,
    "F3": figure3,
    "S1": analysis_vs_sim,
    "S2": skewed,
    "S3": overhead,
    "X1": ablation_cost_terms,
    "X2": ablation_loadd,
    "X3": churn,
    "X4": forwarding,
    "X5": adaptive,
    "X6": striping,
    "X7": centralized,
    "X8": dynamics,
    "X9": faults,
    "X10": cache_coop,
    "X11": tournament,
    "X12": adversaries,
    "X13": geo_cdn,
}


def run_experiment(exp_id: str, fast: bool = True) -> ExperimentReport:
    """Run one experiment by id (see ALL_EXPERIMENTS)."""
    module = ALL_EXPERIMENTS.get(exp_id.upper())
    if module is None:
        raise KeyError(f"unknown experiment {exp_id!r}; "
                       f"choose from {sorted(ALL_EXPERIMENTS)}")
    return module.run(fast=fast)


__all__ = [
    "ALL_EXPERIMENTS",
    "CellResult",
    "ComparisonRow",
    "ExperimentReport",
    "FluidCell",
    "Scenario",
    "ScenarioCell",
    "ScenarioResult",
    "ShardReport",
    "ValidationError",
    "ValidationReport",
    "find_max_rps",
    "grid_fingerprint",
    "make_fluid_grid",
    "render_comparison",
    "render_table",
    "run_cell",
    "run_experiment",
    "run_grid",
    "run_scenario",
    "scenario_record_lines",
    "validate_result",
]
