"""X10 cooperative cache — directory + replication vs plain SWEB.

§4.1 credits SWEB's superlinear speedup to aggregate cluster RAM, but
plain SWEB exploits it only by accident: the cost model knows disk and
NFS locality, not RAM residency, and demand fills populate *only the
home node's* cache.  This experiment builds the adversarial case — a
Zipf hot set, every hot file homed on node 0, together larger than one
node's RAM but far smaller than the cluster's — and compares four
configurations:

* **plain** — paper-faithful SWEB: node 0's cache thrashes and its disk
  serves the overflow;
* **directory** — brokers consult the piggybacked cache directory when
  pricing ``t_data`` (LARD-style locality-aware redirection);
* **dir+repl** — the ReplicationDaemon additionally copies hot files
  into underloaded peers' caches, which the directory then advertises,
  so hot requests fan out to RAM across the whole cluster;
* **knockout** — the ablation control: the directory is maintained
  (same messages, same events) but ``use_cache_term=False`` blinds the
  cost model to it.  It must reproduce plain SWEB *exactly*.

Reported per configuration: aggregate page-cache hit rate, redirect
rate, p95 and mean response time, and replication traffic.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..core import CostParameters
from ..sim import RandomStreams
from ..workload import Corpus, Document, MB, burst_workload, zipf_sampler
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "run_config", "hot_cold_corpus", "CONFIGS"]

#: scenario shape: the hot set (16 x 3 MB = 48 MB, all on node 0)
#: overflows one Meiko node's 32 MB RAM but fits easily in six nodes'.
N_HOT = 16
HOT_SIZE = 3.0 * MB
N_COLD = 60
COLD_SIZE = 100e3
TAIL_WEIGHT = 0.25

#: configuration name -> CostParameters factory (tuning shared by all:
#: a 16-entry advertisement covers the whole hot set; the replication
#: budget is sized so every demand-filled hot file is spread to
#: factor-3 coverage within a couple of daemon periods)
CONFIGS = {
    "plain": lambda: CostParameters(),
    "directory": lambda: CostParameters(
        coop_cache=True, cache_hot_set=N_HOT),
    "dir+repl": lambda: CostParameters(
        coop_cache=True, cache_hot_set=N_HOT, replicate=True,
        replication_factor=3, replication_period=1.0,
        replication_skew=1.0, replication_max_per_cycle=16),
    "knockout": lambda: CostParameters(
        coop_cache=True, cache_hot_set=N_HOT, use_cache_term=False),
}


def hot_cold_corpus(n_nodes: int, hot_home: int = 0) -> Corpus:
    """Hot files all homed on one node, cold tail spread round-robin.

    The hot documents come first so ``zipf_sampler(hot_set=N_HOT)``
    lands the Zipf head exactly on them.
    """
    docs = [Document(path=f"/hot/doc{i:03d}.gif", size=HOT_SIZE,
                     home=hot_home % n_nodes)
            for i in range(N_HOT)]
    docs.extend(Document(path=f"/cold/page{i:04d}.html", size=COLD_SIZE,
                         home=i % n_nodes)
                for i in range(N_COLD))
    return Corpus(name="hot-cold", documents=docs)


def run_config(config: str, duration: float = 480.0, rps: int = 6,
               nodes: int = 6, seed: int = 7) -> ScenarioResult:
    """Run the Zipf-skewed scenario under one CONFIGS entry.

    The run must be long relative to the ~10 s cold-start storm (48 MB
    of hot files coming off one 5 MB/s disk exactly once): p95 only
    reflects the steady state — where the cooperative cache wins — once
    the storm cohort is under 5 % of all requests.
    """
    corpus = hot_cold_corpus(nodes)
    sampler = zipf_sampler(corpus, RandomStreams(seed=seed), alpha=1.0,
                           hot_set=N_HOT, tail_weight=TAIL_WEIGHT)
    workload = burst_workload(rps, duration, sampler)
    scenario = Scenario(name=f"cache-coop-{config}", spec=meiko_cs2(nodes),
                        corpus=corpus, workload=workload, policy="sweb",
                        seed=seed, client_timeout=600.0, backlog=1024,
                        params=CONFIGS[config]())
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 480.0 if fast else 900.0
    results = {name: run_config(name, duration=duration)
               for name in CONFIGS}

    rows = [[name,
             res.cache_hit_rate() * 100.0,
             res.redirection_rate * 100.0,
             res.p95_response_time(),
             res.mean_response_time,
             float(res.replications)]
            for name, res in results.items()]
    table = render_table(
        headers=["config", "page-cache hit (%)", "redirect (%)",
                 "p95 (s)", "mean (s)", "replications"],
        rows=rows,
        title=(f"Cooperative cache — Zipf hot set ({N_HOT} x "
               f"{HOT_SIZE / MB:.0f} MB on node 0), 6 nodes, 6 rps"))

    plain = results["plain"]
    both = results["dir+repl"]
    knockout = results["knockout"]
    knockout_identical = (
        knockout.completed == plain.completed
        and knockout.mean_response_time == plain.mean_response_time
        and knockout.cache_hit_rate() == plain.cache_hit_rate())
    comparisons = [
        ComparisonRow(
            "replication turns cluster RAM into a shared cache",
            "(not in paper — our extension)",
            f"hit rate {both.cache_hit_rate():.1%} vs "
            f"{plain.cache_hit_rate():.1%} plain",
            "dir+repl hit rate strictly higher than plain",
            ok=both.cache_hit_rate() > plain.cache_hit_rate()),
        ComparisonRow(
            "RAM-aware redirection cuts tail latency",
            "(not in paper — our extension)",
            f"p95 {both.p95_response_time():.2f}s vs "
            f"{plain.p95_response_time():.2f}s plain",
            "dir+repl p95 strictly lower than plain",
            ok=both.p95_response_time() < plain.p95_response_time()),
        ComparisonRow(
            "use_cache_term knockout reproduces plain SWEB",
            "bit-identical control",
            f"mean {knockout.mean_response_time:.4f}s vs "
            f"{plain.mean_response_time:.4f}s",
            "completed, mean rt and hit rate exactly equal",
            ok=knockout_identical),
    ]
    notes = ("The directory rides the existing loadd broadcasts "
             "(cache_report_bytes=0), so the knockout run schedules the "
             "same events as plain SWEB and must match it exactly.  "
             f"dir+repl landed {both.replications} copies "
             f"({both.cluster.replicator.bytes_replicated / MB:.0f} MB of "
             "replication traffic) to earn its hit-rate and tail-latency "
             "win — the communication-vs-balance trade of "
             "arXiv:1610.04513.")
    return ExperimentReport(
        exp_id="X10",
        title="Cooperative cache & hot-file replication (extension)",
        table=table,
        data={name: {"hit_rate": res.cache_hit_rate(),
                     "redirect_rate": res.redirection_rate,
                     "p95": res.p95_response_time(),
                     "mean": res.mean_response_time}
              for name, res in results.items()},
        comparisons=comparisons, notes=notes)
