"""§4.2 skewed test — the fundamental weakness of pure file locality.

"We performed a skewed test … where each client accessed the same file
located on a single server, effectively reducing the parallel system to
a single server.  In this situation, round-robin handily outperforms
file locality, with average response times of 3.7s and 81.4s,
respectively.  This test was performed with six servers, 8 rps, for 45s,
and file size of 1.5MB."

We add SWEB to the comparison: it should track the round-robin outcome
(the hot file is cached everywhere after the first few fetches, so the
cost model sees no reason to pile onto the home node).
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..workload import burst_workload, hot_file_sampler, single_hot_file
from .base import ExperimentReport
from .paper_data import SKEWED_TEST
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "run_policy"]

HOT_PATH = "/hot/popular.gif"


def run_policy(policy: str, duration: float = 45.0, rps: int = 8,
               seed: int = 1) -> ScenarioResult:
    corpus = single_hot_file(SKEWED_TEST["file_size"], home=0, path=HOT_PATH)
    workload = burst_workload(rps, duration, hot_file_sampler(HOT_PATH))
    # Deep listen queues and patient clients: the paper's 81.4 s locality
    # pathology is a *queueing* collapse (every request eventually served,
    # after a huge wait), not a refusal storm.
    scenario = Scenario(name=f"skew-{policy}",
                        spec=meiko_cs2(SKEWED_TEST["servers"]),
                        corpus=corpus, workload=workload, policy=policy,
                        seed=seed, client_timeout=600.0, backlog=1024)
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 20.0 if fast else SKEWED_TEST["duration"]
    rps = int(SKEWED_TEST["rps"])

    results = {policy: run_policy(policy, duration=duration, rps=rps)
               for policy in ("round-robin", "file-locality", "sweb")}

    rows = [[policy,
             SKEWED_TEST.get(policy).value if policy in ("round-robin",
                                                         "file-locality") else None,
             res.mean_response_time, res.drop_rate * 100.0]
            for policy, res in results.items()]
    table = render_table(
        headers=["policy", "paper (s)", "measured (s)", "drop (%)"],
        rows=rows,
        title=f"Skewed test — one hot 1.5 MB file, 6 servers, {rps} rps")

    rr = results["round-robin"].mean_response_time
    fl = results["file-locality"].mean_response_time
    sw = results["sweb"].mean_response_time
    comparisons = [
        ComparisonRow(
            "round robin handily outperforms locality",
            f"{SKEWED_TEST['round-robin'].value}s vs "
            f"{SKEWED_TEST['file-locality'].value}s (22x)",
            f"{rr:.1f}s vs {fl:.1f}s ({fl / rr:.0f}x)",
            "locality at least 5x worse",
            ok=fl > 5 * rr),
        ComparisonRow(
            "SWEB avoids the locality trap",
            "(not in paper — our extension)",
            f"SWEB {sw:.1f}s",
            "SWEB within 2x of round robin",
            ok=sw < 2 * rr),
    ]
    notes = ("Locality funnels every request to the file's home node, "
             "reducing six servers to one; its NIC and CPU saturate and the "
             "listen queue overflows — the paper's 81.4 s pathology.")
    return ExperimentReport(exp_id="S2", title="Skewed hot-file test (§4.2)",
                            table=table,
                            data={p: r.mean_response_time
                                  for p, r in results.items()},
                            comparisons=comparisons, notes=notes)
