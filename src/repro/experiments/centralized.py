"""Extension X7 — the centralized scheduler §3.1 rejected, quantified.

"One [approach] is to have a centralized scheduler running on one
processor such that all HTTP requests go through this processor. … We
did not take this approach mainly because … the single central
distributor becomes a single point of failure, making the entire system
more vulnerable."  (The OCR of the paper loses the sentence's first
reason; the dispatcher's own processing cost is the obvious candidate,
and the measurement below bears it out.)

Two measurements:

* **throughput** — the central dispatcher must accept, fork, parse and
  redirect *every* request, so its CPU caps the whole cluster well below
  the distributed design;
* **fault tolerance** — kill one node under load: distributed SWEB loses
  only the requests DNS-routed to the dead node, while the centralized
  design loses everything when the dispatcher dies.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..core import SWEBCluster
from ..sim import AllOf, RandomStreams
from ..web import Client
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run"]


def _throughput_cell(dispatcher, rps: int, duration: float):
    corpus = uniform_corpus(120, 1e5, 6)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    scenario = Scenario(name=f"x7-{dispatcher}-{rps}", spec=meiko_cs2(6),
                        corpus=corpus, workload=workload, policy="sweb",
                        seed=1, dispatcher=dispatcher)
    return run_scenario(scenario)


def _spof_run(dispatcher, duration: float = 12.0, rps: int = 8,
              kill_at: float = 4.0):
    """Kill node 0 mid-run; return the drop rate."""
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=1,
                          dispatcher=dispatcher)
    corpus = uniform_corpus(60, 1e5, 6)
    corpus.install(cluster)
    sim = cluster.sim
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    client = Client(cluster, timeout=60.0)

    def killer():
        yield sim.timeout(kill_at)
        cluster.node_leave(0)           # the dispatcher, in centralized mode

    def driver():
        procs = []
        for arrival in workload:
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            procs.append(client.fetch(arrival.path))
        yield AllOf(sim, procs)

    sim.spawn(killer(), name="killer")
    sim.run(until=sim.spawn(driver(), name="driver"))
    metrics = cluster.metrics
    after = [r for r in metrics.records if r.start >= kill_at]
    dropped_after = sum(1 for r in after if r.dropped)
    return (metrics.drop_rate,
            dropped_after / len(after) if after else 0.0)


def run(fast: bool = True) -> ExperimentReport:
    duration = 10.0 if fast else 30.0
    rps_levels = (10, 30, 50)

    rows = []
    data: dict = {"throughput": {}}
    for rps in rps_levels:
        dist = _throughput_cell(None, rps, duration)
        cent = _throughput_cell(0, rps, duration)
        data["throughput"][rps] = {
            "distributed": (dist.mean_response_time, dist.drop_rate),
            "centralized": (cent.mean_response_time, cent.drop_rate),
        }
        rows.append([rps, dist.mean_response_time, dist.drop_rate * 100,
                     cent.mean_response_time, cent.drop_rate * 100])
    table1 = render_table(
        headers=["rps", "distributed (s)", "drop (%)",
                 "centralized (s)", "drop (%)"],
        rows=rows,
        title="X7a — distributed vs centralized scheduler, 100 KB files, "
              "Meiko-6", floatfmt=".3f")

    _total_d, after_d = _spof_run(None)
    _total_c, after_c = _spof_run(0)
    data["spof"] = {"distributed_after": after_d, "centralized_after": after_c}
    table2 = render_table(
        headers=["design", "drop rate after node 0 dies"],
        rows=[["distributed", after_d * 100], ["centralized", after_c * 100]],
        title="X7b — single point of failure: node 0 killed mid-run",
        floatfmt=".1f")

    heavy = max(rps_levels)
    dist_heavy = data["throughput"][heavy]["distributed"]
    cent_heavy = data["throughput"][heavy]["centralized"]
    comparisons = [
        ComparisonRow(
            "dispatcher becomes the bottleneck",
            "every request funnels through one CPU",
            f"@{heavy} rps: centralized {cent_heavy[0]:.2f}s/"
            f"{cent_heavy[1]:.0%} drops vs distributed {dist_heavy[0]:.2f}s/"
            f"{dist_heavy[1]:.0%}",
            "centralized worse at high load",
            ok=(cent_heavy[1] > dist_heavy[1]
                or cent_heavy[0] > 1.5 * dist_heavy[0])),
        ComparisonRow(
            "single point of failure",
            "'the entire system more vulnerable' (§3.1)",
            f"after the kill: centralized drops {after_c:.0%}, "
            f"distributed {after_d:.0%}",
            "centralized loses (nearly) everything; distributed ~1/6",
            ok=after_c > 0.9 and after_d < 0.4),
    ]
    notes = ("Centralized mode routes every request through node 0's "
             "httpd+broker (accept, fork, parse, redirect) before any other "
             "node can serve it — the design the paper rejected in one "
             "sentence, measured.")
    return ExperimentReport(exp_id="X7",
                            title="Centralized vs distributed scheduler",
                            table=table1 + "\n\n" + table2, data=data,
                            comparisons=comparisons, notes=notes)
