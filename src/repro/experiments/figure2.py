"""Figure 2 — the computing and storage architecture of SWEB.

The figure shows the two-stage assignment: the DNS rotation spreads
incoming requests over the nodes, and each node's scheduler then
re-routes them.  We regenerate it as a matrix counting, for a loaded
run, how many requests DNS sent to each node versus how many each node
actually served — the off-diagonal mass *is* the scheduler at work.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    n_nodes = 6
    corpus = bimodal_corpus(150, n_nodes, large_frac=0.5, seed=9)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(25, duration, sampler)
    scenario = Scenario(name="f2", spec=meiko_cs2(n_nodes), corpus=corpus,
                        workload=workload, policy="sweb", seed=1,
                        dns_ttl=300.0, hosts_per_profile=4)
    result = run_scenario(scenario)

    matrix = [[0] * n_nodes for _ in range(n_nodes)]
    for rec in result.metrics.records:
        if rec.ok and rec.dns_node is not None and rec.served_by is not None:
            matrix[rec.dns_node][rec.served_by] += 1

    rows = [[f"DNS->node{i}"] + matrix[i] + [sum(matrix[i])]
            for i in range(n_nodes)]
    served_totals = [sum(matrix[i][j] for i in range(n_nodes))
                     for j in range(n_nodes)]
    rows.append(["served total"] + served_totals + [sum(served_totals)])
    table = render_table(
        headers=["assignment"] + [f"srv{j}" for j in range(n_nodes)] + ["sum"],
        rows=rows,
        title="Figure 2 — DNS first-stage vs scheduler second-stage "
              "assignment (completed requests)", floatfmt=".0f")

    dns_totals = [sum(matrix[i]) for i in range(n_nodes)]
    moved = sum(matrix[i][j] for i in range(n_nodes)
                for j in range(n_nodes) if i != j)
    total = sum(dns_totals)

    def imbalance(counts):
        live = [c for c in counts]
        mean = sum(live) / len(live) if live else 0.0
        return max(live) / mean if mean else float("inf")

    comparisons = [
        ComparisonRow(
            "DNS assignment is coarse",
            "rotation without load knowledge",
            f"max/mean DNS load = {imbalance(dns_totals):.2f}",
            "visible imbalance (> 1.05)",
            ok=imbalance(dns_totals) > 1.05),
        ComparisonRow(
            "scheduler re-balances",
            "second-stage assignment",
            f"max/mean served = {imbalance(served_totals):.2f} "
            f"({moved}/{total} moved)",
            "served spread tighter than DNS spread",
            ok=imbalance(served_totals) <= imbalance(dns_totals) + 1e-9),
    ]
    notes = ("Rows: where the DNS rotation sent requests; columns: which "
             "node fulfilled them.  Off-diagonal counts are SWEB "
             "redirections correcting the DNS stage.")
    return ExperimentReport(exp_id="F2",
                            title="Two-stage assignment architecture (Figure 2)",
                            table=table,
                            data={"matrix": matrix, "moved": moved},
                            comparisons=comparisons, notes=notes)
