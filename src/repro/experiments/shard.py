"""Multiprocess sharded runner over independent scenario cells.

A *grid* is a list of independent cells — (seed × config) points, each
a self-contained simulation: either a :class:`FluidCell` (the aggregate
client-population model, ``repro.workload.fluid``) or a
:class:`ScenarioCell` (the full per-client path).  Cells share nothing:
each one builds its own simulator, RNG streams and
:class:`~repro.obs.MetricsRegistry` inside the worker process, so the
kernel's determinism guarantees hold per cell no matter which process
runs it or in what order.

:func:`run_grid` partitions the cells across a ``multiprocessing`` pool
(``fork`` start method where available), then folds the per-cell
registry snapshots with :func:`repro.obs.merge_snapshots` **in
canonical cell-id order** — which is why a sharded run's merged metrics
are bit-equal to the serial run's, and why the grid fingerprint is
stable across worker counts and completion orderings.  See
``docs/SCALING.md`` for the full determinism contract.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from ..obs import merge_snapshots
from ..workload import FluidScenario, Scenario, build_scenario, run_fluid
from .runner import ScenarioResult, run_scenario

__all__ = ["CellResult", "FluidCell", "ScenarioCell", "ShardReport",
           "grid_fingerprint", "make_fluid_grid", "run_cell", "run_grid",
           "scenario_record_lines"]


@dataclass(frozen=True)
class FluidCell:
    """One fluid-model grid point: a cell id + its scenario."""

    cell_id: str
    scenario: FluidScenario


@dataclass(frozen=True)
class ScenarioCell:
    """One per-client-model grid point.

    Built either from a preset name (``repro.workload.SCENARIOS``) plus
    keyword overrides, or from a module-level factory callable — both
    forms pickle cleanly into worker processes, unlike a constructed
    :class:`~repro.workload.Scenario` (whose workload is a generator-
    backed object).  The scenario itself is materialised *inside* the
    worker.
    """

    cell_id: str
    preset: Optional[str] = None
    overrides: dict[str, Any] = field(default_factory=dict)
    factory: Optional[Callable[[], Scenario]] = None

    def build(self) -> Scenario:
        """Materialise the scenario (called in the worker process)."""
        if (self.preset is None) == (self.factory is None):
            raise ValueError(
                f"cell {self.cell_id!r}: exactly one of preset/factory "
                f"must be set")
        if self.factory is not None:
            return self.factory()
        return build_scenario(self.preset, **self.overrides)


Cell = Union[FluidCell, ScenarioCell]


@dataclass
class CellResult:
    """What one cell sends back from its worker: pure picklable data.

    No simulator, cluster or registry objects cross the process
    boundary — only the registry *snapshot*, the cell's determinism
    fingerprint, and a small headline dict.
    """

    cell_id: str
    kind: str                      # "fluid" | "scenario"
    n_requests: int
    finished_at: float
    fingerprint: str
    snapshot: dict[str, Any]
    summary: str
    #: kind-specific detail — for scenario cells the exact record lines
    #: and counters (the determinism-golden comparison material), for
    #: fluid cells the per-node served counts
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class ShardReport:
    """Merged outcome of one :func:`run_grid` call."""

    #: per-cell results in canonical (sorted cell_id) order
    cells: list[CellResult]
    #: one combined registry snapshot over all cells
    merged: dict[str, Any]
    #: cell_id -> determinism fingerprint
    fingerprints: dict[str, str]
    #: digest over every (cell_id, fingerprint) pair — the whole grid's
    #: identity, independent of worker count and completion order
    grid_fingerprint: str
    workers: int

    @property
    def n_requests(self) -> int:
        return sum(c.n_requests for c in self.cells)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (for ``experiments.report`` and tests)."""
        return {
            "workers": self.workers,
            "n_cells": len(self.cells),
            "n_requests": self.n_requests,
            "grid_fingerprint": self.grid_fingerprint,
            "fingerprints": dict(self.fingerprints),
            "cells": [{"cell_id": c.cell_id, "kind": c.kind,
                       "n_requests": c.n_requests,
                       "summary": c.summary} for c in self.cells],
            "merged": self.merged,
        }


def scenario_record_lines(result: ScenarioResult) -> list[str]:
    """Render per-request records in the determinism-golden line format.

    This is byte-for-byte the format of ``tests/data/
    determinism_fingerprint.json`` (see ``tests/test_determinism.py``),
    so a sharded scenario cell can be checked against the same golden
    the serial kernel is pinned to.
    """
    lines = []
    for rec in result.metrics.records:
        phases = " ".join(f"{k}={v!r}" for k, v in sorted(rec.phases.items()))
        lines.append(
            f"{rec.req_id} {rec.path} start={rec.start!r} end={rec.end!r} "
            f"status={rec.status} ok={rec.ok} dropped={rec.dropped} "
            f"reason={rec.drop_reason} dns={rec.dns_node} "
            f"served={rec.served_by} redirected={rec.redirected} "
            f"retries={rec.retries} [{phases}]")
    return lines


def run_cell(cell: Cell) -> CellResult:
    """Run one cell to completion (the worker-side entry point).

    Every cell gets a fresh simulator and registry, so running a cell
    is side-effect free and order-independent.
    """
    if isinstance(cell, FluidCell):
        res = run_fluid(cell.scenario, keep_records=False)
        return CellResult(
            cell_id=cell.cell_id,
            kind="fluid",
            n_requests=res.n_requests,
            finished_at=res.finished_at,
            fingerprint=res.fingerprint,
            snapshot=res.snapshot(),
            summary=res.summary_line(),
            detail={"served": list(res.served),
                    "redirected": res.redirected},
        )
    if isinstance(cell, ScenarioCell):
        result = run_scenario(cell.build())
        lines = scenario_record_lines(result)
        counters = {k: v for k, v in
                    sorted(result.metrics.counters.as_dict().items())}
        served_by = {str(k): v for k, v in
                     sorted(result.metrics.served_by_histogram().items())}
        digest = hashlib.sha256()
        for line in lines:
            digest.update(line.encode())
            digest.update(b"\n")
        digest.update(repr(sorted(counters.items())).encode())
        digest.update(repr(result.finished_at).encode())
        return CellResult(
            cell_id=cell.cell_id,
            kind="scenario",
            n_requests=result.metrics.total,
            finished_at=result.finished_at,
            fingerprint=digest.hexdigest(),
            snapshot=result.cluster.registry.snapshot(),
            summary=result.summary_line(),
            detail={"records": lines, "counters": counters,
                    "served_by": served_by,
                    "finished_at": repr(result.finished_at)},
        )
    raise TypeError(f"unknown cell type: {type(cell).__name__}")


def grid_fingerprint(fingerprints: dict[str, str]) -> str:
    """Digest a cell_id -> fingerprint map, order-independently."""
    digest = hashlib.sha256()
    for cell_id in sorted(fingerprints):
        digest.update(f"{cell_id} {fingerprints[cell_id]}\n".encode())
    return digest.hexdigest()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits the import state); fall back to
    the platform default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def run_grid(cells: Sequence[Cell],
             workers: Optional[int] = None) -> ShardReport:
    """Run every cell, optionally across a process pool, and merge.

    ``workers=None`` picks ``min(len(cells), cpu_count)``; ``workers<=1``
    runs inline in this process (no pool, no pickling) — the *serial
    reference path*.  Whatever the worker count or completion order,
    results are re-sorted into canonical cell-id order before the
    snapshot fold, so the merged snapshot and grid fingerprint are
    identical across all execution modes.
    """
    if not cells:
        raise ValueError("run_grid needs at least one cell")
    ids = [c.cell_id for c in cells]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate cell ids in grid: {sorted(ids)}")
    if workers is None:
        workers = min(len(cells), multiprocessing.cpu_count())
    workers = max(1, int(workers))

    if workers == 1 or len(cells) == 1:
        results = [run_cell(c) for c in cells]
        workers = 1
    else:
        ctx = _pool_context()
        with ctx.Pool(processes=workers) as pool:
            results = pool.map(run_cell, cells)

    results.sort(key=lambda r: r.cell_id)
    fingerprints = {r.cell_id: r.fingerprint for r in results}
    merged = merge_snapshots([r.snapshot for r in results])
    return ShardReport(
        cells=results,
        merged=merged,
        fingerprints=fingerprints,
        grid_fingerprint=grid_fingerprint(fingerprints),
        workers=workers,
    )


def make_fluid_grid(base: FluidScenario,
                    seeds: Sequence[int]) -> list[FluidCell]:
    """The common grid shape: one fluid cell per seed of a base config."""
    return [FluidCell(cell_id=f"{base.name}/seed={seed}",
                      scenario=base.with_seed(seed))
            for seed in seeds]
