"""X11 scheduler tournament — the policy zoo on hom/het × uniform/Zipf.

The paper evaluates SWEB's multi-faceted cost model against round-robin
and file locality on homogeneous testbeds (§4.2).  The modern cluster-
scheduling literature asks a harder question: how do cost-model
scheduling, queue-length scheduling (JSQ, power-of-two-choices),
work-aware scheduling (least-work-left) and locality-aware hashing
compare when the *cluster itself* is heterogeneous?  This experiment
runs every fluid-capable policy (``repro.sched.fluid_policy_names``)
across a 2×2 grid —

* **cluster**: homogeneous baseline vs the mixed-generation cluster
  (:data:`repro.sched.MIXED_GENERATION`, equal aggregate CPU);
* **popularity**: uniform vs Zipf(1.0) with a RAM-hot head —

at million-request scale per cell (full mode) through the sharded grid
runner, so every cell carries a determinism fingerprint and the merged
result is bit-identical across worker counts.  A smaller per-client
confirmation pass replays the head-to-heads on the full httpd stack
over :func:`repro.cluster.heterogeneous_meiko`.

Expected ordering (docs/SCHEDULING.md): on heterogeneous clusters the
load-blind policies (round-robin, random) go unstable on the slow
nodes; count-based JSQ/po2 recover most of the loss; work-aware SWEB
and LWL recover it all; chash trades mean latency for cache locality.
"""

from __future__ import annotations

from typing import Optional

from ..cluster import heterogeneous_meiko
from ..sched import MIXED_GENERATION, fluid_policy_names
from ..sim import RandomStreams
from ..workload import (
    FluidScenario,
    Scenario,
    burst_workload,
    run_fluid,
    uniform_corpus,
    uniform_sampler,
)
from .base import ExperimentReport
from .runner import ScenarioResult, run_scenario
from .shard import FluidCell, run_grid
from .tables import ComparisonRow, render_table

__all__ = ["run", "make_cells", "fluid_cell", "client_scenario",
           "CLUSTERS", "POPULARITY", "GOLDEN_SWEB_50K"]

#: offered rate (rps): ~0.9 utilisation on the homogeneous cluster —
#: loaded enough to separate the policies, stable enough that mean
#: latency does not drift with run length
TOURNAMENT_RATE = 5500.0

#: cluster axis: label -> speed factors (None = homogeneous)
CLUSTERS = {"hom": None, "het": MIXED_GENERATION}

#: popularity axis: label -> Zipf alpha (None = uniform)
POPULARITY = {"uniform": None, "zipf": 1.0}

#: the pre-zoo fluid fingerprint of the default 50 k-request SWEB cell;
#: the refactored dispatch must reproduce it bit for bit (also pinned
#: in tests/test_sched_policies.py)
GOLDEN_SWEB_50K = ("7a743f16064058ede5e5312f8e7c7f51"
                   "ff551719da6702e4466a58ace78cdb8a")


def fluid_cell(policy: str, cluster: str, popularity: str,
               n_requests: int, rate: float = TOURNAMENT_RATE,
               seed: int = 1) -> FluidCell:
    """One tournament grid point."""
    scenario = FluidScenario(
        name=f"tourney-{policy}-{cluster}-{popularity}",
        policy=policy, n_requests=n_requests, rate=rate,
        alpha=POPULARITY[popularity], seed=seed)
    factors = CLUSTERS[cluster]
    if factors is not None:
        scenario = scenario.with_speed_factors(factors.take(scenario.nodes))
    return FluidCell(
        cell_id=f"tourney/{policy}/{cluster}/{popularity}",
        scenario=scenario)


def make_cells(n_requests: int,
               policies: Optional[tuple[str, ...]] = None) -> list[FluidCell]:
    """The full policy × cluster × popularity grid."""
    policies = policies or fluid_policy_names()
    return [fluid_cell(policy, cluster, popularity, n_requests)
            for policy in policies
            for cluster in CLUSTERS
            for popularity in POPULARITY]


def client_scenario(policy: str, rps: int = 10, duration: float = 20.0,
                    nodes: int = 6, seed: int = 1) -> Scenario:
    """Per-client confirmation cell: full httpd stack on the
    mixed-generation Meiko."""
    spec = heterogeneous_meiko(nodes)
    corpus = uniform_corpus(120, 1.5e6, nodes)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"tourney-client-{policy}", spec=spec,
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, client_timeout=600.0)


def _cell_mean(report, cell_id: str) -> float:
    """Mean fluid latency of one cell, read from its registry snapshot."""
    for cell in report.cells:
        if cell.cell_id == cell_id:
            return cell.snapshot["histograms"]["fluid.latency_s"]["mean"]
    raise KeyError(f"cell {cell_id!r} not in report")


def run(fast: bool = True) -> ExperimentReport:
    n_requests = 60_000 if fast else 1_000_000
    policies = fluid_policy_names()
    report = run_grid(make_cells(n_requests))

    means = {(p, c, z): _cell_mean(report, f"tourney/{p}/{c}/{z}")
             for p in policies for c in CLUSTERS for z in POPULARITY}
    rows = [[p,
             means[(p, "hom", "uniform")], means[(p, "hom", "zipf")],
             means[(p, "het", "uniform")], means[(p, "het", "zipf")]]
            for p in policies]
    table = render_table(
        headers=["policy", "hom/uniform (s)", "hom/zipf (s)",
                 "het/uniform (s)", "het/zipf (s)"],
        rows=rows,
        title=(f"Scheduler tournament — mean latency, "
               f"{n_requests:,} requests/cell at {TOURNAMENT_RATE:.0f} rps, "
               f"6 nodes (het = mixed-generation, equal aggregate CPU)"))

    # Determinism cross-check: the same sub-grid must merge to the same
    # grid fingerprint serially and across a 2-worker pool.
    sub = make_cells(20_000, policies=("sweb", "jsq"))
    serial = run_grid(sub, workers=1)
    pooled = run_grid(sub, workers=2)
    shards_identical = serial.grid_fingerprint == pooled.grid_fingerprint

    # The pre-zoo golden: the default SWEB cell, untouched by the
    # dispatch refactor.
    golden_fp = run_fluid(FluidScenario(n_requests=50_000),
                          keep_records=False).fingerprint

    # Per-client confirmation on the heterogeneous Meiko.
    client_policies = ("sweb", "jsq", "random")
    duration = 20.0 if fast else 60.0
    client: dict[str, ScenarioResult] = {
        p: run_scenario(client_scenario(p, duration=duration))
        for p in client_policies}

    load_aware = ("sweb", "jsq", "po2", "lwl")
    load_blind = ("round-robin", "random")
    worst_aware = max(means[(p, "het", z)]
                      for p in load_aware for z in POPULARITY)
    best_blind = min(means[(p, "het", z)]
                     for p in load_blind for z in POPULARITY)
    comparisons = [
        ComparisonRow(
            "SWEB's cost model wins the heterogeneous uniform grid",
            "(not in paper — our extension)",
            f"sweb {means[('sweb', 'het', 'uniform')]:.4f}s vs best other "
            f"{min(means[(p, 'het', 'uniform')] for p in policies if p != 'sweb'):.4f}s",
            "sweb mean strictly lowest on het/uniform",
            ok=all(means[("sweb", "het", "uniform")]
                   < means[(p, "het", "uniform")]
                   for p in policies if p != "sweb")),
        ComparisonRow(
            "load-blind policies collapse on heterogeneous clusters",
            "cf. arXiv:1103.1207",
            f"worst load-aware {worst_aware:.4f}s vs best load-blind "
            f"{best_blind:.4f}s on the het grids",
            "every load-aware mean beats every load-blind mean",
            ok=worst_aware < best_blind),
        ComparisonRow(
            "two choices beat random placement on every grid",
            "Mitzenmacher's po2 result",
            "po2 vs random mean on all four grids",
            "po2 mean strictly below random's in each cell",
            ok=all(means[("po2", c, z)] < means[("random", c, z)]
                   for c in CLUSTERS for z in POPULARITY)),
        ComparisonRow(
            "sharded tournament merges bit-identically",
            "docs/SCALING.md determinism contract",
            f"workers=1 {serial.grid_fingerprint[:12]}… vs "
            f"workers=2 {pooled.grid_fingerprint[:12]}…",
            "grid fingerprints equal across worker counts",
            ok=shards_identical),
        ComparisonRow(
            "policy dispatch preserves the pre-zoo SWEB fingerprint",
            "bit-identical control",
            f"{golden_fp[:16]}…",
            "default 50k SWEB cell reproduces the golden digest",
            ok=golden_fp == GOLDEN_SWEB_50K),
        ComparisonRow(
            "fluid and per-client models agree on the head-to-heads",
            "(not in paper — our extension)",
            f"per-client het means: sweb "
            f"{client['sweb'].mean_response_time:.2f}s, jsq "
            f"{client['jsq'].mean_response_time:.2f}s, random "
            f"{client['random'].mean_response_time:.2f}s",
            "sweb < random and jsq < random in both models",
            ok=(client["sweb"].mean_response_time
                < client["random"].mean_response_time
                and client["jsq"].mean_response_time
                < client["random"].mean_response_time
                and all(means[("sweb", "het", z)] < means[("random", "het", z)]
                        and means[("jsq", "het", z)]
                        < means[("random", "het", z)]
                        for z in POPULARITY))),
    ]
    notes = (f"Grid fingerprint {report.grid_fingerprint[:16]}… over "
             f"{report.n_requests:,} requests in {len(report.cells)} cells.  "
             "On the het grids the load-blind policies are locally unstable "
             "(the quarter-speed node's queue grows without bound), so "
             "their means scale with run length; the ordering, not the "
             "magnitude, is the result.  chash pays a mean-latency premium "
             "for cache locality — in this fluid model the Zipf head is "
             "already RAM-priced, so locality buys nothing and the skew "
             "shows up undiluted.")
    return ExperimentReport(
        exp_id="X11",
        title="Scheduler tournament on heterogeneous clusters (extension)",
        table=table,
        data={
            "rate": TOURNAMENT_RATE,
            "n_requests_per_cell": n_requests,
            "means": {f"{p}/{c}/{z}": means[(p, c, z)]
                      for p in policies for c in CLUSTERS
                      for z in POPULARITY},
            "fingerprints": dict(report.fingerprints),
            "grid_fingerprint": report.grid_fingerprint,
            "client_means": {p: r.mean_response_time
                             for p, r in client.items()},
        },
        comparisons=comparisons, notes=notes)
