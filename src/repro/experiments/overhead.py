"""§4.3 — server-side overhead of the SWEB machinery.

"Our data shows that in processing requests for files of sizes 1.5MB
when 16 rps, 4.4% of CPU cycles are used for parsing the HTML commands,
but less than 0.01% time is used for collecting load information and
making scheduling decisions.  Approximately 0.2% of the available CPU is
used for load monitoring."

Because every CPU charge in the simulator is tagged with a category,
these shares are direct outputs of the run.  The load-the-paper-reports
hierarchy — parsing ≫ monitoring ≫ scheduling — is the reproduced shape.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .paper_data import OVERHEAD
from .runner import Scenario, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    corpus = uniform_corpus(120, 1.5e6, 6)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(16, duration, sampler)
    scenario = Scenario(name="overhead", spec=meiko_cs2(6), corpus=corpus,
                        workload=workload, policy="sweb", seed=1)
    result = run_scenario(scenario)

    shares = result.cpu_shares()
    parsing = shares.get("parsing", 0.0)
    scheduling = shares.get("scheduling", 0.0)
    monitoring = shares.get("loadd", 0.0)
    sending = shares.get("send", 0.0)

    rows = [
        ["parsing HTTP commands", OVERHEAD["parsing"].value * 100, parsing * 100],
        ["scheduling decisions", OVERHEAD["scheduling"].value * 100,
         scheduling * 100],
        ["load monitoring (loadd)", OVERHEAD["monitoring"].value * 100,
         monitoring * 100],
        ["packetising / send stack", None, sending * 100],
        ["fork", None, shares.get("fork", 0.0) * 100],
    ]
    table = render_table(
        headers=["activity", "paper (% CPU)", "measured (% CPU)"],
        rows=rows,
        title="§4.3 — server-side CPU shares, 16 rps x 1.5 MB, 6-node Meiko",
        floatfmt=".3f")

    fulfilment = parsing + sending + shares.get("fork", 0.0)
    machinery = scheduling + monitoring
    comparisons = [
        ComparisonRow(
            "parsing >> monitoring",
            "4.4% vs 0.2%",
            f"{parsing:.1%} vs {monitoring:.2%}",
            "at least 5x apart",
            ok=parsing > 5 * monitoring),
        ComparisonRow(
            "SWEB machinery is insignificant",
            "scheduling + monitoring well under 1%",
            f"{machinery:.2%} vs {fulfilment:.0%} spent fulfilling requests",
            "machinery < 2% and < 1/20 of fulfilment",
            ok=machinery < 0.02 and machinery < fulfilment / 20),
        ComparisonRow(
            "load monitoring ~0.2%",
            "0.2%",
            f"{monitoring:.2%}",
            "0.02%-1%",
            ok=0.0002 < monitoring < 0.01),
        ComparisonRow(
            "scheduling direct cost 1-4 ms/request",
            "1-4 ms analysis + 4 ms redirect",
            f"{scheduling:.2%} of CPU at ~2.7 rps/node",
            "consistent with 1-10 ms per request",
            ok=scheduling < 2.7 * 0.010 / 6 * 6),
    ]
    notes = ("§4.3's own numbers disagree internally: '<0.01% for "
             "scheduling decisions' cannot coexist with the 1-4 ms direct "
             "cost per request at 2.7 rps/node (~1% of a 40 MHz CPU), and "
             "the 4.4% parsing share conflicts with Table 5's 70 ms "
             "preprocessing (~19%).  We calibrate to Table 5's per-request "
             "costs; the claim §4.3 actually argues — the SWEB machinery "
             "is a rounding error next to request fulfilment — is "
             "reproduced above.")
    return ExperimentReport(exp_id="S3", title="Server-side overhead (§4.3)",
                            table=table, data={"shares": shares},
                            comparisons=comparisons, notes=notes)
