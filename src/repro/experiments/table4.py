"""Table 4 — uniform 1.5 MB files on the NOW's shared Ethernet.

"In a relatively slow, bus-type Ethernet in a NOW environment, the
advantage of exploiting file locality is more clear" — every NFS
cross-mount transfer competes with every client response on one 10 Mb/s
medium, so shipping the *request* to the file (one small redirect) beats
shipping the *file* across the bus.

The companion Meiko run reproduces the paper's null result: "On Meiko
CS-2 … the three strategies have similar performance" because NFS rides
the fast fat-tree.
"""

from __future__ import annotations

from ..cluster import meiko_cs2, sun_now
from ..sim import RandomStreams
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "run_cell"]

POLICIES = ("round-robin", "file-locality", "sweb")


def run_cell(spec, rps: int, policy: str, duration: float = 30.0,
             seed: int = 1, client_timeout: float = 300.0) -> ScenarioResult:
    corpus = uniform_corpus(40, 1.5e6, spec.num_nodes)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    scenario = Scenario(name=f"t4-{spec.name}-{policy}-{rps}rps", spec=spec,
                        corpus=corpus, workload=workload, policy=policy,
                        seed=seed, client_timeout=client_timeout)
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    now_rps = (1, 2) if fast else (1, 2, 3)
    meiko_rps = 16

    results: dict[tuple[str, int, str], ScenarioResult] = {}
    rows = []
    for rps in now_rps:
        row = [f"NOW @{rps}"]
        for policy in POLICIES:
            res = run_cell(sun_now(4), rps, policy, duration=duration)
            results[("now", rps, policy)] = res
            row.append(res.mean_response_time)
        rows.append(row)
    row = [f"Meiko @{meiko_rps}"]
    for policy in POLICIES:
        res = run_cell(meiko_cs2(6), meiko_rps, policy, duration=duration,
                       client_timeout=120.0)
        results[("meiko", meiko_rps, policy)] = res
        row.append(res.mean_response_time)
    rows.append(row)

    table = render_table(
        headers=["testbed@rps", "Round Robin", "File Locality", "SWEB"],
        rows=rows,
        title="Table 4 — mean response time (s), uniform 1.5 MB files")

    # Evaluate the locality claim below total bus saturation (at 3 rps of
    # 1.5 MB even the locality-friendly plan exceeds the 10 Mb/s medium,
    # so every policy converges on the same queueing collapse).
    top_now = 2 if 2 in now_rps else max(now_rps)
    rr = results[("now", top_now, "round-robin")].mean_response_time
    fl = results[("now", top_now, "file-locality")].mean_response_time
    sw = results[("now", top_now, "sweb")].mean_response_time
    mk = {p: results[("meiko", meiko_rps, p)].mean_response_time
          for p in POLICIES}
    meiko_spread = (max(mk.values()) - min(mk.values())) / min(mk.values())
    comparisons = [
        ComparisonRow(
            "NOW: locality beats round robin",
            "advantage is clear on Ethernet",
            f"RR {rr:.1f}s vs locality {fl:.1f}s",
            "locality at least 25% faster",
            ok=fl < 0.75 * rr),
        ComparisonRow(
            "NOW: SWEB discovers locality",
            "SWEB >= locality",
            f"SWEB {sw:.1f}s vs locality {fl:.1f}s",
            "SWEB within 20% of locality",
            ok=sw < 1.2 * fl),
        ComparisonRow(
            "Meiko: null result",
            "all three similar on the fat-tree",
            f"spread {meiko_spread:.0%} (RR {mk['round-robin']:.2f} / "
            f"FL {mk['file-locality']:.2f} / SWEB {mk['sweb']:.2f})",
            "SWEB within 50% of RR",
            ok=mk["sweb"] < 1.5 * mk["round-robin"]),
    ]
    notes = ("Remote NFS penalty: 60% on the NOW Ethernet vs 10% on the "
             "Meiko fat-tree — the crossover the paper attributes the "
             "contrast to.")
    return ExperimentReport(exp_id="T4",
                            title="Uniform requests on NOW Ethernet (Table 4)",
                            table=table,
                            data={f"{b}/{r}/{p}": res.mean_response_time
                                  for (b, r, p), res in results.items()},
                            comparisons=comparisons, notes=notes)
