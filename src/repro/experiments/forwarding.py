"""Extension X4 — the road not taken: request forwarding vs URL redirection.

§3.1: "Two approaches, URL redirection or request forwarding, could be
used to achieve reassignment and we use the former.  Request forwarding
is very difficult to implement within HTTP."

We implement forwarding anyway (the target fulfils the request and the
response is relayed through the origin node's httpd) and measure the
trade-off the authors never quantified: forwarding saves the client's
extra connect round trip, but every relayed byte crosses the fabric and
pays a second TCP-stack pass at the origin.  For a high-latency
east-coast client the crossover falls between small (latency-bound,
forwarding wins) and large (bandwidth-bound, redirection wins) files —
so for the ADL's map-scan workload the paper's choice is also the fast
one, not just the implementable one.
"""

from __future__ import annotations

from dataclasses import replace

from ..core import CostParameters, SWEBCluster
from ..cluster import meiko_cs2
from ..web import RUTGERS_CLIENT, UCSB_CLIENT
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run", "fetch_time"]

SIZES = (1e3, 3e4, 3e5, 1.5e6)


def fetch_time(reassignment: str, size: float, profile=RUTGERS_CLIENT,
               seed: int = 1) -> float:
    """One misdirected fetch (DNS node 0, file home 2) under a mechanism."""
    params = replace(CostParameters(), reassignment=reassignment)
    cluster = SWEBCluster(meiko_cs2(3), policy="file-locality", seed=seed,
                          params=params)
    cluster.add_file("/doc.gif", size, home=2)
    proc = cluster.client(profile=profile).fetch("/doc.gif")
    rec = cluster.run(until=proc)
    if not rec.ok or rec.served_by != 2:
        raise AssertionError(f"reassignment failed: {rec}")
    return rec.response_time


def run(fast: bool = True) -> ExperimentReport:
    rows = []
    data: dict[str, dict[float, float]] = {"forward": {}, "redirect": {}}
    winners = {}
    for size in SIZES:
        t_fwd = fetch_time("forward", size)
        t_red = fetch_time("redirect", size)
        data["forward"][size] = t_fwd
        data["redirect"][size] = t_red
        winners[size] = "forward" if t_fwd < t_red else "redirect"
        rows.append([f"{size / 1e3:g} KB", t_fwd, t_red, winners[size]])

    # Local clients for reference (one row; the latency saving vanishes).
    t_fwd_local = fetch_time("forward", 1.5e6, profile=UCSB_CLIENT)
    t_red_local = fetch_time("redirect", 1.5e6, profile=UCSB_CLIENT)
    rows.append(["1500 KB (UCSB client)", t_fwd_local, t_red_local,
                 "forward" if t_fwd_local < t_red_local else "redirect"])

    table = render_table(
        headers=["file size", "forwarding (s)", "redirection (s)", "winner"],
        rows=rows,
        title="X4 — reassignment mechanism, east-coast client, misdirected "
              "request", floatfmt=".3f")

    comparisons = [
        ComparisonRow(
            "forwarding wins small files",
            "saves the 302 round trip",
            f"{data['forward'][1e3]:.3f}s vs {data['redirect'][1e3]:.3f}s",
            "forward faster at 1 KB",
            ok=data["forward"][1e3] < data["redirect"][1e3]),
        ComparisonRow(
            "redirection competitive on big files",
            "paper chose redirection for a big-file library",
            f"{data['redirect'][1.5e6]:.3f}s vs {data['forward'][1.5e6]:.3f}s",
            "redirect within 5% (or better) at 1.5 MB",
            ok=data["redirect"][1.5e6] < 1.05 * data["forward"][1.5e6]),
        ComparisonRow(
            "a crossover exists",
            "(not quantified in the paper)",
            " / ".join(f"{s / 1e3:g}KB:{winners[s][:3]}" for s in SIZES),
            "winner changes across the size range",
            ok=len(set(winners.values())) == 2),
    ]
    notes = ("Forwarding relays the full response through the origin httpd "
             "(a second TCP-stack pass plus two fabric crossings) — the "
             "implementation burden §3.1 cites, made quantitative.")
    return ExperimentReport(exp_id="X4",
                            title="Request forwarding vs URL redirection",
                            table=table, data=data, comparisons=comparisons,
                            notes=notes)
