"""Table 3 — non-uniform file sizes: SWEB vs round-robin vs file locality.

"We tested the ability of the system to handle requests with sizes
varying from short, approximately 100 bytes, to relatively long,
approximately 1.5MB. … For lightly loaded systems, SWEB performs
comparably with the others.  For heavily loaded systems (rps ≥ 20), SWEB
has an advantage of 15-60% over round robin and file locality."

The heterogeneity that round-robin cannot adapt to comes from two real
effects modelled here: client-side DNS caching pins each client host to
one server node, and the bimodal size mix makes the pinned byte-load very
uneven across nodes.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..sim import RandomStreams
from ..workload import bimodal_corpus, burst_workload, uniform_sampler
from .base import ExperimentReport
from .paper_data import TABLE3_CLAIMS
from .runner import Scenario, ScenarioResult, run_scenario
from .tables import ComparisonRow, render_table

__all__ = ["run", "POLICIES", "run_cell"]

POLICIES = ("round-robin", "file-locality", "sweb")


def run_cell(rps: int, policy: str, duration: float = 30.0,
             n_nodes: int = 6, seed: int = 1,
             hosts: int = 4, dns_ttl: float = 300.0) -> ScenarioResult:
    """One (rps, policy) cell of Table 3."""
    corpus = bimodal_corpus(150, n_nodes, large_frac=0.5, seed=9)
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    scenario = Scenario(name=f"t3-{policy}-{rps}rps", spec=meiko_cs2(n_nodes),
                        corpus=corpus, workload=workload, policy=policy,
                        seed=seed, dns_ttl=dns_ttl, hosts_per_profile=hosts)
    return run_scenario(scenario)


def run(fast: bool = True) -> ExperimentReport:
    duration = 15.0 if fast else 30.0
    rps_levels = TABLE3_CLAIMS["rps_levels"]

    results: dict[tuple[int, str], ScenarioResult] = {}
    rows = []
    for rps in rps_levels:
        row = [rps]
        for policy in POLICIES:
            res = run_cell(rps, policy, duration=duration)
            results[(rps, policy)] = res
            row.append(res.mean_response_time)
        rows.append(row)

    table = render_table(
        headers=["rps", "Round Robin", "File Locality", "SWEB"],
        rows=rows,
        title="Table 3 — mean response time (s), non-uniform sizes, "
              "Meiko CS-2", floatfmt=".3f")

    def advantage(rps: int, other: str) -> float:
        base = results[(rps, other)].mean_response_time
        sweb = results[(rps, "sweb")].mean_response_time
        return 1.0 - sweb / base

    heavy = max(rps_levels)
    light = min(rps_levels)
    adv_rr = advantage(heavy, "round-robin")
    adv_fl = advantage(heavy, "file-locality")
    lo, hi = TABLE3_CLAIMS["advantage_range"]
    comparisons = [
        ComparisonRow(
            "light load: SWEB comparable",
            "comparable at low rps",
            f"SWEB/RR = "
            f"{results[(light, 'sweb')].mean_response_time / results[(light, 'round-robin')].mean_response_time:.2f}",
            "within 25% of round robin",
            ok=abs(advantage(light, "round-robin")) < 0.25),
        ComparisonRow(
            f"heavy load ({heavy} rps): SWEB vs RR",
            f"{lo:.0%}-{hi:.0%} advantage",
            f"{adv_rr:.0%}",
            "SWEB at least 15% faster",
            ok=adv_rr >= lo * 0.9),
        ComparisonRow(
            f"heavy load ({heavy} rps): SWEB vs locality",
            f"{lo:.0%}-{hi:.0%} advantage",
            f"{adv_fl:.0%}",
            "SWEB at least 15% faster",
            ok=adv_fl >= lo * 0.9),
        ComparisonRow(
            "SWEB redirection is selective",
            "redirects only what pays off",
            f"{results[(heavy, 'sweb')].redirection_rate:.0%} redirected "
            f"(locality: {results[(heavy, 'file-locality')].redirection_rate:.0%})",
            "far below locality's rate",
            ok=results[(heavy, "sweb")].redirection_rate
               < 0.5 * results[(heavy, "file-locality")].redirection_rate),
    ]
    notes = ("Clients: 4 hosts behind caching resolvers (TTL 300s), the "
             "coarse DNS assignment of §1/§3.1.  " + TABLE3_CLAIMS["heavy_load"])
    return ExperimentReport(exp_id="T3",
                            title="Non-uniform request sizes (Table 3)",
                            table=table,
                            data={f"{rps}/{p}": results[(rps, p)].mean_response_time
                                  for rps in rps_levels for p in POLICIES},
                            comparisons=comparisons, notes=notes)
