"""Figure 3 — the functional modules of a SWEB scheduler.

The figure shows one node's httpd consulting the broker, which consults
the oracle (request characterisation) and loadd (distributed load
information).  We regenerate it by tracing a short run and extracting
the module-interaction sequence for one redirected request, plus the
loadd broadcast fabric running underneath.
"""

from __future__ import annotations

from ..core import SWEBCluster
from ..cluster import meiko_cs2
from ..sim import Trace
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run"]


def run(fast: bool = True) -> ExperimentReport:
    trace = Trace()
    cluster = SWEBCluster(meiko_cs2(3), policy="sweb", seed=1, trace=trace)
    # A big file whose home is NOT the DNS-chosen node, plus an idle
    # cluster, guarantees at least one broker consultation.
    cluster.add_file("/maps/big.tif", 1.5e6, home=2)
    proc = cluster.fetch("/maps/big.tif")
    record = cluster.run(until=proc)
    cluster.run(until=cluster.sim.now + 6.0)   # let loadd broadcast twice

    sched = trace.filter(category="sched")
    loadd = trace.filter(category="loadd")
    rows = [[f"{rec.time:8.4f}", rec.category, rec.actor, rec.action,
             " ".join(f"{k}={v}" for k, v in sorted(rec.detail.items()))]
            for rec in (sched + loadd)[:20]]
    table = render_table(
        headers=["time", "module", "actor", "event", "detail"],
        rows=rows,
        title="Figure 3 — broker / oracle / loadd interactions (traced)")

    brokers_consulted = {rec.actor for rec in sched}
    daemons_heard = {rec.actor for rec in loadd}
    comparisons = [
        ComparisonRow(
            "broker consulted per request",
            "httpd -> broker -> choice",
            f"{len(sched)} decisions by {sorted(brokers_consulted)}",
            "at least one choose_server",
            ok=len(sched) >= 1),
        ComparisonRow(
            "loadd broadcasts underneath",
            "every 2-3 seconds, every node",
            f"{len(loadd)} broadcasts from {len(daemons_heard)} daemons",
            "every node's daemon heard",
            ok=len(daemons_heard) == 3),
        ComparisonRow(
            "decision uses the load view",
            "broker consults oracle + loadd",
            f"request served by node {record.served_by} "
            f"(home 2, DNS {record.dns_node})",
            "request completed",
            ok=record.ok),
    ]
    notes = ("The 'oracle' consultation is implicit in every choose_server "
             "event: the broker's cost terms come from the oracle's "
             "characterisation table (see repro.core.oracle).")
    return ExperimentReport(exp_id="F3",
                            title="Scheduler functional modules (Figure 3)",
                            table=table,
                            data={"sched_events": len(sched),
                                  "loadd_events": len(loadd)},
                            comparisons=comparisons, notes=notes)
