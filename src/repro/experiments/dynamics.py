"""Extension X8 — burst dynamics: why short-period max rps > sustained.

§4.1: "The requests coming in a short period can be queued and processed
gradually.  But the requests continuously generated in a long period
cannot be queued without actively processing them since there are new
requests coming after each second."

We drive the 6-node Meiko at a rate *between* its sustained and
short-burst maxima for 1.5 MB files, once for a short window and once
sustained, sampling the total backlog every second.  The short run's
queue drains after the burst ends; the sustained run's queue grows
without bound until drops begin — the mechanism behind Table 1's two
columns, made visible.
"""

from __future__ import annotations

from ..cluster import meiko_cs2
from ..core import SWEBCluster
from ..sim import AllOf, Monitor, RandomStreams, ascii_sparkline
from ..web import Client
from ..workload import burst_workload, uniform_corpus, uniform_sampler
from .base import ExperimentReport
from .tables import ComparisonRow, render_table

__all__ = ["run", "queue_trajectory"]


def queue_trajectory(rps: int, duration: float, seed: int = 1,
                     drain: float = 40.0):
    """Run a burst and sample the cluster-wide backlog once per second."""
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=seed)
    corpus = uniform_corpus(120, 1.5e6, 6)
    corpus.install(cluster)
    sim = cluster.sim
    monitor = Monitor(sim, period=1.0)
    monitor.probe("backlog", lambda: sum(
        s.connections_active for s in cluster.servers.values()))
    monitor.start()
    sampler = uniform_sampler(corpus, RandomStreams(seed=42))
    workload = burst_workload(rps, duration, sampler)
    client = Client(cluster, timeout=120.0)

    def driver():
        procs = []
        for arrival in workload:
            if arrival.time > sim.now:
                yield sim.timeout(arrival.time - sim.now)
            procs.append(client.fetch(arrival.path))
        yield AllOf(sim, procs)

    sim.run(until=sim.spawn(driver(), name="driver"))
    _times, backlog = monitor.series("backlog")
    return backlog, cluster.metrics


def run(fast: bool = True) -> ExperimentReport:
    # 20 rps sits between the sustained max (~17) and the 30 s burst
    # max (~22) on the 6-node Meiko for 1.5 MB files.
    rps = 20
    short_window = 10.0 if fast else 30.0
    long_window = 40.0 if fast else 120.0

    short_backlog, short_metrics = queue_trajectory(rps, short_window)
    long_backlog, long_metrics = queue_trajectory(rps, long_window)

    window = int(short_window)
    rows = [
        ["short burst", short_window, max(short_backlog),
         short_backlog[-1] if short_backlog else 0,
         short_metrics.drop_rate * 100.0],
        ["sustained", long_window, max(long_backlog),
         long_backlog[-1] if long_backlog else 0,
         long_metrics.drop_rate * 100.0],
    ]
    table = render_table(
        headers=["run", "window (s)", "peak backlog", "final backlog",
                 "drop (%)"],
        rows=rows,
        title=f"X8 — backlog dynamics at {rps} rps x 1.5 MB, Meiko-6",
        floatfmt=".1f")
    table += ("\n\nbacklog over time (1 s samples):\n"
              f"  short:     {ascii_sparkline(short_backlog, 60)}\n"
              f"  sustained: {ascii_sparkline(long_backlog, 60)}")

    # Queue growth during the offered window of the sustained run.
    growth = (long_backlog[int(long_window) - 1] - long_backlog[window - 1]
              if len(long_backlog) >= long_window else 0)
    comparisons = [
        ComparisonRow(
            "short bursts are absorbed by queueing",
            "requests in a short period can be queued",
            f"peak backlog {max(short_backlog)}, drops "
            f"{short_metrics.drop_rate:.0%}",
            "no (or few) drops for the short burst",
            ok=short_metrics.drop_rate < 0.05),
        ComparisonRow(
            "sustained overload grows the queue",
            "new requests coming after each second",
            f"backlog at t={window}s: {long_backlog[window - 1]:.0f} -> "
            f"t={int(long_window)}s: "
            f"{long_backlog[min(int(long_window), len(long_backlog)) - 1]:.0f}",
            "backlog keeps growing past the short window",
            ok=growth > 0),
        ComparisonRow(
            "hence short-period max > sustained max",
            "Table 1's two columns",
            f"sustained run drops {long_metrics.drop_rate:.1%} at a rate "
            f"the short run absorbs",
            "sustained drop rate >= short drop rate",
            ok=long_metrics.drop_rate >= short_metrics.drop_rate),
    ]
    notes = ("Same offered rate, different windows: the only difference is "
             "whether the backlog has time to hit the listen-queue limit.")
    return ExperimentReport(exp_id="X8", title="Burst dynamics (queueing)",
                            table=table,
                            data={"short": short_backlog,
                                  "long": long_backlog},
                            comparisons=comparisons, notes=notes)
