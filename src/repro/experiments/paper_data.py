"""Every number the paper reports, as data.

The available text of the paper has OCR damage in several table bodies;
entries below are marked ``exact`` (clearly legible, usually restated in
prose), ``approx`` (legible but context-dependent) or ``garbled``
(unreadable in the source — only the prose claims about them survive).
The experiment modules compare against the exact/approx values and
against the prose claims for the garbled ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "PaperValue",
    "TABLE1",
    "TABLE2",
    "TABLE3_CLAIMS",
    "TABLE4_CLAIMS",
    "TABLE5",
    "SKEWED_TEST",
    "OVERHEAD",
    "ANALYSIS",
    "NCSA_SINGLE_NODE_RPS",
]


@dataclass(frozen=True)
class PaperValue:
    """One reported number and how legible it is in the source."""

    value: float
    unit: str
    quality: str = "exact"      # "exact" | "approx" | "garbled"
    note: str = ""


#: §4.1 context: NCSA measured ~5–10 rps for one high-end workstation.
NCSA_SINGLE_NODE_RPS = (5.0, 10.0)

#: Table 1 — maximum rps (30 s burst vs 120 s sustained).
TABLE1 = {
    # (testbed, file_size_label, duration_label, server) -> PaperValue
    ("meiko", "1.5M", "sustained", "sweb"): PaperValue(
        16.0, "rps", "exact",
        "§4.1: 'consistent with the 16 rps achieved in practice'"),
    ("meiko", "1.5M", "sustained", "analytic"): PaperValue(
        17.8, "rps", "exact",
        "§4.1: 'an analytical maximum sustained 17.8 rps for 1.5M files'"),
    ("now", "1.5M", "short", "sweb"): PaperValue(
        11.0, "rps", "exact", "§4.1: '11 rps is reached for duration of 30s'"),
    ("now", "1.5M", "sustained", "sweb"): PaperValue(
        1.0, "rps", "exact",
        "§4.1: 'only 1 is achieved … disk and Ethernet bandwidth limit'"),
    ("meiko", "1.5M", "sustained", "single"): PaperValue(
        1.0, "rps", "garbled", "table row '< 1' appears under Single server"),
    ("meiko", "1K", "sustained", "single"): PaperValue(
        7.5, "rps", "approx", "NCSA httpd ≈ 5–10 rps on one workstation"),
}

#: Table 2 — response time / drop rate at 16 rps (1K) and 16 rps Meiko /
#: 8 rps NOW (1.5M), 30 s duration.
TABLE2 = {
    "meiko_nodes": (1, 2, 4, 6),
    "now_nodes": (1, 2, 4),
    # 1.5M drop rates, Meiko, by node count — legible in the table body.
    ("meiko", "1.5M", "drop_rate"): {
        1: PaperValue(0.373, "fraction", "exact"),
        2: PaperValue(0.050, "fraction", "exact"),
        4: PaperValue(0.035, "fraction", "approx"),
        6: PaperValue(0.0, "fraction", "exact"),
    },
    ("now", "1.5M", "drop_rate"): {
        1: PaperValue(1.0, "fraction", "approx",
                      "single-server test 'timed out after no responses'"),
        2: PaperValue(0.205, "fraction", "exact"),
        4: PaperValue(0.0, "fraction", "exact"),
    },
    ("meiko", "1K", "drop_rate"): {
        n: PaperValue(0.0, "fraction", "exact") for n in (1, 2, 4, 6)
    },
    ("meiko", "1.5M", "time"): {
        1: PaperValue(120.0, "s", "garbled", "'> 120' visible in the row"),
    },
    "claims": (
        "for 1K files response is flat beyond 2 nodes (no limit reached)",
        "for 1.5M files more nodes give substantially better times",
        "superlinear speedup from aggregate memory and distributed NIC load",
    ),
}

#: Table 3 — non-uniform file sizes on the Meiko (body garbled).
TABLE3_CLAIMS = {
    "rps_levels": (10, 20, 25, 30),
    "light_load": "at low rps SWEB performs comparably with the others",
    "heavy_load": ("for rps >= 20 SWEB has an advantage of 15-60% over "
                   "round robin and file locality"),
    "advantage_range": (0.15, 0.60),
    "east_coast": ("from Rutgers, file locality gains over 10% vs round "
                   "robin despite the poor coast-to-coast link"),
}

#: Table 4 — uniform 1.5 MB files on the NOW Ethernet (body garbled).
TABLE4_CLAIMS = {
    "claim": ("on a slow bus-type Ethernet the advantage of exploiting "
              "file locality is clear; on the Meiko fat-tree all three "
              "strategies perform similarly"),
    "meiko_null_result": True,
}

#: Table 5 — cost distribution for a 1.5 MB fetch on a loaded Meiko.
TABLE5 = {
    "preprocessing": PaperValue(0.070, "s", "exact"),
    "analysis": PaperValue(0.004, "s", "exact", "'1 or 4 msec.'"),
    "redirection": PaperValue(0.004, "s", "exact"),
    "data_transfer": PaperValue(4.9, "s", "exact"),
    "network": PaperValue(0.5, "s", "exact"),
    "total": PaperValue(5.4, "s", "exact"),
    "claim": "well over 90% of the total time is data transfer",
}

#: §4.2 skewed test: one hot 1.5 MB file, 6 servers, 8 rps, 45 s.
SKEWED_TEST = {
    "round-robin": PaperValue(3.7, "s", "exact"),
    "file-locality": PaperValue(81.4, "s", "exact"),
    "servers": 6,
    "rps": 8,
    "duration": 45.0,
    "file_size": 1.5e6,
}

#: §4.3 server-side CPU overhead at 16 rps with 1.5 MB files.
OVERHEAD = {
    "parsing": PaperValue(0.044, "fraction", "exact", "4.4% of CPU cycles"),
    "scheduling": PaperValue(0.0001, "fraction", "exact",
                             "'less than 0.01%' for load collection + decisions"),
    "monitoring": PaperValue(0.002, "fraction", "exact",
                             "'approximately 0.2%' for load monitoring"),
    "analysis_direct_cost": PaperValue(0.004, "s", "exact", "1-4 ms estimate"),
    "redirect_direct_cost": PaperValue(0.004, "s", "exact"),
}

#: §3.3 worked example + §4.1 echo.
ANALYSIS = {
    "b1": 5e6, "b2": 4.5e6, "p": 6, "F": 1.5e6,
    "per_node_rps": PaperValue(2.88, "rps", "exact"),
    "total_rps_s33": PaperValue(17.3, "rps", "exact"),
    "total_rps_s41": PaperValue(17.8, "rps", "exact"),
    "measured_rps": PaperValue(16.0, "rps", "exact"),
}
