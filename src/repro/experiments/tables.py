"""ASCII table rendering and paper-vs-measured comparison helpers.

Every experiment module prints its results with these, so the benchmark
harness output looks like the tables in the paper.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

__all__ = ["render_table", "format_value", "ComparisonRow", "render_comparison"]


def format_value(value: Any, floatfmt: str = ".2f") -> str:
    """Human-friendly cell formatting (NaN → '-', floats per format)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if math.isinf(value):
            return "inf"
        return f"{value:{floatfmt}}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None, floatfmt: str = ".2f") -> str:
    """Monospace table with a header rule, e.g.::

        rps | Round Robin | File locality | SWEB
        ----+-------------+---------------+-----
         10 |        4.33 |          4.21 | 4.15
    """
    cells = [[format_value(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class ComparisonRow:
    """One paper-vs-measured line with a shape check.

    ``check`` describes the *qualitative* expectation ("SWEB < RR",
    "superlinear", "order of magnitude"), and ``ok`` whether the measured
    values satisfy it — absolute agreement is not expected because the
    substrate is a simulator, not the authors' Meiko.
    """

    def __init__(self, label: str, paper: Any, measured: Any,
                 check: str = "", ok: Optional[bool] = None) -> None:
        self.label = label
        self.paper = paper
        self.measured = measured
        self.check = check
        self.ok = ok

    def as_row(self) -> list[Any]:
        verdict = "-" if self.ok is None else ("yes" if self.ok else "NO")
        return [self.label, self.paper, self.measured, self.check, verdict]


def render_comparison(rows: Sequence[ComparisonRow],
                      title: str = "paper vs measured") -> str:
    return render_table(
        headers=["quantity", "paper", "measured", "shape check", "holds"],
        rows=[r.as_row() for r in rows],
        title=title,
    )
