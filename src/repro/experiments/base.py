"""Common shape of an experiment module.

Every table/figure module exposes ``run(fast=True) -> ExperimentReport``.
``fast`` runs a scaled-down version (shorter durations, smaller sweeps)
suitable for the benchmark harness; ``fast=False`` runs at the paper's
full durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .tables import ComparisonRow, render_comparison

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """One reproduced artifact: its table plus the paper comparison."""

    exp_id: str               # "T1" … "T5", "F1" … "F3", "S1" … "S3", "X1" …
    title: str
    table: str                # rendered ASCII table (the regenerated artifact)
    data: dict[str, Any] = field(default_factory=dict)
    comparisons: list[ComparisonRow] = field(default_factory=list)
    notes: str = ""

    @property
    def shape_holds(self) -> bool:
        """True when every checked qualitative claim held."""
        checked = [c.ok for c in self.comparisons if c.ok is not None]
        return all(checked) if checked else True

    def render(self) -> str:
        parts = [f"== {self.exp_id}: {self.title} ==", "", self.table]
        if self.comparisons:
            parts += ["", render_comparison(self.comparisons)]
        if self.notes:
            parts += ["", self.notes]
        return "\n".join(parts)
