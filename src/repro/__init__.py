"""repro — SWEB: Towards a Scalable World Wide Web Server on Multicomputers.

A from-scratch reproduction of Andresen, Yang, Holmedahl & Ibarra
(IPPS 1996) on a deterministic discrete-event multicomputer simulator.

Layers (bottom-up):

* :mod:`repro.sim` — the discrete-event kernel (processes, fair-share
  stations, deterministic RNG, metrics, tracing);
* :mod:`repro.cluster` — the hardware: nodes, disks, page caches, the
  Meiko fat-tree / NOW Ethernet, NFS, WAN paths;
* :mod:`repro.cache` — cooperative caching: the cluster-wide cache
  directory, per-file heat counters, hot-file replication;
* :mod:`repro.web` — HTTP, round-robin DNS, CGI, clients, the httpd;
* :mod:`repro.core` — SWEB itself: broker, oracle, loadd, the
  multi-faceted cost model, the scheduling policies, the §3.3 analysis,
  and the :class:`SWEBCluster` facade;
* :mod:`repro.workload` — corpora and request generators;
* :mod:`repro.faults` — declarative fault plans (crashes, partitions,
  slow disks, loadd blackouts) injectable into any run;
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro import SWEBCluster, meiko_cs2

    cluster = SWEBCluster(meiko_cs2(), policy="sweb", seed=1)
    cluster.add_file("/index.html", 1024, home=0)
    cluster.run(until=cluster.fetch("/index.html"))
    print(cluster.metrics.response_summary())
"""

from .cluster import (
    ClusterSpec,
    NodeSpec,
    custom_cluster,
    heterogeneous_now,
    meiko_cs2,
    sun_now,
)
from .config import SWEBConfig, dump_config, load_config
from .faults import FaultInjector, FaultPlan
from .core import (
    AdaptiveOracle,
    AnalysisInputs,
    CostParameters,
    Oracle,
    SWEBCluster,
    make_policy,
    max_sustained_rps,
)
from .web import (
    ClientProfile,
    HTTPRequest,
    HTTPResponse,
    Metrics,
    RUTGERS_CLIENT,
    UCSB_CLIENT,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveOracle",
    "AnalysisInputs",
    "ClientProfile",
    "ClusterSpec",
    "CostParameters",
    "FaultInjector",
    "FaultPlan",
    "HTTPRequest",
    "HTTPResponse",
    "Metrics",
    "NodeSpec",
    "Oracle",
    "RUTGERS_CLIENT",
    "SWEBCluster",
    "SWEBConfig",
    "UCSB_CLIENT",
    "custom_cluster",
    "dump_config",
    "heterogeneous_now",
    "load_config",
    "make_policy",
    "max_sustained_rps",
    "meiko_cs2",
    "sun_now",
    "__version__",
]
