"""Shared percentile math — the one place quantiles are computed.

Before this module existed, ``sim/stats.py`` computed percentiles in two
places (``Summary.of`` and ``Tally.percentile``) and downstream callers
(``ScenarioResult.p95_response_time``, the X10 report) each re-derived
p95 through their own path.  Everything now routes through these two
functions, so "p95" means exactly one thing repo-wide: NumPy's default
linear-interpolation quantile.  ``tests/test_obs_registry.py`` pins the
equivalence on shared inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["percentile", "percentiles"]


def percentiles(values: Iterable[float],
                qs: Sequence[float]) -> list[float]:
    """Exact percentiles of ``values`` at each q in ``qs`` (0..100).

    Returns ``nan`` for every q when ``values`` is empty — the same
    convention ``Summary.empty()`` uses.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return [float("nan")] * len(qs)
    out = np.percentile(arr, list(qs))
    return [float(v) for v in np.atleast_1d(out)]


def percentile(values: Iterable[float], q: float) -> float:
    """Exact single percentile of ``values`` at ``q`` (0..100)."""
    return percentiles(values, (q,))[0]
