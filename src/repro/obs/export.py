"""Trace exporters: Chrome ``trace_event`` JSON and a text flame rollup.

Both exporters are pure functions from collected traces to strings —
they never touch the filesystem (the CLI owns all I/O), and their output
is bit-stable across identical seeded runs (``sort_keys`` JSON, no wall
clock, no dict-order dependence), which the golden test pins.

Chrome layout convention: one *process* lane per cluster node (pid =
node id + 1; pid 0 is the client/WAN side) so chrome://tracing and
Perfetto render the request's hops across machines as nested slices in
per-node swimlanes; the *thread* id is the request id, grouping one
request's spans onto one row within its lane.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from .spans import RequestTrace, Span

__all__ = ["CLIENT_PID", "chrome_trace", "render_chrome_trace",
           "flame_rollup"]

#: The pid lane for client/WAN-side spans (nodes get ``node_id + 1``).
CLIENT_PID = 0


def _pid(span: Span) -> int:
    return CLIENT_PID if span.node is None else span.node + 1


def _clip_end(span: Span, root: Optional[Span]) -> Optional[float]:
    """Span end, clipped into its request's root window.

    A request that times out closes its root at the deadline while
    server-side handlers keep running; clipping keeps the exported
    nesting well-formed without hiding that the span existed.
    """
    if span.end is None:
        return None
    if root is None or root.end is None or span is root:
        return span.end
    return min(span.end, root.end)


def chrome_trace(traces: Iterable[RequestTrace]) -> dict[str, Any]:
    """Chrome ``trace_event`` document (the JSON Object Format).

    Every closed span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur``; per-node process-name metadata events
    label the lanes.  Open spans (a request cut off by the end of the
    run) are skipped rather than guessed at.
    """
    events: list[dict[str, Any]] = []
    pids: dict[int, str] = {}
    for trace in traces:
        root = trace.root
        for span in trace:
            end = _clip_end(span, root)
            if end is None:
                continue
            pid = _pid(span)
            pids.setdefault(pid, "client/WAN" if pid == CLIENT_PID
                            else f"node {pid - 1}")
            args: dict[str, Any] = {"stage": span.stage}
            args.update(span.tags)
            events.append({
                "name": span.name,
                "cat": span.stage,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(max(0.0, end - span.start) * 1e6, 3),
                "pid": pid,
                "tid": trace.req_id,
                "args": args,
            })
    meta = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
            for pid, label in sorted(pids.items())]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "sweb-repro obs",
                      "clock": "simulated seconds -> microseconds"},
    }


def render_chrome_trace(traces: Iterable[RequestTrace]) -> str:
    """The Chrome trace document as deterministic, pretty-printed JSON."""
    return json.dumps(chrome_trace(traces), sort_keys=True, indent=1) + "\n"


def flame_rollup(traces: Iterable[RequestTrace],
                 max_depth: int = 6) -> str:
    """Flamegraph-style text rollup: time per span-name path.

    Aggregates every span's duration under its name path (``request;
    fulfill;nfs_transfer``...), then renders an indented tree with total
    seconds, share of the root total, and call counts — the quick "where
    did the time go" answer without leaving the terminal.
    """
    totals: dict[tuple[str, ...], float] = {}
    counts: dict[tuple[str, ...], int] = {}

    def walk(trace: RequestTrace, span: Span, prefix: tuple[str, ...]) -> None:
        path = prefix + (span.name,)
        if len(path) > max_depth or not span.closed:
            return
        end = _clip_end(span, trace.root)
        duration = max(0.0, (end if end is not None else span.start)
                       - span.start)
        totals[path] = totals.get(path, 0.0) + duration
        counts[path] = counts.get(path, 0) + 1
        for child in trace.children(span):
            walk(trace, child, path)

    for trace in traces:
        root = trace.root
        if root is not None:
            walk(trace, root, ())
    if not totals:
        return "(no traces collected)\n"
    grand = sum(v for path, v in totals.items() if len(path) == 1) or 1.0

    lines = [f"{'total(s)':>10}  {'share':>6}  {'count':>6}  span"]

    def render(path: tuple[str, ...]) -> None:
        indent = "  " * (len(path) - 1)
        lines.append(f"{totals[path]:10.4f}  {totals[path] / grand:6.1%}  "
                     f"{counts[path]:6d}  {indent}{path[-1]}")
        kids = sorted((p for p in totals
                       if len(p) == len(path) + 1 and p[:-1] == path),
                      key=lambda p: (-totals[p], p[-1]))
        for kid in kids:
            render(kid)

    for top in sorted((p for p in totals if len(p) == 1),
                      key=lambda p: (-totals[p], p[-1])):
        render(top)
    return "\n".join(lines) + "\n"
