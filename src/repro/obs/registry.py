"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` per run replaces the ad-hoc counter dicts
that used to be scattered across ``web/metrics.py``, ``core/loadd.py``
and ``repro.cache``: every subsystem publishes into the same namespace
(``http.*``, ``loadd.*``, ``cache.*``) and reports read one snapshot.

Histograms use *fixed* bucket bounds so p50/p95/p99 come from bucket
interpolation without storing raw samples — O(buckets) memory per metric
regardless of run length, the standard Prometheus-style trade-off.  The
exact-percentile path (``repro.obs.percentiles``) remains the source of
truth where raw samples are already retained (``sim.stats``).

Registries are per-process but their snapshots are *mergeable*:
:func:`merge_snapshots` folds any number of ``snapshot()`` dicts into
one — counters and bucket counts add, gauges add (every gauge in the
repo is a cumulative quantity), histograms are reconstructed from their
recorded bounds so merged percentiles interpolate over the combined
counts.  The sharded experiment runner
(``repro.experiments.shard``, see ``docs/SCALING.md``) relies on this to
combine per-worker results into one report identical to a serial run.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Optional, Sequence

__all__ = ["CounterGroup", "Gauge", "Histogram", "MetricsRegistry",
           "exponential_buckets", "merge_snapshots", "LATENCY_BUCKETS"]


def exponential_buckets(start: float, factor: float,
                        count: int) -> tuple[float, ...]:
    """``count`` bucket upper bounds growing geometrically from ``start``."""
    if start <= 0:
        raise ValueError(f"start must be > 0, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor ** i for i in range(count))


#: Default bounds for latency-shaped histograms: 1 ms .. ~131 s, 18
#: geometric buckets (plus the implicit overflow bucket).
LATENCY_BUCKETS: tuple[float, ...] = exponential_buckets(1e-3, 2.0, 18)


class CounterGroup:
    """Named integer counters, API-compatible with ``sim.stats.Counter``.

    Lives inside a registry under a namespace so subsystem counters
    (requests, drops, redirects...) appear in the shared snapshot while
    existing call sites (``incr`` / ``[]`` / ``as_dict``) keep working
    unchanged — the determinism golden compares ``as_dict()`` verbatim.
    """

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace
        self._counts: dict[str, int] = {}

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + by

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"<CounterGroup {self.namespace!r} {self._counts!r}>"


class Gauge:
    """A last-write-wins scalar with cumulative ``add`` support."""

    def __init__(self, name: str, initial: float = 0.0) -> None:
        self.name = name
        self.value = float(initial)

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def __repr__(self) -> str:
        return f"<Gauge {self.name!r} {self.value!r}>"


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything past the last bound.  Percentiles are
    linearly interpolated inside the containing bucket and clamped to
    the observed ``[min, max]``, so small samples stay sane without any
    raw-sample storage.
    """

    def __init__(self, name: str,
                 bounds: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.bounds: tuple[float, ...] = (tuple(bounds) if bounds is not None
                                          else LATENCY_BUCKETS)
        if not self.bounds:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        if any(nxt <= prev for prev, nxt in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"histogram {name!r} bounds must increase")
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def record(self, value: float) -> None:
        """Add one observation."""
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.total += v
        if v < self.minimum:
            self.minimum = v
        if v > self.maximum:
            self.maximum = v

    def absorb(self, counts: Sequence[int], count: int, total: float,
               minimum: float, maximum: float) -> None:
        """Add a batch of pre-bucketed observations in one step.

        ``counts`` must align with this histogram's buckets (``len(bounds)
        + 1`` entries, overflow last).  This is the bulk path used by the
        fluid workload model (which buckets a whole arrival batch with
        vectorised numpy before publishing) and by snapshot merging; it
        is exactly equivalent to ``record()``-ing each observation, up to
        float-summation order in ``total``.
        """
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r} has {len(self.counts)} buckets, "
                f"absorb() got {len(counts)}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        for i, n in enumerate(counts):
            self.counts[i] += n
        self.count += count
        self.total += float(total)
        if minimum < self.minimum:
            self.minimum = float(minimum)
        if maximum > self.maximum:
            self.maximum = float(maximum)

    @classmethod
    def from_snapshot(cls, name: str, entry: dict) -> "Histogram":
        """Rebuild a histogram from one ``snapshot()`` entry.

        Requires the ``bounds``/``min``/``max`` fields that
        :meth:`MetricsRegistry.snapshot` records (snapshots predating
        them cannot be merged — fail loudly rather than guess bounds
        from the ``%g``-formatted bucket labels).
        """
        if "bounds" not in entry:
            raise ValueError(f"histogram {name!r} snapshot lacks 'bounds'; "
                             f"only snapshots from this version merge")
        hist = cls(name, bounds=entry["bounds"])
        counts = list(entry["buckets"].values())
        minimum = entry.get("min")
        maximum = entry.get("max")
        hist.absorb(counts, entry["count"], entry["total"],
                    minimum if minimum is not None else float("inf"),
                    maximum if maximum is not None else float("-inf"))
        return hist

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Interpolated percentile at ``q`` in 0..100 (``nan`` if empty)."""
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in 0..100, got {q}")
        if self.count == 0:
            return float("nan")
        target = self.count * q / 100.0
        cumulative = 0.0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.maximum
                frac = (target - cumulative) / n
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return min(max(value, self.minimum), self.maximum)
            cumulative += n
        return self.maximum  # pragma: no cover - loop always returns

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def bucket_counts(self) -> dict[str, int]:
        """``upper-bound -> count`` (``"+inf"`` for the overflow bucket)."""
        labels = [f"{b:g}" for b in self.bounds] + ["+inf"]
        return {label: n for label, n in zip(labels, self.counts)}

    def snapshot_entry(self) -> dict[str, Any]:
        """This histogram's JSON-ready state, as stored in snapshots.

        Carries everything :meth:`from_snapshot` needs to reconstruct
        and merge the instrument: exact ``bounds`` plus the observed
        ``min``/``max`` (None while empty) alongside the derived
        summary numbers.
        """
        has = self.count > 0
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean if has else None,
            "p50": self.p50 if has else None,
            "p95": self.p95 if has else None,
            "p99": self.p99 if has else None,
            "min": self.minimum if has else None,
            "max": self.maximum if has else None,
            "bounds": list(self.bounds),
            "buckets": self.bucket_counts(),
        }

    def __repr__(self) -> str:
        return (f"<Histogram {self.name!r} n={self.count} "
                f"mean={self.mean:.4g}>")


class MetricsRegistry:
    """Namespace of counters, gauges and histograms for one run.

    ``counters(ns)`` / ``gauge(name)`` / ``histogram(name)`` create on
    first use and return the existing instrument afterwards, so
    publishers in different subsystems can share by name without
    coordination.
    """

    def __init__(self) -> None:
        self._counters: dict[str, CounterGroup] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counters(self, namespace: str) -> CounterGroup:
        """The (shared) counter group for ``namespace``."""
        group = self._counters.get(namespace)
        if group is None:
            group = self._counters[namespace] = CounterGroup(namespace)
        return group

    def gauge(self, name: str) -> Gauge:
        """The (shared) gauge called ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  bounds: Optional[Iterable[float]] = None) -> Histogram:
        """The (shared) histogram called ``name``.

        ``bounds`` only applies on first creation; later callers get the
        existing instrument regardless.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready dict of every instrument's current state."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for ns in sorted(self._counters):
            for key, val in sorted(self._counters[ns].as_dict().items()):
                out["counters"][f"{ns}.{key}" if ns else key] = val
        for name in sorted(self._gauges):
            out["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            out["histograms"][name] = self._histograms[name].snapshot_entry()
        return out

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")


def merge_snapshots(snapshots: Sequence[dict]) -> dict[str, Any]:
    """Fold registry ``snapshot()`` dicts into one combined snapshot.

    Merge semantics (see ``docs/SCALING.md``):

    * **counters** — integer sums: exact and order-independent;
    * **gauges** — float sums.  Every gauge the repo publishes is a
      cumulative quantity (``loadd.bytes_sent``, ``cache.bytes_replicated``),
      so addition is the meaningful fold; a last-write-wins gauge would
      need per-shard reporting instead;
    * **histograms** — bucket counts, totals and min/max combine, and
      p50/p95/p99 are re-interpolated over the *combined* buckets (never
      averaged across shards).  Bounds must match across snapshots.

    The fold runs left-to-right over ``snapshots``: all integer fields
    are order-independent, and float sums are reproducible for any fixed
    order — callers wanting bit-identical output across worker counts
    (the shard runner does) sort their snapshots canonically first.
    """
    merged: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    counters: dict[str, int] = merged["counters"]
    gauges: dict[str, float] = merged["gauges"]
    hists: dict[str, Histogram] = {}
    for snap in snapshots:
        for key, val in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + val
        for key, val in snap.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0.0) + val
        for name, entry in snap.get("histograms", {}).items():
            hist = hists.get(name)
            if hist is None:
                hists[name] = Histogram.from_snapshot(name, entry)
                continue
            if list(hist.bounds) != list(entry.get("bounds", [])):
                raise ValueError(f"histogram {name!r} bounds differ "
                                 f"across snapshots; cannot merge")
            minimum = entry.get("min")
            maximum = entry.get("max")
            hist.absorb(list(entry["buckets"].values()), entry["count"],
                        entry["total"],
                        minimum if minimum is not None else float("inf"),
                        maximum if maximum is not None else float("-inf"))
    merged["counters"] = {key: counters[key] for key in sorted(counters)}
    merged["gauges"] = {key: gauges[key] for key in sorted(gauges)}
    merged["histograms"] = {name: hists[name].snapshot_entry()
                            for name in sorted(hists)}
    return merged
