"""Causal per-request spans: the tracing half of ``repro.obs``.

The paper's §3–4 evaluation decomposes per-request completion time into
``t_redirection + t_data + t_CPU + t_net``; the aggregate metrics can
report the terminal sums but not *where* a slow request spent its time.
This module provides the missing causal model:

* :class:`Span` — one timed operation (DNS lookup, broker analysis, NFS
  transfer, ...) with sim-clock ``start``/``end`` timestamps, a parent
  link, the node it ran on, and free-form tags;
* :class:`RequestTrace` — every span of one request, assembled under a
  single root whose duration is the client-observed response time, with
  :meth:`RequestTrace.breakdown` reconciling the per-stage sums against
  the terminal latency (any un-instrumented remainder is reported
  explicitly as ``"other"``, never silently dropped);
* :class:`Tracer` — the per-run collector the instrumentation sites talk
  to.  Every method is ``None``-tolerant: when tracing is off (or the
  request was not sampled) the root handle is ``None`` and every child
  ``start``/``finish`` call no-ops, so the hot path costs one identity
  check.  Crucially the tracer only *reads* the sim clock — it never
  schedules events — so enabling it cannot perturb the simulation
  (``tests/test_obs_export.py`` pins this against the determinism
  golden).

Invariants (property-tested in ``tests/test_obs_model.py``): spans nest
inside their parent without sibling overlap, timestamps are monotone in
sim time, child durations sum to at most the parent's, and stage totals
reconcile with the request's terminal latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["STAGES", "Span", "RequestTrace", "Tracer"]

#: Canonical stage buckets spans are rolled up into.  The first five
#: mirror ``repro.web.metrics.PHASE_NAMES`` (Table 5's rows); ``other``
#: is the synthesized remainder that makes breakdowns sum to the
#: terminal latency.
STAGES: tuple[str, ...] = (
    "preprocessing", "analysis", "redirection", "data_transfer",
    "network", "other",
)

#: Tolerance for float comparisons on sim-clock sums.
_EPS = 1e-9


@dataclass
class Span:
    """One timed operation within a request.

    ``end`` is ``None`` while the span is open.  ``node`` is the cluster
    node the work ran on, or ``None`` for client/WAN-side work.
    """

    span_id: int
    req_id: int
    parent_id: Optional[int]
    name: str
    stage: str
    start: float
    end: Optional[float] = None
    node: Optional[int] = None
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed sim seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return (f"<Span {self.span_id} {self.name!r} stage={self.stage} "
                f"req={self.req_id} {state}>")


class RequestTrace:
    """Every span of one request, in creation order under one root."""

    def __init__(self, req_id: int, path: str, client: str = "") -> None:
        self.req_id = req_id
        self.path = path
        self.client = client
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}

    def add(self, span: Span) -> None:
        """Append a span (called by the tracer, in creation order)."""
        self.spans.append(span)
        self._by_id[span.span_id] = span

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    @property
    def root(self) -> Optional[Span]:
        """The request-level span (parentless; ``None`` when empty)."""
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    # -- rollups ----------------------------------------------------------
    def stage_totals(self) -> dict[str, float]:
        """Sim seconds per stage, summed over *top-level* spans only.

        Nested spans (an NFS transfer inside a fulfillment span) are
        detail within their parent's stage; counting only the root's
        direct children keeps the totals double-count-free.
        """
        root = self.root
        totals: dict[str, float] = {}
        if root is None:
            return totals
        for span in self.children(root):
            if span.closed:
                totals[span.stage] = totals.get(span.stage, 0.0) + span.duration
        return totals

    def breakdown(self, latency: Optional[float] = None) -> dict[str, float]:
        """Per-stage decomposition that sums exactly to ``latency``.

        ``latency`` defaults to the root span's duration.  Whatever the
        instrumented stages do not cover is reported as ``"other"``
        (client think-gaps, wire time overlapped with server work), so
        ``sum(breakdown().values()) == latency`` always holds.
        """
        if latency is None:
            root = self.root
            latency = root.duration if root is not None else 0.0
        totals = self.stage_totals()
        covered = sum(totals.values())
        totals["other"] = max(0.0, latency - covered)
        return totals

    def reconciles(self, latency: float, tol: float = 1e-6) -> bool:
        """True when the stage sums are consistent with ``latency``:
        they cover no more than the terminal time (within ``tol``) and
        the explicit breakdown sums back to it exactly."""
        covered = sum(self.stage_totals().values())
        if covered > latency + tol:
            return False
        return abs(sum(self.breakdown(latency).values()) - latency) <= tol

    # -- validation (the property-tested contract) ------------------------
    def problems(self) -> list[str]:
        """Structural-invariant violations (empty list = well-formed).

        Checks: exactly one root; every span closed with ``end >=
        start``; children lie within their parent's interval; siblings
        do not overlap; child durations sum to at most the parent's.
        """
        out: list[str] = []
        roots = [s for s in self.spans if s.parent_id is None]
        if len(roots) != 1:
            out.append(f"expected exactly one root span, found {len(roots)}")
        for span in self.spans:
            if not span.closed:
                out.append(f"span {span.span_id} ({span.name}) never closed")
                continue
            assert span.end is not None
            if span.end < span.start - _EPS:
                out.append(f"span {span.span_id} ends before it starts")
            if span.parent_id is not None:
                parent = self._by_id.get(span.parent_id)
                if parent is None:
                    out.append(f"span {span.span_id} has unknown parent "
                               f"{span.parent_id}")
                elif parent.closed:
                    assert parent.end is not None
                    if (span.start < parent.start - _EPS
                            or span.end > parent.end + _EPS):
                        out.append(
                            f"span {span.span_id} ({span.name}) escapes its "
                            f"parent {parent.span_id} ({parent.name})")
        for span in self.spans:
            kids = [k for k in self.children(span) if k.closed]
            kids.sort(key=lambda s: (s.start, s.span_id))
            for a, b in zip(kids, kids[1:]):
                assert a.end is not None
                if b.start < a.end - _EPS:
                    out.append(f"siblings {a.span_id} ({a.name}) and "
                               f"{b.span_id} ({b.name}) overlap")
            if span.closed and kids:
                child_sum = sum(k.duration for k in kids)
                if child_sum > span.duration + _EPS:
                    out.append(f"children of span {span.span_id} "
                               f"({span.name}) sum past their parent")
        return out

    def __repr__(self) -> str:
        return (f"<RequestTrace req={self.req_id} path={self.path!r} "
                f"spans={len(self.spans)}>")


class Tracer:
    """Per-run span collector with head-sampling.

    ``max_requests`` bounds how many requests get a trace (the first N
    to start, deterministic because request ids are issued in sim-event
    order); ``None`` traces everything, ``0`` nothing.  All ``start`` /
    ``finish`` / ``annotate`` calls tolerate ``None`` handles so
    instrumentation sites need no tracing-enabled conditionals beyond
    obtaining the root.
    """

    def __init__(self, max_requests: Optional[int] = None,
                 enabled: bool = True) -> None:
        if max_requests is not None and max_requests < 0:
            raise ValueError(
                f"max_requests must be >= 0 or None, got {max_requests}")
        self.max_requests = max_requests
        self.enabled = bool(enabled)
        self._traces: dict[int, RequestTrace] = {}
        self._next_span_id = 0

    # -- lifecycle --------------------------------------------------------
    def begin(self, req_id: int, path: str, client: str,
              t: float) -> Optional[Span]:
        """Open a request's root span; ``None`` when off or not sampled."""
        if not self.enabled:
            return None
        if (self.max_requests is not None
                and len(self._traces) >= self.max_requests):
            return None
        trace = RequestTrace(req_id, path, client)
        self._traces[req_id] = trace
        return self._make(trace, parent_id=None, name="request",
                          stage="request", t=t, node=None,
                          tags={"path": path, "client": client})

    def start(self, parent: Optional[Span], name: str, t: float,
              stage: str, node: Optional[int] = None,
              **tags: Any) -> Optional[Span]:
        """Open a child span under ``parent`` (no-op on ``None``)."""
        if parent is None:
            return None
        trace = self._traces.get(parent.req_id)
        if trace is None:
            return None
        return self._make(trace, parent_id=parent.span_id, name=name,
                          stage=stage, t=t, node=node, tags=dict(tags))

    def finish(self, span: Optional[Span], t: float, **tags: Any) -> None:
        """Close ``span`` at sim time ``t`` (no-op on ``None``)."""
        if span is None:
            return
        span.end = t
        if tags:
            span.tags.update(tags)

    def annotate(self, span: Optional[Span], **tags: Any) -> None:
        """Attach tags to an open or closed span (no-op on ``None``)."""
        if span is not None and tags:
            span.tags.update(tags)

    def _make(self, trace: RequestTrace, parent_id: Optional[int],
              name: str, stage: str, t: float, node: Optional[int],
              tags: dict[str, Any]) -> Span:
        span = Span(span_id=self._next_span_id, req_id=trace.req_id,
                    parent_id=parent_id, name=name, stage=stage,
                    start=t, node=node, tags=tags)
        self._next_span_id += 1
        trace.add(span)
        return span

    # -- access -----------------------------------------------------------
    def get(self, req_id: int) -> Optional[RequestTrace]:
        """The trace for one request id, if it was sampled."""
        return self._traces.get(req_id)

    def traces(self) -> list[RequestTrace]:
        """Every collected trace, in request-id order."""
        return [self._traces[k] for k in sorted(self._traces)]

    def __len__(self) -> int:
        return len(self._traces)

    def __repr__(self) -> str:
        cap = "∞" if self.max_requests is None else str(self.max_requests)
        return (f"<Tracer traces={len(self._traces)}/{cap} "
                f"enabled={self.enabled}>")
