"""repro.obs — deterministic per-request tracing and metrics registry.

The observability layer sits at the very bottom of the stack (below even
``repro.sim``): pure data structures with zero simulation dependencies,
so every other layer may publish into it.  Three pieces:

* :mod:`repro.obs.spans` — the causal span model: :class:`Span` /
  :class:`RequestTrace` / :class:`Tracer`, giving each request a
  per-stage time breakdown that reconciles with its terminal latency;
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket :class:`Histogram` percentiles (p50/p95/p99
  without raw-sample storage); registries are per-process but their
  snapshots combine across processes via :func:`merge_snapshots`;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON and a text
  flame rollup (pure renderers; the CLI owns file I/O);
* :mod:`repro.obs.percentiles` — the one shared implementation of
  exact percentile math (``sim.stats`` routes through it).

Tracing is observation-only by construction: the tracer reads the sim
clock but never schedules events, so enabling it cannot change any
simulation outcome.  See ``docs/TRACING.md``.
"""

from .export import CLIENT_PID, chrome_trace, flame_rollup, render_chrome_trace
from .percentiles import percentile, percentiles
from .registry import (
    CounterGroup,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
    merge_snapshots,
)
from .spans import STAGES, RequestTrace, Span, Tracer

__all__ = [
    "CLIENT_PID",
    "CounterGroup",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RequestTrace",
    "STAGES",
    "Span",
    "Tracer",
    "chrome_trace",
    "exponential_buckets",
    "flame_rollup",
    "merge_snapshots",
    "percentile",
    "percentiles",
    "render_chrome_trace",
]
