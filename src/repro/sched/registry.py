"""The scheduling-policy registry: one source of truth for the zoo.

Every redirection policy the reproduction knows — the paper's SWEB cost
model, its §4.2 baselines, and the modern cluster-scheduling zoo added
for the heterogeneous tournament (docs/SCHEDULING.md) — is declared
here once, with the metadata every consumer needs:

* the per-client simulator (``repro.core.policies``) instantiates the
  strategy objects for names with ``per_client=True``;
* the fluid client-population model (``repro.workload.fluid``) runs the
  array-backed analogue for names with ``fluid=True``;
* the CLI (``sweb-repro serve --scheduler``) and the docs gate
  (``scripts/check_docs.py``) validate user- and doc-supplied names
  against :func:`policy_names`, so a documented ``--scheduler`` value
  can never silently drift from the implemented zoo.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PolicyInfo", "POLICIES", "fluid_policy_names",
           "per_client_policy_names", "policy_names"]


@dataclass(frozen=True)
class PolicyInfo:
    """What one scheduling policy is and where it runs."""

    name: str
    #: one-line decision rule (rendered by docs and ``--list`` surfaces)
    summary: str
    #: the cluster state the decision reads ("none", "loadd view", ...)
    reads: str
    #: per-decision complexity in the number of candidate nodes n
    complexity: str
    #: implemented as a per-client strategy object (repro.core.policies)
    per_client: bool = True
    #: implemented as a fluid-model decision kernel (repro.workload.fluid)
    fluid: bool = False


#: name -> metadata, in canonical (documentation) order.
POLICIES: dict[str, PolicyInfo] = {p.name: p for p in (
    PolicyInfo(
        name="sweb",
        summary=("argmin over the multi-faceted completion-time estimate "
                 "t_s = t_redirection + t_data + t_CPU + t_net (§3.2)"),
        reads="loadd view + oracle + file placement (+ cache directory)",
        complexity="O(n)",
        fluid=True),
    PolicyInfo(
        name="round-robin",
        summary="serve wherever DNS rotation landed the request (NCSA)",
        reads="none",
        complexity="O(1)",
        fluid=True),
    PolicyInfo(
        name="file-locality",
        summary="always move the request to the node owning the file",
        reads="file placement",
        complexity="O(1)"),
    PolicyInfo(
        name="cpu-only",
        summary="argmin of speed-normalised believed CPU load ([SHK95])",
        reads="loadd view (CPU only)",
        complexity="O(n)"),
    PolicyInfo(
        name="random",
        summary="uniform random placement over the available nodes",
        reads="membership only",
        complexity="O(1)",
        fluid=True),
    PolicyInfo(
        name="jsq",
        summary="join the shortest queue: argmin of in-service job count",
        reads="queue lengths (believed run-queue per node)",
        complexity="O(n)",
        fluid=True),
    PolicyInfo(
        name="po2",
        summary=("power of two choices: sample two nodes uniformly, "
                 "join the shorter queue"),
        reads="queue lengths of the two sampled nodes",
        complexity="O(1)",
        fluid=True),
    PolicyInfo(
        name="lwl",
        summary=("least work left: argmin of outstanding *work* in "
                 "seconds, so fast nodes absorb proportionally more"),
        reads="backlog work (speed-normalised load per node)",
        complexity="O(n)",
        fluid=True),
    PolicyInfo(
        name="chash",
        summary=("locality-aware consistent hashing: rendezvous-hash the "
                 "path to a node, spill down the preference order when "
                 "the owner exceeds the bounded-load threshold"),
        reads="stable hash of the path + backlog for the load bound",
        complexity="O(n log n) ranking, O(n) spill walk",
        fluid=True),
)}


def policy_names() -> tuple[str, ...]:
    """Every registered policy name, in canonical order."""
    return tuple(POLICIES)


def per_client_policy_names() -> tuple[str, ...]:
    """Names runnable on the per-client path (``repro.core.policies``)."""
    return tuple(n for n, p in POLICIES.items() if p.per_client)


def fluid_policy_names() -> tuple[str, ...]:
    """Names runnable on the fluid path (``repro.workload.fluid``)."""
    return tuple(n for n, p in POLICIES.items() if p.fluid)
