"""Per-node speed factors: the heterogeneity model.

The paper's testbeds are homogeneous; the heterogeneous-web-server
framework (arXiv:1103.1207) and dynamic cluster task scheduling
(arXiv:1902.08040) study the modern case where nodes differ in CPU,
disk and RAM speed.  A :class:`SpeedFactors` describes one such cluster
as *dimensionless multipliers* on a homogeneous baseline — factor 2.0
on a 40 Mops CPU means an 80 Mops CPU — so the same description scales
both the per-client hardware model (``ClusterSpec.with_speed_factors``)
and the fluid model's analytic service times
(``FluidScenario.{cpu,disk,mem}_factors``).  See docs/SCHEDULING.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedFactors", "MIXED_GENERATION"]


@dataclass(frozen=True)
class SpeedFactors:
    """Dimensionless per-node multipliers on a homogeneous baseline."""

    #: CPU speed multipliers, one per node
    cpu: tuple[float, ...]
    #: disk-bandwidth multipliers, one per node
    disk: tuple[float, ...]
    #: RAM-copy (page-cache) bandwidth multipliers, one per node
    mem: tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.cpu)
        if n < 1:
            raise ValueError("SpeedFactors needs at least one node")
        if len(self.disk) != n or len(self.mem) != n:
            raise ValueError(
                f"factor lengths disagree: cpu={n}, disk={len(self.disk)}, "
                f"mem={len(self.mem)}")
        for kind, factors in (("cpu", self.cpu), ("disk", self.disk),
                              ("mem", self.mem)):
            if any(f <= 0 for f in factors):
                raise ValueError(f"{kind} factors must be > 0, got {factors}")

    @property
    def num_nodes(self) -> int:
        return len(self.cpu)

    @property
    def homogeneous(self) -> bool:
        """True when every factor is exactly 1.0 (the baseline cluster)."""
        return all(f == 1.0 for f in self.cpu + self.disk + self.mem)

    @classmethod
    def uniform(cls, n: int, factor: float = 1.0) -> "SpeedFactors":
        """``n`` identical nodes (factor 1.0 = the homogeneous baseline)."""
        return cls(cpu=(factor,) * n, disk=(factor,) * n, mem=(factor,) * n)

    def take(self, n: int) -> "SpeedFactors":
        """The first ``n`` nodes' factors (for smaller clusters)."""
        if not 1 <= n <= self.num_nodes:
            raise ValueError(f"need 1..{self.num_nodes} nodes, got {n}")
        return SpeedFactors(cpu=self.cpu[:n], disk=self.disk[:n],
                            mem=self.mem[:n])


#: The tournament's reference heterogeneous cluster (docs/SCHEDULING.md):
#: a six-node mixed-generation rack — two current nodes (one with a fast
#: array), two mid nodes (one disk-poor), and two old half-speed nodes.
#: Aggregate CPU equals the homogeneous baseline (sum of factors = 6.0)
#: so homogeneous-vs-heterogeneous grids compare at equal total capacity.
MIXED_GENERATION = SpeedFactors(
    cpu=(2.0, 1.5, 1.0, 0.75, 0.5, 0.25),
    disk=(1.0, 2.0, 1.0, 0.5, 1.0, 0.5),
    mem=(1.5, 1.0, 1.0, 1.0, 0.5, 0.5),
)
