"""Deterministic rendezvous (highest-random-weight) hashing.

The locality-aware ``chash`` policy needs a *stable* path → node map:
the same path must land on the same node in every process, on every
Python version, and independently of request order — that is what makes
the mapping "consistent" (each node's cache accumulates a fixed shard
of the corpus) and what keeps tournament fingerprints reproducible.

Rendezvous hashing gives each (key, node) pair a deterministic weight
and ranks the nodes by it: the top-ranked node owns the key, and the
ranking *is* the spill order when the owner is over the bounded-load
threshold.  Removing a node only reassigns the keys it owned — the
classic consistent-hashing property — without maintaining a ring
structure.  Python's salted ``hash()`` is banned here (it varies per
process); weights come from a splitmix64 mix of crc32-hashed keys.
"""

from __future__ import annotations

import zlib

__all__ = ["stable_hash64", "preference_order", "rank_preferences"]

_MASK = (1 << 64) - 1


def stable_hash64(key: "str | int") -> int:
    """A 64-bit process-stable hash of a string or integer key.

    splitmix64's finalizer over the raw integer (or the crc32 of the
    UTF-8 bytes for strings): cheap, well-mixed, and identical across
    interpreters — unlike built-in ``hash()``.
    """
    if isinstance(key, str):
        z = zlib.crc32(key.encode("utf-8"))
    else:
        z = int(key) & _MASK
    z = (z + 0x9E3779B97F4A7C15) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


def preference_order(key: "str | int", n_nodes: int) -> tuple[int, ...]:
    """Every node id ranked by rendezvous weight for ``key``, best first.

    ``order[0]`` is the key's owner; ``order[1:]`` is the deterministic
    spill sequence for bounded-load fallback.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    h = stable_hash64(key)
    return tuple(sorted(range(n_nodes),
                        key=lambda node: (-stable_hash64(h ^ (node + 1)),
                                          node)))


def rank_preferences(n_keys: int, n_nodes: int) -> list[tuple[int, ...]]:
    """Precomputed :func:`preference_order` for integer keys 0..n_keys-1.

    The fluid model indexes this by path rank so the per-request hot
    path does no hashing at all.
    """
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    return [preference_order(rank, n_nodes) for rank in range(n_keys)]
