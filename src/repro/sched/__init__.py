"""Scheduling substrate: the policy registry, heterogeneity model, and
deterministic hashing shared by both client-population models.

This layer holds the pieces of the scheduler zoo that are *model-
independent*: the canonical policy registry (:mod:`registry`) that the
per-client strategies (``repro.core.policies``), the fluid decision
kernels (``repro.workload.fluid``), the CLI and the docs gate all
validate against; the per-node :class:`SpeedFactors` heterogeneity
model (:mod:`speed`) applied identically to ``ClusterSpec`` hardware
and to fluid service times; and the rendezvous hash (:mod:`hashring`)
behind the locality-aware ``chash`` policy.  See docs/SCHEDULING.md.

In the enforced layer DAG (docs/ARCHITECTURE.md) ``sched`` sits just
above ``sim``: pure data and pure functions, no hardware or protocol
dependencies, importable by every scheduling consumer above it.
"""

from .hashring import preference_order, rank_preferences, stable_hash64
from .registry import (
    POLICIES,
    PolicyInfo,
    fluid_policy_names,
    per_client_policy_names,
    policy_names,
)
from .speed import MIXED_GENERATION, SpeedFactors

__all__ = [
    "MIXED_GENERATION",
    "POLICIES",
    "PolicyInfo",
    "SpeedFactors",
    "fluid_policy_names",
    "per_client_policy_names",
    "policy_names",
    "preference_order",
    "rank_preferences",
    "stable_hash64",
]
