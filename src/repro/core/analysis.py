"""§3.3 — closed-form bound on the maximum sustained request rate.

With p nodes, average file size F, local/remote disk bandwidths b1/b2,
redirection probability d, preprocessing overhead A, redirection overhead
O, the per-node service demand of an average fetch is

    D = (1/p + d)·F/b1 + (1 − 1/p − d)·F/min(b1, b2) + A + d·(A + O)

(a 1/p + d fraction of requests find their file on the serving node's own
disk; the rest ride NFS at min(b1, b2); every request pays A once, and a
redirected request pays A again plus O).  The maximum sustained rps is
then r ≤ p / D.

The paper's worked example — b1 = 5 MB/s, b2 = 4.5 MB/s, O ≈ 0, p = 6,
per-node r = 2.88 — gives 17.3 rps for six nodes, "close to our
experimental results" (16 rps measured, §4.1 quotes 17.8 from the full
analysis in [AY95+]).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AnalysisInputs", "service_demand", "max_sustained_rps",
           "paper_example", "speedup_bound"]


@dataclass(frozen=True)
class AnalysisInputs:
    """Parameters of the §3.3 model."""

    p: int                 # number of nodes
    F: float               # average requested file size, bytes
    b1: float              # local disk bandwidth, bytes/s
    b2: float              # remote (NFS) disk bandwidth, bytes/s
    d: float = 0.0         # average redirection probability
    A: float = 0.0         # preprocessing overhead per request, s
    O: float = 0.0         # redirection overhead, s

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        if self.F < 0:
            raise ValueError(f"negative F: {self.F}")
        if self.b1 <= 0 or self.b2 <= 0:
            raise ValueError("bandwidths must be > 0")
        if not 0.0 <= self.d <= 1.0:
            raise ValueError(f"d must be a probability, got {self.d}")
        if self.d + 1.0 / self.p > 1.0 + 1e-12:
            # With few nodes and high redirection everything is local.
            pass


def service_demand(inputs: AnalysisInputs) -> float:
    """Per-node busy time consumed by one average request (D above)."""
    local_frac = min(1.0, 1.0 / inputs.p + inputs.d)
    remote_frac = max(0.0, 1.0 - local_frac)
    demand = (local_frac * inputs.F / inputs.b1
              + remote_frac * inputs.F / min(inputs.b1, inputs.b2)
              + inputs.A
              + inputs.d * (inputs.A + inputs.O))
    return demand


def max_sustained_rps(inputs: AnalysisInputs, per_node: bool = False) -> float:
    """The §3.3 bound: r ≤ p / D (or 1/D per node)."""
    demand = service_demand(inputs)
    if demand <= 0:
        return float("inf")
    r_node = 1.0 / demand
    return r_node if per_node else inputs.p * r_node


def paper_example() -> AnalysisInputs:
    """The worked example of §3.3: 6 Meiko nodes fetching 1.5 MB files.

    A is chosen so the per-node rate lands on the paper's quoted 2.88
    (the tech-report [AY95+] carries the full parameterisation; the
    conference paper only states the result).
    """
    return AnalysisInputs(p=6, F=1.5e6, b1=5e6, b2=4.5e6, d=0.0,
                          A=0.0194, O=0.0)


def speedup_bound(inputs: AnalysisInputs) -> float:
    """Throughput of p nodes over one node, per the same model."""
    single = AnalysisInputs(p=1, F=inputs.F, b1=inputs.b1, b2=inputs.b2,
                            d=0.0, A=inputs.A, O=inputs.O)
    return max_sustained_rps(inputs) / max_sustained_rps(single)
