"""SWEB's contribution: the multi-faceted distributed scheduler.

The pieces map one-to-one onto Figure 3 of the paper:

* :class:`Broker` — "determines the best possible processor to handle a
  given request" via the §3.2 cost model (:class:`CostModel`);
* :class:`Oracle` — the user-supplied request-characterisation table;
* :class:`LoadDaemon` — periodic CPU/disk/network load broadcasts and
  availability tracking (:class:`ClusterView`, :class:`LoadSnapshot`);
* the scheduling :mod:`policies <repro.core.policies>` compared in §4.2;
* :mod:`analysis <repro.core.analysis>` — the §3.3 closed-form rps bound;
* :class:`SWEBCluster` — the facade that wires a whole logical server.
"""

from .analysis import (
    AnalysisInputs,
    max_sustained_rps,
    paper_example,
    service_demand,
    speedup_bound,
)
from .adaptive_oracle import AdaptiveOracle, ClassStats
from .broker import Broker, BrokerDecision
from .costmodel import CostEstimate, CostModel, CostParameters
from .loadd import LoadDaemon
from .loadinfo import ClusterView, LoadSnapshot
from .oracle import Oracle, OracleRule, TaskEstimate
from .policies import (
    ConsistentHashPolicy,
    CPUOnlyPolicy,
    FileLocalityPolicy,
    JoinShortestQueuePolicy,
    LeastWorkLeftPolicy,
    POLICY_NAMES,
    PowerOfTwoPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    SWEBPolicy,
    make_policy,
)
from .sweb import SWEBCluster

__all__ = [
    "AdaptiveOracle",
    "AnalysisInputs",
    "Broker",
    "BrokerDecision",
    "ClassStats",
    "CPUOnlyPolicy",
    "ClusterView",
    "ConsistentHashPolicy",
    "CostEstimate",
    "CostModel",
    "CostParameters",
    "FileLocalityPolicy",
    "JoinShortestQueuePolicy",
    "LeastWorkLeftPolicy",
    "LoadDaemon",
    "LoadSnapshot",
    "Oracle",
    "OracleRule",
    "POLICY_NAMES",
    "PowerOfTwoPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "SWEBCluster",
    "SWEBPolicy",
    "SchedulingPolicy",
    "TaskEstimate",
    "make_policy",
    "max_sustained_rps",
    "paper_example",
    "service_demand",
    "speedup_bound",
]
