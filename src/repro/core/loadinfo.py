"""Load information data model.

Each SWEB processor keeps its *own* view of the cluster, fed by periodic
loadd broadcasts.  Views are therefore stale by up to one broadcast period
plus network latency — faithfully reproducing the "unsynchronized
overloading" hazard §3.2 mitigates with Δ-inflation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["LoadSnapshot", "ClusterView"]


@dataclass(frozen=True)
class LoadSnapshot:
    """What one loadd broadcast says about a node."""

    node: int
    cpu_load: float        # run-queue length (jobs in service)
    disk_load: float       # in-flight reads on the disk channel
    net_load: float        # in-flight transfers at the node's fabric port
    cpu_speed: float       # ops/s — heterogeneous nodes advertise theirs
    disk_bandwidth: float  # bytes/s
    timestamp: float       # when the sample was taken

    def aged(self, now: float) -> float:
        """Seconds since this sample was taken."""
        return now - self.timestamp


class ClusterView:
    """One node's (possibly stale) picture of every processor.

    ``staleness_timeout`` implements loadd's availability rule: a
    processor "which ha[s] not responded in a preset period of time" is
    marked unavailable (§3.1).

    ``suspicion_timeout`` adds an earlier tier for graceful degradation:
    a peer silent longer than this is *suspected* — still a priced
    candidate for un-degraded SWEB, but a graceful broker stops
    redirecting to it before the staleness timeout declares it dead.
    ``None`` collapses suspicion into staleness (one-tier behaviour).
    """

    def __init__(self, owner: int, staleness_timeout: float = 8.0,
                 suspicion_timeout: Optional[float] = None) -> None:
        if staleness_timeout <= 0:
            raise ValueError(f"staleness_timeout must be > 0, got {staleness_timeout}")
        if suspicion_timeout is not None and suspicion_timeout <= 0:
            raise ValueError(
                f"suspicion_timeout must be > 0, got {suspicion_timeout}")
        self.owner = owner
        self.staleness_timeout = float(staleness_timeout)
        self.suspicion_timeout = (float(suspicion_timeout)
                                  if suspicion_timeout is not None
                                  else float(staleness_timeout))
        self._snapshots: dict[int, LoadSnapshot] = {}

    # -- updates --------------------------------------------------------------
    def update(self, snapshot: LoadSnapshot) -> None:
        """Install a fresh broadcast (or the local self-sample)."""
        self._snapshots[snapshot.node] = snapshot

    def inflate_cpu(self, node: int, delta: float) -> None:
        """Conservatively raise a node's believed CPU load after routing a
        request to it (§3.2: "we conservatively increase the CPU load of
        p_x by Δ … Δ = 30%").

        Multiplies the believed run-queue length by (1 + Δ) and adds Δ so
        that an idle node (load 0) is also nudged; the additive term is
        what prevents the synchronized herd onto a node everyone believes
        idle.
        """
        snap = self._snapshots.get(node)
        if snap is None:
            return
        new_load = snap.cpu_load * (1.0 + delta) + delta
        self._snapshots[node] = replace(snap, cpu_load=new_load)

    def forget(self, node: int) -> None:
        self._snapshots.pop(node, None)

    # -- queries ---------------------------------------------------------------
    def get(self, node: int, now: float) -> Optional[LoadSnapshot]:
        """Snapshot for ``node`` if fresh enough, else None (unavailable)."""
        snap = self._snapshots.get(node)
        if snap is None:
            return None
        if node != self.owner and snap.aged(now) > self.staleness_timeout:
            return None
        return snap

    def available(self, now: float) -> list[LoadSnapshot]:
        """Snapshots of every node currently believed available."""
        out = []
        for node in sorted(self._snapshots):
            snap = self.get(node, now)
            if snap is not None:
                out.append(snap)
        return out

    def age(self, node: int, now: float) -> Optional[float]:
        """Seconds since ``node`` last reported, or None if never heard."""
        snap = self._snapshots.get(node)
        if snap is None:
            return None
        return snap.aged(now)

    def suspected(self, node: int, now: float) -> bool:
        """True when ``node`` has been silent past the suspicion timeout.

        The owner is never suspect (its own /proc is always current).
        Unknown nodes and fully-stale nodes also report True: anything
        not provably fresh is unsafe to redirect to under degradation.
        """
        if node == self.owner:
            return False
        aged = self.age(node, now)
        return aged is None or aged > self.suspicion_timeout

    def freshest_peer_age(self, now: float) -> Optional[float]:
        """Age of the most recent *peer* report, or None with no peers.

        This is the broker's degradation signal: when even the freshest
        peer report is old, the scheduling picture as a whole is gone
        (loadd silenced, partitioned, or every peer dead) and cost-model
        decisions are built on fiction.
        """
        ages = [snap.aged(now) for node, snap in self._snapshots.items()
                if node != self.owner]
        return min(ages) if ages else None

    def availability(self, now: float) -> dict[int, str]:
        """Three-tier availability: "available" | "suspect" | "unavailable".

        The tiers are loadd's availability rule (§3.1) refined by the
        suspicion timeout: fresh within ``suspicion_timeout`` →
        available, within ``staleness_timeout`` → suspect, older →
        unavailable.
        """
        out: dict[int, str] = {}
        for node in sorted(self._snapshots):
            if node == self.owner:
                out[node] = "available"
                continue
            aged = self._snapshots[node].aged(now)
            if aged > self.staleness_timeout:
                out[node] = "unavailable"
            elif aged > self.suspicion_timeout:
                out[node] = "suspect"
            else:
                out[node] = "available"
        return out

    def known_nodes(self) -> list[int]:
        return sorted(self._snapshots)

    def __repr__(self) -> str:
        return f"<ClusterView owner={self.owner} nodes={self.known_nodes()}>"
