"""An oracle that learns from measurements.

§3.2 closes with: "It should be noted that modeling the cost associated
with processing a HTTP request accurately is not easy.  We still need to
investigate further the design of such a function."  This module is that
future work: an oracle whose per-byte CPU estimates are corrected by
exponentially-weighted observations of what requests *actually* cost,
keyed by file extension (the same granularity as the static table).

A mis-specified configuration file then self-heals after a few requests
per class instead of skewing every broker decision forever — see
experiment X5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..web.cgi import CGIRegistry
from .oracle import Oracle, OracleRule, TaskEstimate

__all__ = ["ClassStats", "AdaptiveOracle"]


@dataclass
class ClassStats:
    """Learned cost statistics for one request class (extension)."""

    ops_per_byte: float
    observations: int = 0


def _class_of(path: str) -> str:
    """Request class key: the file extension (or the whole last segment)."""
    name = path.rsplit("/", 1)[-1]
    if "." in name:
        return "." + name.rsplit(".", 1)[-1].lower()
    return "(none)"


class AdaptiveOracle(Oracle):
    """Oracle whose table is corrected by runtime observations.

    Parameters
    ----------
    rules:
        The initial (possibly wrong) user-supplied table.
    alpha:
        EWMA weight of a new observation, in (0, 1].
    min_observations:
        Learned estimates are trusted only after this many samples per
        class (before that, the static table answers).
    """

    def __init__(self, rules: Optional[list[OracleRule]] = None,
                 cgi_registry: Optional[CGIRegistry] = None,
                 alpha: float = 0.3, min_observations: int = 3) -> None:
        super().__init__(rules=rules, cgi_registry=cgi_registry)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}")
        self.alpha = float(alpha)
        self.min_observations = int(min_observations)
        self._classes: dict[str, ClassStats] = {}

    # -- learning --------------------------------------------------------
    def observe(self, path: str, output_bytes: float, cpu_ops: float) -> None:
        """Record what serving ``path`` actually cost.

        Called by the httpd after fulfilment with the operations it
        really charged for the request's body.
        """
        if output_bytes <= 0 or cpu_ops < 0:
            return
        if self.cgi.is_cgi(path):
            return  # CGI costs come from the registry, not per-byte rates
        rate = cpu_ops / output_bytes
        key = _class_of(path)
        stats = self._classes.get(key)
        if stats is None:
            self._classes[key] = ClassStats(ops_per_byte=rate, observations=1)
        else:
            stats.ops_per_byte += self.alpha * (rate - stats.ops_per_byte)
            stats.observations += 1

    def learned(self, path: str) -> Optional[ClassStats]:
        """The trusted learned stats for ``path``'s class, if any."""
        stats = self._classes.get(_class_of(path))
        if stats is not None and stats.observations >= self.min_observations:
            return stats
        return None

    # -- characterisation -----------------------------------------------------
    def characterize(self, path: str, file_size: float) -> TaskEstimate:
        base = super().characterize(path, file_size)
        if base.is_cgi:
            return base
        stats = self.learned(path)
        if stats is None:
            return base
        return TaskEstimate(cpu_ops=stats.ops_per_byte * file_size,
                            disk_bytes=base.disk_bytes,
                            output_bytes=base.output_bytes,
                            is_cgi=False)

    def __repr__(self) -> str:
        return (f"<AdaptiveOracle classes={len(self._classes)} "
                f"alpha={self.alpha}>")
