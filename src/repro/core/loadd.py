"""loadd — the load daemon (§3.1, Figure 3).

"The loadd daemon is responsible for updating the system CPU, network and
disk load information periodically (every 2-3 seconds), and marking those
processors which have not responded in a preset period of time as
unavailable.  When a processor leaves or joins the resource pool, the
loadd daemon will be aware of the change."

Each node runs one daemon.  Every period it samples its own CPU run queue
(averaged over the window, like a Unix load average), disk channel and
fabric port, installs the sample in its own view, and ships it to every
peer over the real interconnect — so broadcasts cost CPU ops and network
bytes that show up in the §4.3 overhead measurements.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional

from ..cache import CacheDirectory, CacheReport, hot_set
from ..cluster.network import ClusterNetwork
from ..cluster.node import Node
from ..obs import MetricsRegistry
from ..sim import Event, Process, Simulator, Trace
from ..sim.trace import DETAIL as TRACE_DETAIL
from .costmodel import CostParameters
from .loadinfo import ClusterView, LoadSnapshot

__all__ = ["LoadDaemon"]


class LoadDaemon:
    """One node's load daemon."""

    def __init__(self, sim: Simulator, node: Node, view: ClusterView,
                 peer_views: dict[int, ClusterView], network: ClusterNetwork,
                 params: Optional[CostParameters] = None,
                 trace: Optional[Trace] = None,
                 registry: Optional[MetricsRegistry] = None,
                 directory: Optional[CacheDirectory] = None,
                 peer_directories: Optional[dict[int, CacheDirectory]] = None
                 ) -> None:
        self.sim = sim
        self.node = node
        self.view = view
        self.peer_views = peer_views
        self.network = network
        self.params = params or CostParameters()
        self.trace = trace
        #: cooperative cache (docs/CACHING.md): when wired, every broadcast
        #: piggybacks this node's hot cached-file set; ``peer_directories``
        #: maps peer id -> the directory a delivered report lands in
        self.directory = directory
        self.peer_directories = peer_directories or {}
        #: shared run-wide registry this daemon publishes its ``loadd.*``
        #: counters/gauges into (replaces per-report counter scraping)
        self._counters = (registry.counters("loadd")
                          if registry is not None else None)
        self._bytes_gauge = (registry.gauge("loadd.bytes_sent")
                             if registry is not None else None)
        self.broadcasts = 0
        self.messages_sent = 0
        self.bytes_sent = 0.0
        #: fault hook — heartbeat loss: the node keeps serving but its
        #: daemon stops broadcasting, so peers stale it out (docs/FAULTS.md)
        self.muted = False
        #: fault hook — load-report corruption: outgoing broadcasts carry
        #: cpu_load scaled by this factor (0.0 advertises an idle node and
        #: attracts the herd); the daemon's *own* view keeps the truth
        self.corrupt_factor: Optional[float] = None
        self._prev_cpu_integral = node.cpu.population_integral()
        self._prev_time = sim.now
        self._proc = None

    # -- sampling -----------------------------------------------------------
    def sample(self) -> LoadSnapshot:
        """Take a local load sample (window-averaged CPU run queue)."""
        now = self.sim.now
        integral = self.node.cpu.population_integral()
        window = now - self._prev_time
        if window > 0:
            cpu_load = (integral - self._prev_cpu_integral) / window
        else:
            cpu_load = self.node.cpu_load()
        self._prev_cpu_integral = integral
        self._prev_time = now
        return self._snapshot(cpu_load, now)

    def probe(self) -> LoadSnapshot:
        """Instantaneous local reading, without touching the broadcast
        window state.  The broker uses this for the *local* candidate:
        a node's own /proc is always current; only peer information is
        stale."""
        return self._snapshot(self.node.cpu_load(), self.sim.now)

    def _snapshot(self, cpu_load: float, now: float) -> LoadSnapshot:
        # Net load = fabric-port transfers plus in-flight client responses
        # on the NIC (unless the NIC *is* the shared bus, as on the NOW,
        # where node_load() already counts them).
        net_load = float(self.network.node_load(self.node.id))
        if self.node.nic is not getattr(self.network, "bus", None):
            net_load += float(self.node.nic.njobs)
        return LoadSnapshot(
            node=self.node.id,
            cpu_load=cpu_load,
            disk_load=float(self.node.disk.channel_load),
            net_load=net_load,
            cpu_speed=self.node.cpu_speed,
            disk_bandwidth=self.node.disk.bandwidth,
            timestamp=now,
        )

    # -- the daemon loop -----------------------------------------------------
    def start(self) -> Process:
        """Spawn the periodic broadcast process (returns it)."""
        if self._proc is None:
            self._proc = self.sim.spawn(self._run(), name=f"loadd@{self.node.id}")
        return self._proc

    def broadcast_now(self) -> LoadSnapshot:
        """One immediate sample + broadcast over the real interconnect."""
        snap = self.sample()
        self.view.update(snap)
        self._ship(snap)
        return snap

    def bootstrap(self) -> LoadSnapshot:
        """Install an initial sample in *every* view synchronously.

        At daemon start-up each node reads the static pool membership from
        the configuration file, so views begin fully populated rather
        than empty (otherwise the first requests would see a one-node
        cluster)."""
        snap = self.sample()
        for view in self.peer_views.values():
            view.update(snap)
        return snap

    def _run(self) -> Iterator[Event]:
        # Stagger daemons slightly by node id so broadcasts do not collide
        # on the interconnect in lock-step (deterministic, not random).
        yield self.sim.timeout(0.01 * self.node.id)
        while True:
            yield self.sim.timeout(self.params.loadd_period)
            if not self.node.alive or self.muted:
                # A departed (or heartbeat-lost) node is silent; peers
                # stale it out.
                continue
            snap = self.sample()
            self.view.update(snap)
            # The sampling/packing work is real CPU time (§4.3 charges
            # ~0.2 % of the CPU to load monitoring).
            yield self.node.compute(self.params.loadd_ops, category="loadd")
            self._ship(snap)

    def availability(self) -> dict[int, str]:
        """This daemon's current three-tier availability view
        ("available" | "suspect" | "unavailable" per known node)."""
        return self.view.availability(self.sim.now)

    def _ship(self, snap: LoadSnapshot) -> None:
        if self.corrupt_factor is not None:
            # Corruption happens on the wire: peers receive the doctored
            # report while this node's own view keeps the true sample.
            snap = replace(snap, cpu_load=snap.cpu_load * self.corrupt_factor)
        self.broadcasts += 1
        if self.trace is not None and self.trace.active:
            self.trace.emit(self.sim.now, "loadd", f"loadd-{self.node.id}",
                            "broadcast", level=TRACE_DETAIL,
                            cpu=round(snap.cpu_load, 3),
                            disk=snap.disk_load, net=snap.net_load)
        # Piggyback the hot cached-file set on the same datagram: the
        # directory costs no extra messages, only cache_report_bytes per
        # advertised path (0 by default — it rides in the report's slack).
        report: Optional[CacheReport] = None
        msg_bytes = self.params.loadd_msg_bytes
        if self.directory is not None:
            report = CacheReport(
                node=self.node.id,
                paths=hot_set(self.node.cache.entries(),
                              self.params.cache_hot_set),
                timestamp=self.sim.now)
            self.directory.update(report)
            msg_bytes += self.params.cache_report_bytes * len(report.paths)
        # One batched fan-out: the fabric drives every peer delivery from
        # a single process instead of spawning one per peer per period.
        peers = [pid for pid in self.peer_views if pid != self.node.id]
        events = self.network.multicast(self.node.id, peers, msg_bytes,
                                        tag="loadd")
        if self._counters is not None:
            self._counters.incr("broadcasts")
            self._counters.incr("messages", by=len(peers))
        if self._bytes_gauge is not None:
            self._bytes_gauge.add(msg_bytes * len(peers))
        for peer_id, done in zip(peers, events):
            self.messages_sent += 1
            self.bytes_sent += msg_bytes

            def deliver(_ev: Event,
                        view: ClusterView = self.peer_views[peer_id],
                        s: LoadSnapshot = snap,
                        directory: Optional[CacheDirectory] =
                        self.peer_directories.get(peer_id),
                        r: Optional[CacheReport] = report) -> None:
                view.update(s)
                if directory is not None and r is not None:
                    directory.update(r)

            if done.callbacks is None:
                deliver(done)
            else:
                done.callbacks.append(deliver)
