"""The oracle: SWEB's miniature expert system (§3.1, Figure 3).

"The oracle is a miniature expert system, which uses a user-supplied
table to characterize the CPU and disk demands for a particular task.
The parameters for different architectures are saved in a configuration
file."

The table maps glob patterns to cost rules; the first matching pattern
wins.  CGI programs are characterised through the :class:`CGIRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Optional

from ..web.cgi import CGIRegistry

__all__ = ["TaskEstimate", "OracleRule", "Oracle"]


@dataclass(frozen=True)
class TaskEstimate:
    """Predicted demands of one request (the broker's inputs)."""

    cpu_ops: float        # operations beyond the fixed per-request overheads
    disk_bytes: float     # bytes that must come off a disk
    output_bytes: float   # bytes that will go back to the client
    is_cgi: bool = False


@dataclass(frozen=True)
class OracleRule:
    """One row of the user-supplied table."""

    pattern: str              # glob over the request path
    ops_per_byte: float       # CPU cost proportional to the file size
    base_ops: float = 0.0     # flat CPU cost for this class of request

    def matches(self, path: str) -> bool:
        return fnmatch(path, self.pattern)


#: Default table, in operations per body byte.  The dominant per-byte CPU
#: cost is packetising/marshalling in the TCP stack (~6 ops/byte on the
#: Meiko, see CostParameters.send_ops_per_byte); text is marginally
#: cheaper to ship than images.
DEFAULT_RULES = (
    OracleRule(pattern="*.html", ops_per_byte=6.0),
    OracleRule(pattern="*.txt", ops_per_byte=5.0),
    OracleRule(pattern="*.gif", ops_per_byte=7.0),
    OracleRule(pattern="*.jpg", ops_per_byte=7.0),
    OracleRule(pattern="*.tif", ops_per_byte=7.0),   # ADL aerial photos
    OracleRule(pattern="*", ops_per_byte=6.0),
)


class Oracle:
    """Characterises requests from the table plus the CGI registry."""

    def __init__(self, rules: Optional[list[OracleRule]] = None,
                 cgi_registry: Optional[CGIRegistry] = None) -> None:
        self.rules: tuple[OracleRule, ...] = tuple(rules) if rules else DEFAULT_RULES
        if not any(rule.pattern == "*" for rule in self.rules):
            # Guarantee a catch-all so characterize() always succeeds.
            self.rules = self.rules + (OracleRule(pattern="*", ops_per_byte=0.25),)
        self.cgi = cgi_registry if cgi_registry is not None else CGIRegistry()

    @classmethod
    def from_config(cls, config: dict,
                    cgi_registry: Optional[CGIRegistry] = None) -> "Oracle":
        """Build from a configuration-file-style dict::

            {"rules": [{"pattern": "*.html", "ops_per_byte": 0.2,
                        "base_ops": 0.0}, ...]}
        """
        rules = [OracleRule(pattern=r["pattern"],
                            ops_per_byte=float(r["ops_per_byte"]),
                            base_ops=float(r.get("base_ops", 0.0)))
                 for r in config.get("rules", [])]
        return cls(rules=rules or None, cgi_registry=cgi_registry)

    def characterize(self, path: str, file_size: float) -> TaskEstimate:
        """Predict the demands of fetching ``path`` of ``file_size`` bytes.

        For CGI paths the estimate comes from the registry: the program's
        execution cost plus its (usually small) generated output.
        """
        if self.cgi.is_cgi(path):
            prog = self.cgi.lookup(path)
            return TaskEstimate(cpu_ops=prog.cpu_ops, disk_bytes=0.0,
                                output_bytes=prog.output_bytes, is_cgi=True)
        for rule in self.rules:
            if rule.matches(path):
                return TaskEstimate(
                    cpu_ops=rule.base_ops + rule.ops_per_byte * file_size,
                    disk_bytes=file_size,
                    output_bytes=file_size,
                    is_cgi=False)
        raise AssertionError("unreachable: catch-all rule guaranteed")

    def __repr__(self) -> str:
        return f"<Oracle rules={len(self.rules)} cgi={len(self.cgi)}>"
