"""The broker: SWEB's per-node scheduler (§3.1–3.2, Figure 3).

"[The httpd contains] a broker module which determines the best possible
processor to handle a given request.  The broker consults with two other
modules, the oracle and the loadd."

Given a preprocessed request, the broker (a) locates the file's home
disk, (b) asks the oracle for the task's demands, (c) prices every
available server with the multi-faceted cost model, and (d) picks the
minimum-time candidate, inflating the winner's believed CPU load by Δ
when the request is shipped away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from ..cluster.filesystem import DistributedFileSystem
from ..sim import Simulator, Trace
from .costmodel import CostEstimate, CostModel
from .loadinfo import ClusterView
from .oracle import Oracle, TaskEstimate

if TYPE_CHECKING:  # pragma: no cover
    from ..cache import CacheDirectory

__all__ = ["BrokerDecision", "Broker"]


@dataclass(frozen=True)
class BrokerDecision:
    """Outcome of one broker consultation."""

    chosen: int                      # node that should serve the request
    local: int                       # node the broker ran on
    estimates: tuple[CostEstimate, ...]  # every candidate's predicted t_s
    task: TaskEstimate

    @property
    def redirected(self) -> bool:
        return self.chosen != self.local

    def estimate_for(self, node: int) -> Optional[CostEstimate]:
        for est in self.estimates:
            if est.node == node:
                return est
        return None

    def estimate_tags(self) -> dict[str, object]:
        """Flatten the consultation into span tags (repro.obs).

        One ``est_n<id>`` key per priced candidate (predicted t_s,
        rounded so traces stay compact), plus the winner and whether the
        argmin moved the request — a trace then shows *why* the broker
        chose its node, not just that it did.
        """
        tags: dict[str, object] = {
            "winner": self.chosen,
            "local": self.local,
            "redirected": self.redirected,
        }
        for est in self.estimates:
            tags[f"est_n{est.node}"] = round(est.total, 6)
        return tags


class Broker:
    """Per-node argmin scheduler over the multi-faceted cost model."""

    def __init__(self, sim: Simulator, node_id: int, view: ClusterView,
                 oracle: Oracle, cost_model: CostModel,
                 fs: DistributedFileSystem,
                 trace: Optional[Trace] = None,
                 local_probe: Optional[Callable[[], "LoadSnapshot"]] = None,
                 directory: Optional["CacheDirectory"] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.view = view
        self.oracle = oracle
        self.cost_model = cost_model
        self.fs = fs
        self.trace = trace
        #: instantaneous self-load reading (a node's own /proc is current;
        #: only the peers' broadcast info is stale)
        self.local_probe = local_probe
        #: cooperative-cache directory (docs/CACHING.md); when wired, the
        #: t_data term prices directory-confirmed RAM copies at memory
        #: bandwidth instead of disk/NFS bandwidth
        self.directory = directory
        self.decisions = 0
        self.redirections = 0
        #: times the graceful-degradation fallback served locally because
        #: peer load information was too stale to trust
        self.fallbacks = 0

    def choose_server(self, path: str, client_latency: float) -> BrokerDecision:
        """Run step 2 of §3.2: analyse the request, price every candidate,
        and return the minimum-completion-time choice.

        Ties prefer the local node (no redirection cost is ever worth
        paying for an equal estimate), then the lowest node id.

        With ``graceful_degradation`` on, two safety rails wrap the
        argmin: when even the freshest peer report is older than
        ``fallback_staleness`` the broker serves locally (DNS rotation
        already spread arrivals, so this degrades to round-robin rather
        than trusting a fictional cost model), and individual peers
        silent past ``suspicion_timeout`` are excluded as redirect
        targets before the staleness timeout declares them dead.
        """
        now = self.sim.now
        self.decisions += 1
        params = self.cost_model.params
        if params.graceful_degradation:
            peer_age = self.view.freshest_peer_age(now)
            if peer_age is None or peer_age > params.fallback_staleness:
                self.fallbacks += 1
                if self.trace is not None:
                    self.trace.emit(now, "sched", f"broker-{self.node_id}",
                                    "stale_fallback", path=path,
                                    peer_age=(round(peer_age, 3)
                                              if peer_age is not None
                                              else None))
                file_size = (self.fs.locate(path).size
                             if self.fs.exists(path) else 0.0)
                return BrokerDecision(
                    chosen=self.node_id, local=self.node_id, estimates=(),
                    task=self.oracle.characterize(path, file_size))
        # (a) Where does the file live?
        file_home: Optional[int] = None
        file_size = 0.0
        file_wan = False
        if self.fs.exists(path):
            meta = self.fs.locate(path)
            file_home, file_size = meta.home, meta.size
            file_wan = meta.wan
        # (b) What does it demand?
        task = self.oracle.characterize(path, file_size)
        # (c) Price every available candidate.  The local node is priced
        # from an instantaneous probe when one is wired in.
        candidates = self.view.available(now)
        if params.graceful_degradation:
            # Drop suspects: a silent-but-not-yet-stale peer may be dead,
            # and redirecting a client into a dead node costs a drop.
            candidates = [c for c in candidates
                          if not self.view.suspected(c.node, now)]
        if self.local_probe is not None:
            fresh = self.local_probe()
            candidates = [fresh if c.node == self.node_id else c
                          for c in candidates]
            if all(c.node != self.node_id for c in candidates):
                candidates.append(fresh)
        home_snap = None
        if file_home is not None:
            home_snap = self.view.get(file_home, now)
            if (self.local_probe is not None and file_home == self.node_id):
                home_snap = fresh
        directory = self.directory
        estimates = tuple(
            self.cost_model.estimate(
                task, cand, home_snap, file_home,
                local=self.node_id, client_latency=client_latency,
                cached=(directory is not None and file_size > 0
                        and directory.holds(cand.node, path, now)),
                wan=file_wan)
            for cand in candidates)
        if not estimates:
            # Nobody else is known: serve locally.
            decision = BrokerDecision(chosen=self.node_id, local=self.node_id,
                                      estimates=(), task=task)
            return decision
        # (d) Argmin with deterministic tie-breaking.
        best = min(estimates,
                   key=lambda e: (e.total, e.node != self.node_id, e.node))
        decision = BrokerDecision(chosen=best.node, local=self.node_id,
                                  estimates=estimates, task=task)
        if decision.redirected:
            self.redirections += 1
            # Δ-inflation: guard against unsynchronized overloading.
            self.view.inflate_cpu(best.node, self.cost_model.params.delta)
        if self.trace is not None:
            self.trace.emit(now, "sched", f"broker-{self.node_id}",
                            "choose_server", path=path, winner=best.node,
                            t_s=round(best.total, 6),
                            candidates=len(estimates))
        return decision
