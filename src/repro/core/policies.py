"""Scheduling policies: SWEB and the baselines it is evaluated against.

§4.2 compares three strategies —

* **round-robin** ("the NCSA approach that uniformly distributes requests
  to nodes"): DNS already rotated the request here, so the node simply
  serves it;
* **file locality** ("purely exploit the file locality by assigning
  requests to the nodes that own the requested files");
* **SWEB** — the broker's multi-faceted argmin.

Plus two extra baselines used by our ablations: **cpu-only**, the
single-faceted strategy of the load-balancing literature the paper argues
against ([SHK95]), and **random**.
"""

from __future__ import annotations

from typing import Optional

from ..sim import RandomStreams
from .broker import Broker, BrokerDecision
from .oracle import TaskEstimate

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "FileLocalityPolicy",
    "SWEBPolicy",
    "CPUOnlyPolicy",
    "RandomPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class SchedulingPolicy:
    """Decides which node serves a request that DNS delivered to ``broker.node_id``.

    Every policy answers through the broker's :class:`BrokerDecision`
    shape so the server code is policy-agnostic; only SWEB actually runs
    the cost model.
    """

    name = "abstract"
    #: whether the server should charge broker-analysis CPU time
    consults_broker = False

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        raise NotImplementedError

    def _trivial(self, broker: Broker, path: str, chosen: int) -> BrokerDecision:
        file_size = broker.fs.locate(path).size if broker.fs.exists(path) else 0.0
        task = broker.oracle.characterize(path, file_size)
        return BrokerDecision(chosen=chosen, local=broker.node_id,
                              estimates=(), task=task)


class RoundRobinPolicy(SchedulingPolicy):
    """Serve wherever DNS rotation landed the request (NCSA's approach)."""

    name = "round-robin"

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        return self._trivial(broker, path, broker.node_id)


class FileLocalityPolicy(SchedulingPolicy):
    """Always move the request to the node owning the file."""

    name = "file-locality"

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        chosen = broker.node_id
        if broker.fs.exists(path):
            chosen = broker.fs.locate(path).home
        return self._trivial(broker, path, chosen)


class SWEBPolicy(SchedulingPolicy):
    """The paper's contribution: multi-faceted minimum-completion-time."""

    name = "sweb"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        return broker.choose_server(path, client_latency)


class CPUOnlyPolicy(SchedulingPolicy):
    """Single-faceted baseline: minimise the believed CPU run queue.

    This is the classic load-balancing heuristic ([SHK95], [GDI93]); it
    ignores disks and the interconnect entirely, which is exactly what
    §1 argues is insufficient for WWW workloads.
    """

    name = "cpu-only"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        best = min(candidates,
                   key=lambda s: (s.cpu_load / s.cpu_speed,
                                  s.node != broker.node_id, s.node))
        decision = self._trivial(broker, path, best.node)
        if decision.redirected:
            broker.view.inflate_cpu(best.node, broker.cost_model.params.delta)
        return decision


class RandomPolicy(SchedulingPolicy):
    """Uniform random placement (a sanity-check baseline)."""

    name = "random"

    def __init__(self, rng: Optional[RandomStreams] = None) -> None:
        self.rng = rng or RandomStreams(seed=0)

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        idx = self.rng.integers("random-policy", 0, len(candidates))
        return self._trivial(broker, path, candidates[idx].node)


POLICY_NAMES = ("round-robin", "file-locality", "sweb", "cpu-only", "random")


def make_policy(name: str, rng: Optional[RandomStreams] = None) -> SchedulingPolicy:
    """Factory used by experiment configs."""
    table = {
        "round-robin": RoundRobinPolicy,
        "file-locality": FileLocalityPolicy,
        "sweb": SWEBPolicy,
        "cpu-only": CPUOnlyPolicy,
    }
    if name == "random":
        return RandomPolicy(rng=rng)
    if name not in table:
        raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")
    return table[name]()
