"""Scheduling policies: SWEB and the baselines it is evaluated against.

§4.2 compares three strategies —

* **round-robin** ("the NCSA approach that uniformly distributes requests
  to nodes"): DNS already rotated the request here, so the node simply
  serves it;
* **file locality** ("purely exploit the file locality by assigning
  requests to the nodes that own the requested files");
* **SWEB** — the broker's multi-faceted argmin.

Plus two extra baselines used by our ablations: **cpu-only**, the
single-faceted strategy of the load-balancing literature the paper argues
against ([SHK95]), and **random** — and the modern cluster-scheduling zoo
run by the heterogeneous tournament (docs/SCHEDULING.md): **jsq** (join
the shortest queue), **po2** (power of two choices), **lwl** (least work
left, in speed-normalised seconds), and **chash** (locality-aware
rendezvous hashing with a bounded-load spill).

The canonical list of names lives in :mod:`repro.sched.registry`; this
module implements the ``per_client=True`` subset as strategy objects.
"""

from __future__ import annotations

from typing import Optional

from ..sched import per_client_policy_names, preference_order
from ..sim import RandomStreams
from .broker import Broker, BrokerDecision
from .loadinfo import LoadSnapshot
from .oracle import TaskEstimate

__all__ = [
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "FileLocalityPolicy",
    "SWEBPolicy",
    "CPUOnlyPolicy",
    "RandomPolicy",
    "JoinShortestQueuePolicy",
    "PowerOfTwoPolicy",
    "LeastWorkLeftPolicy",
    "ConsistentHashPolicy",
    "make_policy",
    "POLICY_NAMES",
]


def _job_count(snap: LoadSnapshot) -> float:
    """Believed jobs in service on a node: the sum over the three
    channels a request can occupy (CPU run queue, disk reads in flight,
    fabric-port transfers)."""
    return snap.cpu_load + snap.disk_load + snap.net_load


class SchedulingPolicy:
    """Decides which node serves a request that DNS delivered to ``broker.node_id``.

    Every policy answers through the broker's :class:`BrokerDecision`
    shape so the server code is policy-agnostic; only SWEB actually runs
    the cost model.
    """

    name = "abstract"
    #: whether the server should charge broker-analysis CPU time
    consults_broker = False

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        raise NotImplementedError

    def _trivial(self, broker: Broker, path: str, chosen: int) -> BrokerDecision:
        file_size = broker.fs.locate(path).size if broker.fs.exists(path) else 0.0
        task = broker.oracle.characterize(path, file_size)
        return BrokerDecision(chosen=chosen, local=broker.node_id,
                              estimates=(), task=task)


class RoundRobinPolicy(SchedulingPolicy):
    """Serve wherever DNS rotation landed the request (NCSA's approach)."""

    name = "round-robin"

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        return self._trivial(broker, path, broker.node_id)


class FileLocalityPolicy(SchedulingPolicy):
    """Always move the request to the node owning the file."""

    name = "file-locality"

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        chosen = broker.node_id
        if broker.fs.exists(path):
            chosen = broker.fs.locate(path).home
        return self._trivial(broker, path, chosen)


class SWEBPolicy(SchedulingPolicy):
    """The paper's contribution: multi-faceted minimum-completion-time."""

    name = "sweb"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        return broker.choose_server(path, client_latency)


class CPUOnlyPolicy(SchedulingPolicy):
    """Single-faceted baseline: minimise the believed CPU run queue.

    This is the classic load-balancing heuristic ([SHK95], [GDI93]); it
    ignores disks and the interconnect entirely, which is exactly what
    §1 argues is insufficient for WWW workloads.
    """

    name = "cpu-only"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        best = min(candidates,
                   key=lambda s: (s.cpu_load / s.cpu_speed,
                                  s.node != broker.node_id, s.node))
        decision = self._trivial(broker, path, best.node)
        if decision.redirected:
            broker.view.inflate_cpu(best.node, broker.cost_model.params.delta)
        return decision


class RandomPolicy(SchedulingPolicy):
    """Uniform random placement (a sanity-check baseline)."""

    name = "random"

    def __init__(self, rng: Optional[RandomStreams] = None) -> None:
        self.rng = rng or RandomStreams(seed=0)

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        idx = self.rng.integers("random-policy", 0, len(candidates))
        return self._trivial(broker, path, candidates[idx].node)


class JoinShortestQueuePolicy(SchedulingPolicy):
    """Join the shortest queue: argmin of believed jobs in service.

    The classic supermarket model.  Count-based, so it treats a
    half-speed node and a double-speed node as interchangeable — the
    blind spot :class:`LeastWorkLeftPolicy` fixes on heterogeneous
    clusters (docs/SCHEDULING.md).
    """

    name = "jsq"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        best = min(candidates,
                   key=lambda s: (_job_count(s),
                                  s.node != broker.node_id, s.node))
        decision = self._trivial(broker, path, best.node)
        if decision.redirected:
            broker.view.inflate_cpu(best.node, broker.cost_model.params.delta)
        return decision


class PowerOfTwoPolicy(SchedulingPolicy):
    """Power of two choices: sample two nodes, join the shorter queue.

    Two uniform samples plus one comparison buys an exponential
    improvement over purely random placement (Mitzenmacher's
    supermarket result) while reading only two nodes' state.
    """

    name = "po2"
    consults_broker = True

    def __init__(self, rng: Optional[RandomStreams] = None) -> None:
        self.rng = rng or RandomStreams(seed=0)

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        if len(candidates) == 1:
            return self._trivial(broker, path, candidates[0].node)
        i = self.rng.integers("po2-policy", 0, len(candidates))
        j = self.rng.integers("po2-policy", 0, len(candidates) - 1)
        if j >= i:                       # second sample over the rest
            j += 1
        best = min(candidates[i], candidates[j],
                   key=lambda s: (_job_count(s),
                                  s.node != broker.node_id, s.node))
        decision = self._trivial(broker, path, best.node)
        if decision.redirected:
            broker.view.inflate_cpu(best.node, broker.cost_model.params.delta)
        return decision


class LeastWorkLeftPolicy(SchedulingPolicy):
    """Least work left: argmin of outstanding *work* in seconds.

    Prices each node's believed backlog at that node's own speed —
    queued CPU jobs at ``cpu_speed``, queued reads at
    ``disk_bandwidth`` — using the oracle's characterisation of the
    current request as the typical queued job.  Dividing by speed is
    the whole point: a 2x node with four queued jobs drains them as
    fast as a 1x node drains two, so fast nodes absorb proportionally
    more load on heterogeneous clusters.
    """

    name = "lwl"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        file_size = (broker.fs.locate(path).size
                     if broker.fs.exists(path) else 0.0)
        task = broker.oracle.characterize(path, file_size)
        cpu_ops = max(task.cpu_ops, 1.0)
        disk_bytes = max(task.disk_bytes, 0.0)

        def backlog_seconds(s: LoadSnapshot) -> float:
            return (s.cpu_load * cpu_ops / s.cpu_speed
                    + s.disk_load * disk_bytes / s.disk_bandwidth)

        best = min(candidates,
                   key=lambda s: (backlog_seconds(s),
                                  s.node != broker.node_id, s.node))
        decision = BrokerDecision(chosen=best.node, local=broker.node_id,
                                  estimates=(), task=task)
        if decision.redirected:
            broker.view.inflate_cpu(best.node, broker.cost_model.params.delta)
        return decision


class ConsistentHashPolicy(SchedulingPolicy):
    """Locality-aware consistent hashing with a bounded-load spill.

    Rendezvous-hashes the path to an owner node so each node's page
    cache accumulates a stable shard of the corpus; when the owner's
    believed queue exceeds the bounded-load threshold (2x the cluster
    mean), the request spills down the deterministic preference order
    to the first underloaded node (cf. consistent hashing with bounded
    loads, arXiv:1608.01350).
    """

    name = "chash"
    consults_broker = True

    def decide(self, broker: Broker, path: str,
               client_latency: float) -> BrokerDecision:
        now = broker.sim.now
        candidates = broker.view.available(now)
        if not candidates:
            return self._trivial(broker, path, broker.node_id)
        counts = {s.node: _job_count(s) for s in candidates}
        bound = 2.0 * (sum(counts.values()) / len(counts)) + 1.0
        order = preference_order(path, len(broker.fs.nodes))
        chosen = None
        for node in order:
            if node not in counts:
                continue
            if chosen is None:           # owner = first available in order
                chosen = node
            if counts[node] <= bound:
                chosen = node
                break
        if chosen is None:
            chosen = candidates[0].node
        decision = self._trivial(broker, path, chosen)
        if decision.redirected:
            broker.view.inflate_cpu(chosen, broker.cost_model.params.delta)
        return decision


#: Per-client policy names, in canonical order — derived from the
#: registry (:mod:`repro.sched.registry`), never hand-listed.
POLICY_NAMES = per_client_policy_names()


def make_policy(name: str, rng: Optional[RandomStreams] = None) -> SchedulingPolicy:
    """Factory used by experiment configs."""
    table = {
        "round-robin": RoundRobinPolicy,
        "file-locality": FileLocalityPolicy,
        "sweb": SWEBPolicy,
        "cpu-only": CPUOnlyPolicy,
        "jsq": JoinShortestQueuePolicy,
        "lwl": LeastWorkLeftPolicy,
        "chash": ConsistentHashPolicy,
    }
    if name == "random":
        return RandomPolicy(rng=rng)
    if name == "po2":
        return PowerOfTwoPolicy(rng=rng)
    if name not in table:
        raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")
    return table[name]()
