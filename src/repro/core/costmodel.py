"""The multi-faceted cost model (§3.2).

For an HTTP request r arriving at processor x, the broker estimates, for
every candidate server s:

    t_s = t_redirection + t_data + t_CPU + t_net

with the terms defined exactly as in the paper:

* ``t_redirection = 2 · t_client_server_latency + t_connect`` when s ≠ x,
  zero otherwise — the browser's extra round trip after a 302.
* ``t_data = F / b_disk_eff`` when the file is local to s, else
  ``F / min(b_disk_eff, b_net_eff)`` — bandwidths de-rated by the
  measured channel loads (load₁, load₂).
* ``t_CPU = ops_required · (1 + CPU_load) / CPU_speed`` — the run-queue
  seen in s's last broadcast; heterogeneous speeds enter here.
* ``t_net`` — time to return the result over the Internet; "we assume all
  processors will have basically the same cost for this term, so it is
  not estimated" (kept as an optional term for the ablation study X1).

The knockout flags exist so experiment X1 can turn individual terms off
and show each one earns its keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .loadinfo import LoadSnapshot
from .oracle import TaskEstimate

__all__ = ["CostParameters", "CostEstimate", "CostModel"]


@dataclass(frozen=True)
class CostParameters:
    """Every tunable of the SWEB scheduler, with paper-calibrated defaults."""

    # --- scheduler behaviour ---
    delta: float = 0.30              # Δ, conservative CPU-load inflation
    max_redirects: int = 1           # "not … redirected more than once"
    # Reassignment mechanism: "URL redirection or request forwarding,
    # could be used … and we use the former" (§3.1).  "forward" enables
    # the road not taken, for experiment X4.
    reassignment: str = "redirect"
    # Future-work extension (§3.2 footnote): execute POSTs as CGIs.
    enable_post: bool = False
    # --- fixed per-request CPU costs, in operations (÷40e6 → seconds on a
    #     Meiko node): 70 ms preprocess, ~2 ms analysis, 4 ms redirect gen.
    preprocess_ops: float = 2.4e6    # parse + pathname + permissions
    fork_ops: float = 4.0e5          # fork a handling process (10 ms)
    analysis_ops: float = 8.0e4      # broker cost estimation (1–4 ms)
    redirect_ops: float = 1.6e5      # generating the 302 (4 ms)
    # Packetising/marshalling CPU per body byte ("processor load, caused by
    # the overhead necessary to send bytes out on the network properly
    # packetized and marshaled", §3).  6 ops/byte on a 40 Mops CPU caps a
    # single socket stream at ~6.7 MB/s — the 5–15 %-of-peak regime the
    # authors measured for TCP on the Meiko.  Charged concurrently with
    # the wire transfer (the stack overlaps with DMA).
    send_ops_per_byte: float = 6.0
    # --- network timing ---
    connect_time: float = 20e-3      # t_connect: TCP setup at the server
    # "The estimate of the link latency is available from the TCP/IP
    # implementation, but in the initial implementation is hand-coded into
    # the server" (§3.2).  When set, the broker prices t_redirection with
    # this constant instead of the true per-client latency; None = use the
    # measured latency (the paper's planned refinement).
    assumed_client_latency: Optional[float] = 30e-3
    # --- loadd ---
    loadd_period: float = 2.5        # broadcast every 2–3 s
    loadd_msg_bytes: float = 128.0   # one load report on the wire
    loadd_ops: float = 2.0e5         # CPU per broadcast (5 ms; §4.3 charges
                                     # ~0.2 % of the CPU to load monitoring)
    staleness_timeout: float = 8.0   # unavailable after ~3 missed periods
    # --- graceful degradation (the fault-tolerance layer; docs/FAULTS.md) ---
    # Master switch.  Off by default: the paper's SWEB neither retried
    # refused connections nor second-guessed its own cost model, and the
    # reproduction's baseline behaviour must stay paper-faithful.  The
    # faults experiment (X9) and `sweb-repro serve --graceful` turn it on.
    graceful_degradation: bool = False
    # Peer load info older than this means scheduling data is effectively
    # gone (loadd silent / partitioned): the broker stops trusting the
    # cost model and falls back to serving locally, which — because DNS
    # already rotates arrivals — degrades to round-robin.  Between one
    # missed broadcast (2.5 s) and the staleness timeout (8 s).
    fallback_staleness: float = 6.0
    # A peer silent this long is *suspected*: still priced as a candidate
    # hop target by un-degraded SWEB, but a graceful broker stops
    # redirecting to it before the full staleness timeout declares it
    # dead.  One missed broadcast plus slack.
    suspicion_timeout: float = 4.0
    # Bounded client retry: a refused or reset connection is retried at a
    # freshly-resolved node at most this many times (0 disables even when
    # graceful_degradation is on).  The at-most-once redirect rule is
    # preserved: a retried request never follows a second 302.
    client_retries: int = 2
    # First retry backoff in seconds; doubles per attempt (0.2, 0.4, ...).
    retry_backoff: float = 0.2
    # --- ablation knockouts (all on for real SWEB) ---
    use_data_term: bool = True
    use_cpu_term: bool = True
    use_net_term: bool = False       # paper: identical across nodes → skipped
    use_redirection_term: bool = True
    # --- assumed Internet bandwidth for t_net when enabled ---
    internet_bandwidth: float = 1e6
    # --- cooperative cache & hot-file replication (docs/CACHING.md) ---
    # Master switch for the repro.cache subsystem: loadd piggybacks each
    # node's hot cached-file set on its broadcasts and brokers consult
    # the resulting CacheDirectory when pricing t_data.
    coop_cache: bool = False
    # Run the ReplicationDaemon (requires coop_cache for the directory
    # to advertise the copies it creates).
    replicate: bool = False
    # Ablation knockout: with coop_cache on but use_cache_term off, the
    # directory is maintained (same wire traffic, same events) yet never
    # consulted by t_data — the X10 control that must reproduce plain
    # SWEB numbers exactly.
    use_cache_term: bool = True
    # Top-K resident files (by bytes·recency) advertised per broadcast.
    cache_hot_set: int = 8
    # Directory entries older than this are ignored, so muted or
    # partitioned peers age out of the cache view just as they age out
    # of the load view.  Matches staleness_timeout by default.
    cache_report_ttl: float = 8.0
    # Extra wire bytes per advertised path.  0.0 = the report rides in
    # the slack of the existing 128-byte loadd message (a handful of
    # path hashes fits), keeping coop broadcasts bit-identical to plain.
    cache_report_bytes: float = 0.0
    # --- replication-daemon knobs ---
    replication_period: float = 2.0      # skew scan interval (s)
    replication_factor: int = 3          # target cache copies per hot file
    replication_skew: float = 2.0        # hot = bytes >= skew x mean bytes
    replication_max_per_cycle: int = 4   # transfer budget per scan

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise ValueError(f"negative delta: {self.delta}")
        if self.max_redirects < 0:
            raise ValueError(f"negative max_redirects: {self.max_redirects}")
        if self.loadd_period <= 0:
            raise ValueError(f"loadd_period must be > 0: {self.loadd_period}")
        if self.reassignment not in ("redirect", "forward"):
            raise ValueError(
                f"reassignment must be 'redirect' or 'forward', "
                f"got {self.reassignment!r}")
        if self.fallback_staleness <= 0:
            raise ValueError(
                f"fallback_staleness must be > 0: {self.fallback_staleness}")
        if self.suspicion_timeout <= 0:
            raise ValueError(
                f"suspicion_timeout must be > 0: {self.suspicion_timeout}")
        if self.client_retries < 0:
            raise ValueError(f"negative client_retries: {self.client_retries}")
        if self.retry_backoff < 0:
            raise ValueError(f"negative retry_backoff: {self.retry_backoff}")
        if self.replicate and not self.coop_cache:
            raise ValueError("replicate requires coop_cache (the directory "
                             "advertises the replicas)")
        if self.cache_hot_set < 1:
            raise ValueError(f"cache_hot_set must be >= 1: {self.cache_hot_set}")
        if self.cache_report_ttl <= 0:
            raise ValueError(
                f"cache_report_ttl must be > 0: {self.cache_report_ttl}")
        if self.cache_report_bytes < 0:
            raise ValueError(
                f"negative cache_report_bytes: {self.cache_report_bytes}")
        if self.replication_period <= 0:
            raise ValueError(
                f"replication_period must be > 0: {self.replication_period}")
        if self.replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1: {self.replication_factor}")
        if self.replication_skew < 1.0:
            raise ValueError(
                f"replication_skew must be >= 1: {self.replication_skew}")
        if self.replication_max_per_cycle < 1:
            raise ValueError(f"replication_max_per_cycle must be >= 1: "
                             f"{self.replication_max_per_cycle}")


@dataclass(frozen=True)
class CostEstimate:
    """The broker's prediction for one candidate server."""

    node: int
    t_redirection: float
    t_data: float
    t_cpu: float
    t_net: float

    @property
    def total(self) -> float:
        return self.t_redirection + self.t_data + self.t_cpu + self.t_net


class CostModel:
    """Evaluates t_s for candidate servers from (stale) load snapshots."""

    def __init__(self, params: Optional[CostParameters] = None,
                 net_bandwidth: float = 40e6,
                 mem_bandwidth: float = 80e6,
                 wan_bandwidth: Optional[float] = None,
                 wan_latency: float = 0.0) -> None:
        self.params = params or CostParameters()
        #: peak bandwidth of the intra-cluster fabric (b_net in §3.2)
        self.net_bandwidth = float(net_bandwidth)
        #: memory-copy bandwidth used to price a directory-confirmed
        #: RAM-resident file (the cooperative-cache t_data fast path)
        self.mem_bandwidth = float(mem_bandwidth)
        #: WAN uplink to the geo origin (docs/GEO.md); ``None`` for a
        #: single-cluster deployment, where ``wan``-flagged files never
        #: occur and t_data stays exactly the §3.2 formula
        self.wan_bandwidth = float(wan_bandwidth) if wan_bandwidth else None
        #: one-way WAN latency to the origin, added to a cache-miss fetch
        self.wan_latency = float(wan_latency)

    # -- individual terms ---------------------------------------------------
    def t_redirection(self, candidate: int, local: int,
                      client_latency: float) -> float:
        """2 · latency + t_connect if the request must move, else 0.

        Uses the hand-coded latency constant when configured (the paper's
        initial implementation), else the measured client latency.
        """
        if not self.params.use_redirection_term:
            return 0.0
        if candidate == local:
            return 0.0
        if self.params.assumed_client_latency is not None:
            client_latency = self.params.assumed_client_latency
        return 2.0 * client_latency + self.params.connect_time

    def t_data(self, est: TaskEstimate, candidate: LoadSnapshot,
               home: Optional[LoadSnapshot], file_home: Optional[int],
               cached: bool = False, wan: bool = False) -> float:
        """Disk (and, if remote, interconnect) time for the file bytes.

        ``cached`` means the cooperative-cache directory believes the
        candidate holds the file in RAM: the bytes then move at
        memory-copy bandwidth regardless of where the home disk is —
        LARD-style locality-aware pricing.  The ``use_cache_term``
        knockout restores the RAM-blind estimate for ablation.

        ``wan`` means the authoritative copy sits across a WAN link (the
        geo tier's origin): a non-cached fetch then pays the link latency
        plus the bytes at WAN bandwidth — nothing the candidate's local
        disk can speed up.  Ignored when no WAN is configured.
        """
        if not self.params.use_data_term or est.disk_bytes <= 0:
            return 0.0
        if cached and self.params.use_cache_term:
            return est.disk_bytes / self.mem_bandwidth
        if wan and self.wan_bandwidth is not None:
            return self.wan_latency + est.disk_bytes / self.wan_bandwidth
        if file_home is None:
            return 0.0
        if file_home == candidate.node:
            b_disk = candidate.disk_bandwidth / (1.0 + candidate.disk_load)
            return est.disk_bytes / b_disk
        # Remote: the home disk feeds the interconnect; the slower governs.
        if home is not None:
            b_disk = home.disk_bandwidth / (1.0 + home.disk_load)
        else:
            # Home's load unknown (stale): assume its disk unloaded.
            b_disk = candidate.disk_bandwidth
        b_net = self.net_bandwidth / (1.0 + candidate.net_load)
        return est.disk_bytes / min(b_disk, b_net)

    def t_cpu(self, est: TaskEstimate, candidate: LoadSnapshot,
              local: bool = False) -> float:
        """Queue-inflated CPU time for the *remaining* per-request work.

        The local node has already forked a handler and parsed the
        request; a remote candidate must redo both on arrival ("t_CPU is
        the time to fork a process, …").  This asymmetry is the natural
        hysteresis that keeps SWEB from redirecting on noise.
        """
        if not self.params.use_cpu_term:
            return 0.0
        # est.cpu_ops already includes the oracle's per-byte send estimate.
        ops = est.cpu_ops
        if not local:
            ops += self.params.fork_ops + self.params.preprocess_ops
        return ops * (1.0 + candidate.cpu_load) / candidate.cpu_speed

    def t_net(self, est: TaskEstimate) -> float:
        """Internet return time; identical across candidates, so normally 0."""
        if not self.params.use_net_term:
            return 0.0
        return est.output_bytes / self.params.internet_bandwidth

    # -- the full t_s ----------------------------------------------------------
    def estimate(self, est: TaskEstimate, candidate: LoadSnapshot,
                 home: Optional[LoadSnapshot], file_home: Optional[int],
                 local: int, client_latency: float,
                 cached: bool = False, wan: bool = False) -> CostEstimate:
        """Predict the completion time if ``candidate`` serves the request."""
        return CostEstimate(
            node=candidate.node,
            t_redirection=self.t_redirection(candidate.node, local, client_latency),
            t_data=self.t_data(est, candidate, home, file_home, cached=cached,
                               wan=wan),
            t_cpu=self.t_cpu(est, candidate, local=(candidate.node == local)),
            t_net=self.t_net(est),
        )
