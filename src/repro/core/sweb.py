"""SWEBCluster — the facade wiring Figure 2 together.

One object builds the whole logical server: the multicomputer hardware
(nodes, disks, caches, interconnect), the distributed file system, the
round-robin DNS front end, one httpd + broker + oracle + loadd per node,
and the metrics plumbing.  This is the main entry point of the library::

    from repro import SWEBCluster, meiko_cs2

    cluster = SWEBCluster(meiko_cs2(), policy="sweb", seed=1)
    cluster.add_file("/maps/sb.tif", 1.5e6, home=0)
    cluster.run(until=cluster.fetch("/maps/sb.tif"))
    print(cluster.metrics.response_summary())

Always bound :meth:`run` (by an event, process or time): the loadd
daemons broadcast forever, so an unbounded run never quiesces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

from ..cluster.topology import BuiltCluster, ClusterSpec, meiko_cs2
from ..obs import MetricsRegistry, Tracer
from ..sim import Process, RandomStreams, Simulator, Trace

if TYPE_CHECKING:
    from ..faults import FaultInjector, FaultPlan
from ..cache import CacheDirectory, FileHeat, ReplicationDaemon
from ..web.cgi import CGIRegistry
from ..web.client import Client, ClientProfile, UCSB_CLIENT
from ..web.dns import RoundRobinDNS
from ..web.metrics import Metrics
from ..web.server import HTTPServer
from .broker import Broker
from .costmodel import CostModel, CostParameters
from .loadd import LoadDaemon
from .loadinfo import ClusterView
from .oracle import Oracle
from .policies import SchedulingPolicy, make_policy

__all__ = ["SWEBCluster"]


class SWEBCluster:
    """The complete SWEB logical server on a simulated multicomputer."""

    def __init__(self,
                 spec: Optional[ClusterSpec] = None,
                 policy: Union[str, SchedulingPolicy] = "sweb",
                 params: Optional[CostParameters] = None,
                 oracle: Optional[Oracle] = None,
                 cgi_registry: Optional[CGIRegistry] = None,
                 seed: int = 0,
                 backlog: int = 64,
                 dns_ttl: float = 0.0,
                 trace: Optional[Trace] = None,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 start_loadd: bool = True,
                 dispatcher: Optional[int] = None,
                 sim: Optional[Simulator] = None,
                 built: Optional[BuiltCluster] = None) -> None:
        """``dispatcher`` enables the centralized design §3.1 *rejected*:
        every request enters through that one node, whose scheduler
        re-routes it.  "We did not take this approach mainly because …
        the single central distributor becomes a single point of failure"
        — see experiment X7 for the quantified reasons.

        ``sim``/``built`` let a host (the geo tier) share one event loop
        across several clusters and substitute a pre-built hardware
        stack; by default the cluster owns a fresh Simulator and builds
        its own hardware from ``spec``."""
        self.spec = spec or meiko_cs2()
        self.params = params or CostParameters()
        self.rng = RandomStreams(seed=seed)
        self.sim = sim if sim is not None else Simulator()
        self.trace = trace
        #: per-request span tracer (docs/TRACING.md); observation-only,
        #: so attaching one never alters simulation results
        self.tracer = tracer
        #: run-wide metrics registry every subsystem publishes into
        #: (http.* from Metrics, loadd.*, cache.*; docs/METRICS.md)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.metrics = Metrics(registry=self.registry)
        #: real HTML markup for pages (filled by html_site_corpus; used by
        #: the BrowserSession model to discover inline images)
        self.page_markup: dict[str, str] = {}

        if built is None:
            built = self.spec.build(self.sim)
        self.built = built
        self.nodes = built.nodes
        self.network = built.network
        self.fs = built.fs
        # The file system is built by the topology layer, which knows
        # nothing about observability; hand it the tracer afterwards so
        # NFS/replica/peer-cache reads can record spans.
        self.fs.tracer = tracer
        self.internet = built.internet

        self.cgi = cgi_registry if cgi_registry is not None else CGIRegistry()
        self.oracle = (oracle if oracle is not None
                       else Oracle(cgi_registry=self.cgi))
        if isinstance(policy, str):
            policy = make_policy(policy, rng=self.rng)
        self.policy = policy
        self.cost_model = CostModel(
            self.params, net_bandwidth=self.spec.network_bandwidth,
            mem_bandwidth=min(n.mem.rate for n in self.nodes))

        if dispatcher is not None:
            if not 0 <= dispatcher < len(self.nodes):
                raise ValueError(f"bad dispatcher node {dispatcher}")
            zone = [dispatcher]
        else:
            zone = [n.id for n in self.nodes]
        self.dispatcher = dispatcher
        self.dns = RoundRobinDNS(self.sim, zone, ttl=dns_ttl)

        # Cooperative cache & replication (docs/CACHING.md): one directory
        # per node fed by piggybacked loadd reports; heat counters and the
        # replication daemon only when proactive replication is enabled.
        self.directories: dict[int, CacheDirectory] = {}
        self.heat: Optional[FileHeat] = None
        self.replicator: Optional[ReplicationDaemon] = None
        if self.params.coop_cache:
            self.directories = {
                n.id: CacheDirectory(owner=n.id,
                                     ttl=self.params.cache_report_ttl,
                                     local_probe=n.cache.__contains__)
                for n in self.nodes}
        if self.params.replicate:
            self.heat = FileHeat()
            self.replicator = ReplicationDaemon.from_params(
                self.sim, self.nodes, self.fs, self.network, self.heat,
                self.params, trace=self.trace, registry=self.registry)

        # Per-node distributed state: view, broker, httpd, loadd.
        self.views: dict[int, ClusterView] = {
            n.id: ClusterView(owner=n.id,
                              staleness_timeout=self.params.staleness_timeout,
                              suspicion_timeout=self.params.suspicion_timeout)
            for n in self.nodes}
        self.loadds: dict[int, LoadDaemon] = {
            n.id: LoadDaemon(self.sim, n, self.views[n.id], self.views,
                             self.network, params=self.params,
                             trace=self.trace, registry=self.registry,
                             directory=self.directories.get(n.id),
                             peer_directories=self.directories)
            for n in self.nodes}
        self.brokers: dict[int, Broker] = {
            n.id: Broker(self.sim, n.id, self.views[n.id], self.oracle,
                         self.cost_model, self.fs, trace=self.trace,
                         local_probe=self.loadds[n.id].probe,
                         directory=self.directories.get(n.id))
            for n in self.nodes}
        self.servers: dict[int, HTTPServer] = {
            n.id: HTTPServer(self.sim, n, self.fs, self.internet,
                             self.policy, self.brokers[n.id],
                             cgi_registry=self.cgi, params=self.params,
                             backlog=backlog, trace=self.trace,
                             tracer=tracer, heat=self.heat)
            for n in self.nodes}
        # Wire the httpds together for the forwarding mechanism.
        for server in self.servers.values():
            server.peers = self.servers
        # Populate every view before the first request, then go periodic.
        for daemon in self.loadds.values():
            daemon.bootstrap()
            if start_loadd:
                daemon.start()
        if self.replicator is not None and start_loadd:
            self.replicator.start()

    # -- content ----------------------------------------------------------
    def add_file(self, path: str, size: float, home: int) -> None:
        """Place one document on a node's disk."""
        self.fs.add_file(path, size, home)

    def add_striped_file(self, path: str, size: float,
                         stripes: Sequence[int]) -> None:
        """Stripe one document across several nodes' disks (§1's parallel
        retrieval from inexpensive disks)."""
        self.fs.add_striped_file(path, size, stripes)

    def add_cgi(self, path: str, cpu_ops: float, output_bytes: float,
                reads_path: Optional[str] = None) -> None:
        """Register a CGI program (visible to both httpd and oracle)."""
        self.cgi.add(path, cpu_ops, output_bytes, reads_path=reads_path)

    # -- clients ---------------------------------------------------------------
    def client(self, profile: ClientProfile = UCSB_CLIENT,
               timeout: float = 120.0) -> Client:
        """A client handle bound to this cluster's metrics."""
        return Client(self, profile=profile, timeout=timeout)

    def fetch(self, path: str, profile: ClientProfile = UCSB_CLIENT,
              timeout: float = 120.0) -> Process:
        """Convenience: spawn a single request, return its Process."""
        return self.client(profile, timeout=timeout).fetch(path)

    # -- execution ------------------------------------------------------------
    def run(self, until: Any = None) -> Any:
        """Advance the simulation to ``until`` (an event, process or
        time).  Pass one whenever loadd is running: the periodic
        broadcasts keep the event queue non-empty forever, so an
        unbounded run only quiesces with ``start_loadd=False``."""
        return self.sim.run(until=until)

    # -- membership churn --------------------------------------------------------
    def node_leave(self, node_id: int, update_dns: bool = False) -> None:
        """Take a node out of the pool.  loadd goes silent, so peers mark
        it unavailable after the staleness timeout; DNS keeps rotating to
        it unless ``update_dns`` (administrators are slower than loadd)."""
        self.nodes[node_id].leave()
        if update_dns:
            self.dns.deregister(node_id)

    def node_join(self, node_id: int, update_dns: bool = True) -> None:
        """Bring a node (back) into the pool."""
        self.nodes[node_id].join()
        self.loadds[node_id].broadcast_now()
        if update_dns:
            self.dns.register(node_id)

    def node_crash(self, node_id: int) -> None:
        """Abrupt failure: unlike :meth:`node_leave`, in-flight connections
        are reset (clients see an immediate failure, not a 120 s silence)
        and loadd falls silent so peers stale the node out.  DNS keeps
        rotating to it — a crash never files a zone update."""
        self.nodes[node_id].crash()
        self.servers[node_id].reset_connections()

    def node_restart(self, node_id: int) -> None:
        """Recover from a crash: the node rejoins and its loadd
        immediately re-announces so peers un-stale it without waiting a
        full broadcast period."""
        self.nodes[node_id].restart()
        self.loadds[node_id].broadcast_now()

    # -- fault injection --------------------------------------------------------
    def attach_faults(
            self, plan: Union[str, "FaultPlan"]) -> "FaultInjector":
        """Attach and start a :class:`~repro.faults.plan.FaultPlan` (or a
        CLI spec string for one); returns the running injector."""
        from ..faults import FaultInjector, FaultPlan

        if isinstance(plan, str):
            plan = FaultPlan.parse(plan)
        return FaultInjector(self, plan).start()

    def availability(self, node_id: int = 0) -> dict[int, str]:
        """Node ``node_id``'s three-tier availability view of the cluster
        ("available" | "suspect" | "unavailable"; see ClusterView)."""
        return self.loadds[node_id].availability()

    def total_fallbacks(self) -> int:
        """Stale-load round-robin fallbacks across all brokers."""
        return sum(b.fallbacks for b in self.brokers.values())

    # -- accounting (§4.3) ---------------------------------------------------------
    def cpu_seconds_by_category(self) -> dict[str, float]:
        """Total CPU seconds per work category across all nodes."""
        totals: dict[str, float] = {}
        for node in self.nodes:
            for cat, secs in node.cpu_seconds_by_category().items():
                totals[cat] = totals.get(cat, 0.0) + secs
        return totals

    def cpu_share_by_category(self) -> dict[str, float]:
        """Fraction of the cluster's *elapsed* CPU capacity used per
        category — the paper's "% of CPU cycles" numbers."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return {}
        capacity = elapsed * len(self.nodes)
        return {cat: secs / capacity
                for cat, secs in self.cpu_seconds_by_category().items()}

    def total_redirections(self) -> int:
        return sum(s.redirects_issued for s in self.servers.values())

    # -- cooperative cache (docs/CACHING.md) -----------------------------------
    def page_cache_stats(self) -> dict[int, dict[str, float]]:
        """Per-node page-cache counters (hits/misses/evictions/used/capacity)."""
        return {n.id: {"hits": float(n.cache.hits),
                       "misses": float(n.cache.misses),
                       "evictions": float(n.cache.evictions),
                       "used_bytes": n.cache.used_bytes,
                       "capacity_bytes": n.cache.capacity}
                for n in self.nodes}

    def page_cache_hit_rate(self) -> float:
        """Aggregate page-cache hit rate across every node's RAM."""
        hits = sum(n.cache.hits for n in self.nodes)
        total = hits + sum(n.cache.misses for n in self.nodes)
        return hits / total if total else 0.0

    def total_replications(self) -> int:
        """Hot-file copies landed by the replication daemon (0 when off)."""
        return self.replicator.replications if self.replicator else 0

    def __repr__(self) -> str:
        return (f"<SWEBCluster {self.spec.name!r} nodes={len(self.nodes)} "
                f"policy={self.policy.name!r}>")
