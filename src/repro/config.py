"""Configuration files.

§3.1/§3.2: "The parameters for different architectures are saved in a
configuration file."  This module round-trips the three parameter
surfaces — the cluster hardware (:class:`ClusterSpec`), the scheduler
(:class:`CostParameters`) and the oracle table — through plain dicts /
JSON, so a deployment is one reviewable text file::

    {
      "cluster": {"preset": "meiko", "nodes": 6},
      "scheduler": {"delta": 0.3, "loadd_period": 2.5},
      "oracle": {"rules": [{"pattern": "*.tif", "ops_per_byte": 7.0}]}
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Optional, Union

from .cluster.topology import ClusterSpec, NodeSpec, heterogeneous_now, meiko_cs2, sun_now
from .core.costmodel import CostParameters
from .core.oracle import Oracle

__all__ = [
    "cluster_spec_to_dict",
    "cluster_spec_from_dict",
    "cost_parameters_to_dict",
    "cost_parameters_from_dict",
    "load_config",
    "dump_config",
    "SWEBConfig",
]

_PRESETS = {
    "meiko": meiko_cs2,
    "now": sun_now,
    "hetnow": lambda n: heterogeneous_now(),
}


# ------------------------------------------------------------- ClusterSpec
def cluster_spec_to_dict(spec: ClusterSpec) -> dict:
    """Serialise a ClusterSpec (including per-node hardware)."""
    return {
        "name": spec.name,
        "network_kind": spec.network_kind,
        "network_bandwidth": spec.network_bandwidth,
        "network_latency": spec.network_latency,
        "network_background_load": spec.network_background_load,
        "nfs_penalty": spec.nfs_penalty,
        "shared_nic_is_bus": spec.shared_nic_is_bus,
        "nodes": [dataclasses.asdict(ns) for ns in spec.nodes],
    }


def cluster_spec_from_dict(data: dict) -> ClusterSpec:
    """Build a ClusterSpec from a config dict.

    Either ``{"preset": "meiko"|"now"|"hetnow", "nodes": <count>}`` or a
    full explicit description as produced by :func:`cluster_spec_to_dict`.
    """
    if "preset" in data:
        preset = data["preset"]
        factory = _PRESETS.get(preset)
        if factory is None:
            raise ValueError(f"unknown preset {preset!r}; "
                             f"choose from {sorted(_PRESETS)}")
        count = data.get("nodes", 6 if preset == "meiko" else 4)
        if not isinstance(count, int) or count < 1:
            raise ValueError(f"preset node count must be a positive int, "
                             f"got {count!r}")
        return factory(count)
    nodes = tuple(NodeSpec(**ns) for ns in data["nodes"])
    kwargs = {k: v for k, v in data.items() if k != "nodes"}
    return ClusterSpec(nodes=nodes, **kwargs)


# --------------------------------------------------------- CostParameters
def cost_parameters_to_dict(params: CostParameters) -> dict:
    return dataclasses.asdict(params)


def cost_parameters_from_dict(data: dict) -> CostParameters:
    """Build CostParameters, rejecting unknown keys loudly."""
    known = {f.name for f in dataclasses.fields(CostParameters)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown scheduler parameters: {sorted(unknown)}")
    return CostParameters(**data)


# ------------------------------------------------------------- whole config
@dataclasses.dataclass
class SWEBConfig:
    """Everything needed to stand up a cluster from one file."""

    spec: ClusterSpec
    params: CostParameters
    oracle: Oracle
    policy: str = "sweb"
    seed: int = 0
    backlog: int = 64
    dns_ttl: float = 0.0

    def build(self):
        """Instantiate the configured SWEBCluster."""
        from .core.sweb import SWEBCluster

        return SWEBCluster(spec=self.spec, policy=self.policy,
                           params=self.params, oracle=self.oracle,
                           cgi_registry=self.oracle.cgi, seed=self.seed,
                           backlog=self.backlog, dns_ttl=self.dns_ttl)


def load_config(source: Union[str, Path, dict]) -> SWEBConfig:
    """Parse a config dict, JSON string, or JSON file path."""
    if isinstance(source, Path):
        data = json.loads(source.read_text())
    elif isinstance(source, str):
        stripped = source.lstrip()
        if stripped.startswith("{") or stripped.startswith("["):
            data = json.loads(source)        # inline JSON text
        else:
            data = json.loads(Path(source).read_text())
    else:
        data = source
    if not isinstance(data, dict):
        raise ValueError(f"config must be a JSON object, got {type(data)}")
    spec = cluster_spec_from_dict(data.get("cluster", {"preset": "meiko"}))
    params = cost_parameters_from_dict(data.get("scheduler", {}))
    oracle = Oracle.from_config(data.get("oracle", {}))
    extras = data.get("server", {})
    return SWEBConfig(
        spec=spec, params=params, oracle=oracle,
        policy=extras.get("policy", "sweb"),
        seed=int(extras.get("seed", 0)),
        backlog=int(extras.get("backlog", 64)),
        dns_ttl=float(extras.get("dns_ttl", 0.0)),
    )


def dump_config(config: SWEBConfig, path: Optional[Union[str, Path]] = None
                ) -> str:
    """Serialise a SWEBConfig to JSON (optionally writing it out)."""
    data: dict[str, Any] = {
        "cluster": cluster_spec_to_dict(config.spec),
        "scheduler": cost_parameters_to_dict(config.params),
        "oracle": {"rules": [dataclasses.asdict(rule)
                             for rule in config.oracle.rules]},
        "server": {
            "policy": config.policy,
            "seed": config.seed,
            "backlog": config.backlog,
            "dns_ttl": config.dns_ttl,
        },
    }
    text = json.dumps(data, indent=2, sort_keys=True)
    if path is not None:
        # dump_config's contract is "serialize to this path when asked":
        # the write happens only on an explicit caller-supplied path.
        Path(path).write_text(text + "\n")  # sweb-lint: disable=io-file-write
    return text
