"""Common Log Format access logs: write them, parse them, replay them.

NCSA httpd — the code SWEB is built on — invented the Common Log Format
(CLF).  This module closes the loop with the real world:

* :func:`write_clf` turns a run's request records into an access log,
  exactly what a 1996 webmaster would have found in ``access_log``;
* :func:`parse_clf` reads such a log (ours or a real one);
* :func:`workload_from_clf` replays a parsed log as a simulator
  :class:`~repro.workload.generators.Workload`, so an actual site trace
  can drive the reproduced SWEB.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Iterable, Optional

from ..web.metrics import RequestRecord
from .generators import Arrival, Workload

__all__ = ["CLFEntry", "format_clf", "write_clf", "parse_clf",
           "workload_from_clf"]

_CLF_RE = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<time>[^\]]+)\] '
    r'"(?P<method>\S+) (?P<path>\S+)(?: (?P<proto>[^"]*))?" '
    r'(?P<status>\d{3}|-) (?P<bytes>\d+|-)\s*$')

_CLF_TIME = "%d/%b/%Y:%H:%M:%S %z"

#: epoch for converting simulated seconds to log timestamps
DEFAULT_EPOCH = datetime(1996, 4, 15, 9, 0, 0, tzinfo=timezone.utc)


@dataclass(frozen=True)
class CLFEntry:
    """One parsed access-log line."""

    host: str
    time: datetime
    method: str
    path: str
    status: int
    nbytes: int

    @property
    def ok(self) -> bool:
        return self.status == 200


def format_clf(entry: CLFEntry) -> str:
    """Render an entry in Common Log Format."""
    stamp = entry.time.strftime(_CLF_TIME)
    return (f'{entry.host} - - [{stamp}] "{entry.method} {entry.path} '
            f'HTTP/1.0" {entry.status} {entry.nbytes}')


def write_clf(records: Iterable[RequestRecord],
              epoch: datetime = DEFAULT_EPOCH) -> str:
    """Produce an ``access_log`` for a run's completed request records."""
    lines = []
    for rec in sorted(records, key=lambda r: r.start):
        if rec.end is None:
            continue
        status = rec.status if rec.status is not None else 408
        nbytes = int(rec.size) if rec.ok else 0
        entry = CLFEntry(
            host=f"{rec.client}.example.edu".replace("#", "-"),
            time=epoch + timedelta(seconds=rec.start),
            method="GET",
            path=rec.path,
            status=status,
            nbytes=nbytes,
        )
        lines.append(format_clf(entry))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_clf(text: str, strict: bool = False) -> list[CLFEntry]:
    """Parse CLF text; malformed lines are skipped (or raise if strict)."""
    entries = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        match = _CLF_RE.match(line)
        if match is None:
            if strict:
                raise ValueError(f"malformed CLF line {lineno}: {line!r}")
            continue
        status_text = match["status"]
        bytes_text = match["bytes"]
        try:
            when = datetime.strptime(match["time"], _CLF_TIME)
        except ValueError:
            if strict:
                raise
            continue
        entries.append(CLFEntry(
            host=match["host"],
            time=when,
            method=match["method"],
            path=match["path"],
            status=int(status_text) if status_text != "-" else 0,
            nbytes=int(bytes_text) if bytes_text != "-" else 0,
        ))
    return entries


def workload_from_clf(entries: list[CLFEntry],
                      client: str = "ucsb",
                      epoch: Optional[datetime] = None,
                      time_scale: float = 1.0) -> Workload:
    """Replay a parsed access log as a Workload.

    Arrival times are offsets from ``epoch`` (default: the first entry's
    timestamp), optionally compressed/stretched by ``time_scale`` (< 1
    replays a day's log in minutes — useful for load testing, which is
    exactly what the original webmasters could not do).
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    if not entries:
        return Workload(name="clf-empty", arrivals=[], duration=0.0)
    origin = epoch or min(e.time for e in entries)
    arrivals = []
    for entry in entries:
        offset = (entry.time - origin).total_seconds() * time_scale
        if offset < 0:
            continue
        arrivals.append(Arrival(time=offset, path=entry.path, client=client))
    duration = max((a.time for a in arrivals), default=0.0) + 1.0
    return Workload(name="clf-replay", arrivals=arrivals, duration=duration)
