"""Scenario descriptions and named, canonical scenario configurations.

Two things live here:

* :class:`Scenario` — "everything needed to reproduce one experimental
  cell": cluster spec, corpus, workload, policy, seed, knobs.  The
  experiment harness (:mod:`repro.experiments.runner`) consumes these;
  defining them here keeps the layering acyclic (workload sits below
  experiments, so scenario *descriptions* must not reach upward).
* the named presets — one place that encodes "the Table 3 cell at
  25 rps under SWEB" and friends, so the CLI, the tests and downstream
  users can reproduce the paper's exact setups without copying
  parameter lists around::

    from repro.workload.scenarios import build_scenario, SCENARIOS

    result = run_scenario(build_scenario("table3", rps=25, policy="sweb"))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

from ..cluster import ClusterSpec, meiko_cs2, sun_now
from ..core import CostParameters, SchedulingPolicy
from ..faults import FaultPlan
from ..obs import Tracer
from ..sim import RandomStreams, Trace
from ..web import ClientProfile, RUTGERS_CLIENT, UCSB_CLIENT
from .corpus import (
    Corpus,
    bimodal_corpus,
    single_hot_file,
    uniform_corpus,
)
from .generators import (
    Workload,
    burst_workload,
    hot_file_sampler,
    uniform_sampler,
)

__all__ = ["DEFAULT_PROFILES", "SCENARIOS", "Scenario", "build_scenario",
           "scenario_names"]

#: Default client populations, keyed by the Arrival.client field.
DEFAULT_PROFILES: dict[str, ClientProfile] = {
    "ucsb": UCSB_CLIENT,
    "rutgers": RUTGERS_CLIENT,
}


@dataclass
class Scenario:
    """Everything needed to reproduce one experimental cell."""

    name: str
    spec: ClusterSpec
    corpus: Corpus
    workload: Workload
    policy: Union[str, SchedulingPolicy] = "sweb"
    seed: int = 0
    backlog: int = 64
    client_timeout: float = 120.0
    dns_ttl: float = 0.0
    #: number of distinct client hosts per profile.  With ``dns_ttl`` > 0
    #: each host's resolver pins it to one server node for the TTL — the
    #: coarse, load-oblivious DNS assignment the paper says "cannot
    #: predict those changes".  1 host + ttl 0 = idealised per-request
    #: rotation.
    hosts_per_profile: int = 1
    #: route every request through one node's scheduler (the centralized
    #: design §3.1 rejected); None = distributed (DNS rotation)
    dispatcher: Optional[int] = None
    params: Optional[CostParameters] = None
    #: scheduled faults injected into the run (None = healthy cluster);
    #: either a FaultPlan or a CLI spec string like "crash:n2@30,partition:10-20"
    faults: Optional[Union[str, FaultPlan]] = None
    profiles: dict[str, ClientProfile] = field(
        default_factory=lambda: dict(DEFAULT_PROFILES))
    trace: Optional[Trace] = None
    #: per-request span tracer (repro.obs); None = tracing off.  Purely
    #: observational — attaching one never changes simulation results
    #: (pinned against the determinism golden).
    tracer: Optional[Tracer] = None

    def with_policy(self, policy: str) -> "Scenario":
        return replace(self, policy=policy,
                       name=f"{self.name}/{policy}")


def _table1(rps: int = 16, policy: str = "sweb", duration: float = 30.0,
            file_size: float = 1.5e6, nodes: int = 6,
            seed: int = 1) -> Scenario:
    spec = meiko_cs2(nodes)
    corpus = uniform_corpus(120, file_size, nodes)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"table1-{rps}rps", spec=spec, corpus=corpus,
                    workload=workload, policy=policy, seed=seed)


def _table3(rps: int = 25, policy: str = "sweb", duration: float = 30.0,
            nodes: int = 6, seed: int = 1) -> Scenario:
    corpus = bimodal_corpus(150, nodes, large_frac=0.5, seed=9)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"table3-{policy}-{rps}rps", spec=meiko_cs2(nodes),
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, dns_ttl=300.0, hosts_per_profile=4)


def _table4(rps: int = 2, policy: str = "sweb", duration: float = 30.0,
            nodes: int = 4, seed: int = 1) -> Scenario:
    corpus = uniform_corpus(40, 1.5e6, nodes)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"table4-{policy}-{rps}rps", spec=sun_now(nodes),
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, client_timeout=300.0)


def _skewed(rps: int = 8, policy: str = "round-robin",
            duration: float = 45.0, nodes: int = 6, seed: int = 1) -> Scenario:
    corpus = single_hot_file(1.5e6, home=0)
    workload = burst_workload(rps, duration,
                              hot_file_sampler("/hot/popular.gif"))
    return Scenario(name=f"skewed-{policy}", spec=meiko_cs2(nodes),
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, client_timeout=600.0, backlog=1024)


#: name -> factory(**overrides) -> Scenario
SCENARIOS: dict[str, Callable] = {
    "table1": _table1,
    "table3": _table3,
    "table4": _table4,
    "skewed": _skewed,
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def build_scenario(name: str, **overrides) -> Scenario:
    """Build a named scenario, overriding rps/policy/duration/nodes/seed."""
    factory = SCENARIOS.get(name)
    if factory is None:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {scenario_names()}")
    return factory(**overrides)
