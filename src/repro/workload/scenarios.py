"""Named, canonical scenario configurations.

One place that encodes "the Table 3 cell at 25 rps under SWEB" and
friends, so the CLI, the tests and downstream users can reproduce the
paper's exact setups without copying parameter lists around::

    from repro.workload.scenarios import build_scenario, SCENARIOS

    result = run_scenario(build_scenario("table3", rps=25, policy="sweb"))
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster.topology import meiko_cs2, sun_now
from ..sim import RandomStreams
from .corpus import (
    bimodal_corpus,
    single_hot_file,
    uniform_corpus,
)
from .generators import burst_workload, hot_file_sampler, uniform_sampler

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]


def _table1(rps: int = 16, policy: str = "sweb", duration: float = 30.0,
            file_size: float = 1.5e6, nodes: int = 6, seed: int = 1):
    from ..experiments.runner import Scenario

    spec = meiko_cs2(nodes)
    corpus = uniform_corpus(120, file_size, nodes)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"table1-{rps}rps", spec=spec, corpus=corpus,
                    workload=workload, policy=policy, seed=seed)


def _table3(rps: int = 25, policy: str = "sweb", duration: float = 30.0,
            nodes: int = 6, seed: int = 1):
    from ..experiments.runner import Scenario

    corpus = bimodal_corpus(150, nodes, large_frac=0.5, seed=9)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"table3-{policy}-{rps}rps", spec=meiko_cs2(nodes),
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, dns_ttl=300.0, hosts_per_profile=4)


def _table4(rps: int = 2, policy: str = "sweb", duration: float = 30.0,
            nodes: int = 4, seed: int = 1):
    from ..experiments.runner import Scenario

    corpus = uniform_corpus(40, 1.5e6, nodes)
    workload = burst_workload(rps, duration,
                              uniform_sampler(corpus, RandomStreams(42)))
    return Scenario(name=f"table4-{policy}-{rps}rps", spec=sun_now(nodes),
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, client_timeout=300.0)


def _skewed(rps: int = 8, policy: str = "round-robin",
            duration: float = 45.0, nodes: int = 6, seed: int = 1):
    from ..experiments.runner import Scenario

    corpus = single_hot_file(1.5e6, home=0)
    workload = burst_workload(rps, duration,
                              hot_file_sampler("/hot/popular.gif"))
    return Scenario(name=f"skewed-{policy}", spec=meiko_cs2(nodes),
                    corpus=corpus, workload=workload, policy=policy,
                    seed=seed, client_timeout=600.0, backlog=1024)


#: name -> factory(**overrides) -> Scenario
SCENARIOS: dict[str, Callable] = {
    "table1": _table1,
    "table3": _table3,
    "table4": _table4,
    "skewed": _skewed,
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def build_scenario(name: str, **overrides):
    """Build a named scenario, overriding rps/policy/duration/nodes/seed."""
    factory = SCENARIOS.get(name)
    if factory is None:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {scenario_names()}")
    return factory(**overrides)
