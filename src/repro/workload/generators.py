"""Request-arrival generators.

The paper's load generator "simulat[es] the action of a graphical browser
such as Netscape where a number of simultaneous connections are made":
at each second of the test a constant number of requests is launched at
once.  Two durations are used — 30 s ("a non-trivial but limited burst")
and 120 s (the sustained-rate test).  Poisson and ramp generators are
provided for the examples and extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..sim import RandomStreams
from .corpus import Corpus

__all__ = [
    "Arrival",
    "Workload",
    "burst_workload",
    "poisson_workload",
    "ramp_workload",
    "uniform_sampler",
    "zipf_sampler",
    "hot_file_sampler",
    "weighted_sampler",
]

PathSampler = Callable[[], str]


@dataclass(frozen=True)
class Arrival:
    """One request arrival: when, what, and which client population."""

    time: float
    path: str
    client: str = "ucsb"   # key into the scenario's client-profile table


@dataclass
class Workload:
    """An ordered list of arrivals plus its bookkeeping."""

    name: str
    arrivals: list[Arrival] = field(default_factory=list)
    duration: float = 0.0       # nominal generation window, seconds

    def __post_init__(self) -> None:
        self.arrivals.sort(key=lambda a: a.time)

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)

    @property
    def offered_rps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return len(self.arrivals) / self.duration


# ----------------------------------------------------------------- samplers
def uniform_sampler(corpus: Corpus, rng: RandomStreams,
                    stream: str = "sampler") -> PathSampler:
    """Every document equally popular."""
    paths = corpus.paths
    if not paths:
        raise ValueError("corpus has no documents")

    def sample() -> str:
        return paths[rng.integers(stream, 0, len(paths))]

    return sample


def zipf_sampler(corpus: Corpus, rng: RandomStreams, alpha: float = 1.0,
                 stream: str = "zipf", hot_set: Optional[int] = None,
                 tail_weight: float = 0.0) -> PathSampler:
    """Zipf-popular documents (web traffic's classic shape).

    ``hot_set`` confines the Zipf head to the corpus's first N paths —
    the knob the cooperative-cache experiment (X10) uses to engineer a
    working set bigger than one node's RAM but smaller than the
    cluster's.  ``tail_weight`` then sends that fraction of requests
    uniformly into the remaining cold tail (0.0 keeps every request in
    the hot set; requires a hot set smaller than the corpus).  The
    defaults reproduce the historical behaviour exactly — same stream,
    same draws.
    """
    paths = corpus.paths
    if not paths:
        raise ValueError("corpus has no documents")
    if hot_set is None:
        def sample() -> str:
            return paths[rng.zipf_index(stream, len(paths), alpha=alpha)]

        return sample
    if not 1 <= hot_set <= len(paths):
        raise ValueError(f"hot_set must be in 1..{len(paths)}, got {hot_set}")
    if not 0.0 <= tail_weight < 1.0:
        raise ValueError(f"tail_weight must be in [0, 1), got {tail_weight}")
    tail = len(paths) - hot_set
    if tail_weight > 0.0 and tail == 0:
        raise ValueError("tail_weight needs a cold tail "
                         "(hot_set < corpus size)")

    def sample_hot() -> str:
        if (tail_weight > 0.0
                and rng.uniform(stream + "-tail") < tail_weight):
            return paths[hot_set + rng.integers(stream + "-tail", 0, tail)]
        return paths[rng.zipf_index(stream, hot_set, alpha=alpha)]

    return sample_hot


def hot_file_sampler(path: str) -> PathSampler:
    """Everyone asks for the same file (the §4.2 skewed test)."""

    def sample() -> str:
        return path

    return sample


def weighted_sampler(choices: list[tuple[str, float]],
                     rng: RandomStreams,
                     stream: str = "weighted") -> PathSampler:
    """Explicit path popularity (used by the ADL example: thumbnails are
    requested far more often than full-resolution scans)."""
    if not choices:
        raise ValueError("no choices")
    paths = [p for p, _ in choices]
    total = sum(w for _, w in choices)
    if total <= 0:
        raise ValueError("weights must sum to > 0")
    probs = [w / total for _, w in choices]

    def sample() -> str:
        return rng.choice(stream, paths, p=probs)

    return sample


# ----------------------------------------------------------------- shapes
def burst_workload(rps: int, duration: float, sampler: PathSampler,
                   client: str = "ucsb", start: float = 0.0,
                   client_mix: Optional[list[tuple[str, float]]] = None,
                   rng: Optional[RandomStreams] = None) -> Workload:
    """The paper's generator: ``rps`` simultaneous requests at every
    second boundary for ``duration`` seconds."""
    if rps < 1:
        raise ValueError(f"rps must be >= 1, got {rps}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    arrivals = []
    for second in range(int(duration)):
        t = start + float(second)
        for _ in range(rps):
            who = client
            if client_mix is not None:
                if rng is None:
                    raise ValueError("client_mix needs an rng")
                names = [n for n, _ in client_mix]
                total = sum(w for _, w in client_mix)
                probs = [w / total for _, w in client_mix]
                who = rng.choice("client-mix", names, p=probs)
            arrivals.append(Arrival(time=t, path=sampler(), client=who))
    return Workload(name=f"burst-{rps}rps-{int(duration)}s",
                    arrivals=arrivals, duration=float(duration))


def poisson_workload(rate: float, duration: float, sampler: PathSampler,
                     rng: RandomStreams, client: str = "ucsb",
                     start: float = 0.0) -> Workload:
    """Memoryless arrivals at ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    arrivals = []
    t = start
    while True:
        t += rng.exponential("poisson", 1.0 / rate)
        if t >= start + duration:
            break
        arrivals.append(Arrival(time=t, path=sampler(), client=client))
    return Workload(name=f"poisson-{rate:g}rps-{int(duration)}s",
                    arrivals=arrivals, duration=float(duration))


def ramp_workload(rps_from: int, rps_to: int, seconds_per_step: float,
                  sampler: PathSampler, client: str = "ucsb") -> Workload:
    """Staircase load: used to find the knee of the throughput curve."""
    if rps_from < 1 or rps_to < rps_from:
        raise ValueError(f"bad ramp {rps_from}..{rps_to}")
    arrivals = []
    t = 0.0
    for rps in range(rps_from, rps_to + 1):
        for second in range(int(seconds_per_step)):
            for _ in range(rps):
                arrivals.append(Arrival(time=t + second, path=sampler(),
                                        client=client))
        t += seconds_per_step
    return Workload(name=f"ramp-{rps_from}to{rps_to}", arrivals=arrivals,
                    duration=t)
