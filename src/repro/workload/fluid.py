"""Aggregate (fluid) client-population model for million-request runs.

The per-client simulation path (``repro.web.Client`` + the full httpd
stack) spawns several kernel processes and dozens of events per request
— faithful, but topping out around a few thousand requests per second
of wall time.  The paper's claim is *scalability*, and the cluster-
scheduling literature evaluates policies at 10^5–10^6 task scale, so
this module trades protocol fidelity for throughput: **one** simulator
process drives a Poisson arrival *stream* whose per-request state lives
in array-backed records, and the cluster is modelled as fluid queues —
per-node virtual busy-clocks advanced analytically, no per-request
kernel events.

What is kept from the full model (see ``docs/SCALING.md`` for the full
assumption table):

* two-stage assignment — round-robin DNS picks a home node, then a
  broker argmin over estimated completion times re-routes with a
  redirection penalty when another node would finish sooner;
* Zipf(alpha) path popularity with a RAM-hot head: the ``hot_set``
  most popular paths are served at memory bandwidth, the tail at disk
  bandwidth (the cooperative-cache steady state);
* deterministic named RNG substreams, so a (scenario, seed) pair is
  exactly replayable and fingerprintable.

What is deliberately dropped: connection handshakes, HTTP parsing,
retries/faults, loadd staleness (the fluid broker sees true queue
state), and per-transfer bandwidth sharing (FIFO service instead of
processor sharing).  Arrival batches are drawn vectorised with numpy;
the only per-request work is the queue update, which is why a million
requests complete in seconds (``sweb-repro bench --scale L``).
"""

from __future__ import annotations

import hashlib
from array import array
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence

import numpy as np

from ..obs import LATENCY_BUCKETS, MetricsRegistry
from ..sched import SpeedFactors, fluid_policy_names, rank_preferences
from ..sim import RandomStreams, Simulator

__all__ = ["FluidRecords", "FluidRequest", "FluidResult", "FluidScenario",
           "run_fluid"]


@dataclass(frozen=True)
class FluidScenario:
    """One fluid-model experimental cell: population, corpus and cluster.

    Defaults describe a modern-hardware regime near (but below) cluster
    saturation rather than the paper's 1996 testbeds — the fluid model
    exists to explore request volumes the testbeds could never see; the
    faithful constants stay with the per-client path.
    """

    name: str = "fluid"
    #: number of server nodes (fluid queues)
    nodes: int = 6
    #: offered Poisson arrival rate, requests per simulated second
    rate: float = 2000.0
    #: total requests in the run
    n_requests: int = 100_000
    #: corpus size; path popularity is Zipf(alpha) over ranks 0..n_paths-1
    n_paths: int = 512
    #: Zipf exponent; None = uniform popularity
    alpha: Optional[float] = 1.0
    seed: int = 1
    #: mean document size (sizes are exponential around it, per path)
    mean_file_bytes: float = 2e4
    #: the hot head: this many top-ranked paths are served from RAM
    hot_set: int = 32
    #: fixed per-request CPU cost, seconds (accept + parse + dispatch)
    t_cpu: float = 7e-4
    #: client-visible penalty when the broker moves a request off its
    #: DNS home node (the 302 round trip, fluid-sized)
    t_redirect: float = 4e-4
    #: disk and RAM service bandwidths, bytes/second
    disk_bps: float = 5e7
    mem_bps: float = 4e8
    #: arrivals generated (and bucketed) this many at a time.  Part of
    #: the cell identity: regrouping the arrival cumsum moves float
    #: rounding at the ULP level, so two runs are bit-identical only at
    #: the same batch (docs/SCALING.md)
    batch: int = 65_536
    #: which decision kernel routes requests — any name in
    #: ``repro.sched.fluid_policy_names()`` (docs/SCHEDULING.md)
    policy: str = "sweb"
    #: optional per-node speed multipliers on the homogeneous baseline
    #: (the :class:`repro.sched.SpeedFactors` model applied to analytic
    #: service times); ``None`` = homogeneous.  Lengths must equal
    #: ``nodes``.  ``cpu_factors`` scales the fixed CPU cost,
    #: ``disk_factors`` the tail (disk) bandwidth, ``mem_factors`` the
    #: hot-set (RAM) bandwidth.
    cpu_factors: Optional[tuple[float, ...]] = None
    disk_factors: Optional[tuple[float, ...]] = None
    mem_factors: Optional[tuple[float, ...]] = None

    @property
    def heterogeneous(self) -> bool:
        """True when any per-node speed factors are supplied."""
        return (self.cpu_factors is not None
                or self.disk_factors is not None
                or self.mem_factors is not None)

    def with_seed(self, seed: int) -> "FluidScenario":
        """The same cell at a different seed (grid helper)."""
        return replace(self, seed=seed)

    def with_policy(self, policy: str) -> "FluidScenario":
        """The same cell under a different decision kernel."""
        return replace(self, policy=policy)

    def with_speed_factors(self, factors: SpeedFactors) -> "FluidScenario":
        """The same cell on a heterogeneous cluster (tournament helper)."""
        return replace(self, cpu_factors=factors.cpu,
                       disk_factors=factors.disk, mem_factors=factors.mem)

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed cell."""
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, "
                             f"got {self.n_requests}")
        if self.n_paths < 1:
            raise ValueError(f"n_paths must be >= 1, got {self.n_paths}")
        if not 0 <= self.hot_set <= self.n_paths:
            raise ValueError(f"hot_set must be in 0..{self.n_paths}, "
                             f"got {self.hot_set}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.policy not in fluid_policy_names():
            raise ValueError(f"unknown fluid policy {self.policy!r}; "
                             f"choose from {fluid_policy_names()}")
        for kind, factors in (("cpu_factors", self.cpu_factors),
                              ("disk_factors", self.disk_factors),
                              ("mem_factors", self.mem_factors)):
            if factors is None:
                continue
            if len(factors) != self.nodes:
                raise ValueError(f"{kind} must have one entry per node "
                                 f"({self.nodes}), got {len(factors)}")
            if any(f <= 0 for f in factors):
                raise ValueError(f"{kind} must be > 0, got {factors}")


class FluidRequest:
    """A lightweight view of one fluid request (``__slots__``-only).

    Materialised on demand from :class:`FluidRecords` columns — the
    simulation itself never builds these; per-request state stays in
    the arrays.
    """

    __slots__ = ("arrival", "latency", "node", "path_rank", "redirected")

    def __init__(self, arrival: float, latency: float, node: int,
                 path_rank: int, redirected: bool) -> None:
        self.arrival = arrival
        self.latency = latency
        self.node = node
        self.path_rank = path_rank
        self.redirected = redirected

    def __repr__(self) -> str:
        return (f"<FluidRequest t={self.arrival:.4f} lat={self.latency:.4f} "
                f"node={self.node} rank={self.path_rank} "
                f"redirected={self.redirected}>")


class FluidRecords:
    """Column-oriented per-request records (``array``-backed).

    One entry per request: arrival time, client-observed latency, the
    serving node, the requested path's popularity rank, and whether the
    broker moved it off its DNS home.  ~21 bytes per request instead of
    a boxed object — a million requests fit in ~21 MB.
    """

    __slots__ = ("arrivals", "latencies", "nodes", "path_ranks",
                 "redirected")

    def __init__(self) -> None:
        self.arrivals = array("d")
        self.latencies = array("d")
        self.nodes = array("i")
        self.path_ranks = array("i")
        self.redirected = array("b")

    def __len__(self) -> int:
        return len(self.arrivals)

    def __getitem__(self, i: int) -> FluidRequest:
        return FluidRequest(self.arrivals[i], self.latencies[i],
                            self.nodes[i], self.path_ranks[i],
                            bool(self.redirected[i]))

    def __iter__(self) -> Iterator[FluidRequest]:
        for i in range(len(self)):
            yield self[i]


@dataclass
class FluidResult:
    """Outcome of one :func:`run_fluid` call."""

    scenario: FluidScenario
    #: per-request columns (None when ``keep_records=False``)
    records: Optional[FluidRecords]
    #: per-process metrics registry the run published into
    registry: MetricsRegistry
    #: sha256 over every per-request outcome, streamed batch by batch —
    #: identical for identical (scenario, seed) regardless of process,
    #: shard assignment or record retention
    fingerprint: str
    #: simulated time of the last request completion
    finished_at: float
    #: kernel events processed (a handful per batch, not per request)
    event_count: int
    n_requests: int = 0
    redirected: int = 0
    served: list[int] = field(default_factory=list)

    def snapshot(self) -> dict:
        """The registry snapshot (the mergeable per-shard artifact)."""
        return self.registry.snapshot()

    def summary_line(self) -> str:
        """One-line headline, mirroring ``ScenarioResult.summary_line``."""
        hist = self.registry.histogram("fluid.latency_s")
        return (f"{self.scenario.name}: offered={self.scenario.rate:.0f} rps, "
                f"completed={self.n_requests}, "
                f"redirected={self.redirected / max(1, self.n_requests):.1%}, "
                f"mean_rt={hist.mean:.4f}s")


def _service_times(scenario: FluidScenario,
                   rng: RandomStreams) -> Sequence[float]:
    """Per-path service time: fixed CPU cost + size over the medium rate.

    Sizes draw once per path from the ``fluid-sizes`` substream; the
    ``hot_set`` most popular ranks are priced at memory bandwidth, the
    tail at disk bandwidth.
    """
    service, _ = _service_tables(scenario, rng)
    return service


def _service_tables(
        scenario: FluidScenario, rng: RandomStreams,
) -> "tuple[list[float], Optional[list[list[float]]]]":
    """Baseline per-path service times, plus per-node tables when
    heterogeneous.

    The baseline list is computed with *exactly* the homogeneous
    arithmetic (one ``fluid-sizes`` draw, one vectorised expression) so
    homogeneous runs keep their historical fingerprints.  On a
    heterogeneous scenario the second element holds one list per node:
    ``by_node[j][rank]`` prices the CPU cost at ``cpu_factors[j]`` and
    the transfer at the node's own RAM/disk bandwidth factor.
    """
    gen = rng.stream("fluid-sizes")
    sizes = gen.exponential(scenario.mean_file_bytes,
                            size=scenario.n_paths)
    rates = np.full(scenario.n_paths, scenario.disk_bps)
    rates[:scenario.hot_set] = scenario.mem_bps
    service = (scenario.t_cpu + sizes / rates).tolist()
    if not scenario.heterogeneous:
        return service, None
    n = scenario.nodes
    cpu_f = scenario.cpu_factors or (1.0,) * n
    disk_f = scenario.disk_factors or (1.0,) * n
    mem_f = scenario.mem_factors or (1.0,) * n
    hot = np.zeros(scenario.n_paths, dtype=bool)
    hot[:scenario.hot_set] = True
    by_node = []
    for j in range(n):
        medium = np.where(hot, mem_f[j], disk_f[j])
        by_node.append(
            (scenario.t_cpu / cpu_f[j] + sizes / (rates * medium)).tolist())
    return service, by_node


def _make_stepper(scenario: FluidScenario, rng: RandomStreams,
                  service: "list[float]",
                  service_by: "Optional[list[list[float]]]",
                  busy: "list[float]", served: "list[int]"):
    """Build the per-batch decision kernel for ``scenario.policy``.

    Each stepper consumes one arrival batch and fills the latency /
    node / redirected columns, advancing the shared ``busy`` clocks and
    ``served`` counters.  The round-robin DNS cursor and any
    policy-private state (queue deques, extra RNG substreams, hash
    preference tables) live in the closure, carried across batches.

    The homogeneous ``sweb`` stepper is the historical inner loop moved
    verbatim — identical float operations in identical order — so
    pre-zoo fingerprints are preserved bit for bit (pinned by
    ``tests/test_sched_policies.py``).  New policies draw only from
    *new* named substreams (``fluid-po2``, ``fluid-choice``), which
    never perturbs the arrival/path/size draws of existing runs.
    """
    n_nodes = scenario.nodes
    t_redirect = scenario.t_redirect
    node_range = range(n_nodes)
    policy = scenario.policy
    rr = 0  # round-robin DNS cursor, carried across batches

    if policy == "sweb" and service_by is None:
        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            redirected = 0
            for i in range(m):
                a = arr_list[i]
                s = service[rank_list[i]]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                # Broker argmin over estimated completions; moving off
                # the DNS home node costs the redirect penalty.
                best = home
                b = busy[home]
                best_score = (b if b > a else a) + s
                for j in node_range:
                    if j == home:
                        continue
                    b = busy[j]
                    score = (b if b > a else a) + s + t_redirect
                    if score < best_score:
                        best_score = score
                        best = j
                busy[best] = finish = ((busy[best] if busy[best] > a else a)
                                       + s)
                served[best] += 1
                if best != home:
                    latency = finish - a + t_redirect
                    redirected += 1
                    red_col[i] = 1
                else:
                    latency = finish - a
                lat[i] = latency
                node_col[i] = best
            return redirected
        return step

    if policy == "sweb":
        # Heterogeneous SWEB: same argmin, but each candidate is priced
        # at its own node's service time (fast nodes win more requests).
        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            redirected = 0
            for i in range(m):
                a = arr_list[i]
                rank = rank_list[i]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                best = home
                b = busy[home]
                best_score = (b if b > a else a) + service_by[home][rank]
                for j in node_range:
                    if j == home:
                        continue
                    b = busy[j]
                    score = ((b if b > a else a) + service_by[j][rank]
                             + t_redirect)
                    if score < best_score:
                        best_score = score
                        best = j
                s = service_by[best][rank]
                busy[best] = finish = ((busy[best] if busy[best] > a else a)
                                       + s)
                served[best] += 1
                if best != home:
                    latency = finish - a + t_redirect
                    redirected += 1
                    red_col[i] = 1
                else:
                    latency = finish - a
                lat[i] = latency
                node_col[i] = best
            return redirected
        return step

    if policy == "round-robin":
        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            for i in range(m):
                a = arr_list[i]
                rank = rank_list[i]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                s = (service[rank] if service_by is None
                     else service_by[home][rank])
                busy[home] = finish = ((busy[home] if busy[home] > a else a)
                                       + s)
                served[home] += 1
                lat[i] = finish - a
                node_col[i] = home
            return 0
        return step

    if policy == "random":
        choice_gen = rng.stream("fluid-choice")

        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            redirected = 0
            choices = choice_gen.integers(0, n_nodes, size=m).tolist()
            for i in range(m):
                a = arr_list[i]
                rank = rank_list[i]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                best = choices[i]
                s = (service[rank] if service_by is None
                     else service_by[best][rank])
                busy[best] = finish = ((busy[best] if busy[best] > a else a)
                                       + s)
                served[best] += 1
                if best != home:
                    latency = finish - a + t_redirect
                    redirected += 1
                    red_col[i] = 1
                else:
                    latency = finish - a
                lat[i] = latency
                node_col[i] = best
            return redirected
        return step

    if policy in ("jsq", "po2"):
        # Per-node FIFO queues of finish times: finishes are appended in
        # nondecreasing order (busy clocks only advance), so draining
        # the front past the arrival instant is amortised O(1) and
        # len(queue) is the exact in-service job count.
        queues = [deque() for _ in node_range]
        po2_gen = rng.stream("fluid-po2") if policy == "po2" else None

        def _count(j, a):
            q = queues[j]
            while q and q[0] <= a:
                q.popleft()
            return len(q)

        def _finish_on(j, a, rank):
            s = service[rank] if service_by is None else service_by[j][rank]
            b = busy[j]
            busy[j] = finish = (b if b > a else a) + s
            queues[j].append(finish)
            served[j] += 1
            return finish

        if policy == "jsq":
            def step(m, arr_list, rank_list, lat, node_col, red_col):
                nonlocal rr
                redirected = 0
                for i in range(m):
                    a = arr_list[i]
                    home = rr
                    rr = rr + 1
                    if rr == n_nodes:
                        rr = 0
                    best = home
                    best_count = _count(home, a)
                    for j in node_range:
                        if j == home:
                            continue
                        c = _count(j, a)
                        if c < best_count:
                            best_count = c
                            best = j
                    finish = _finish_on(best, a, rank_list[i])
                    if best != home:
                        latency = finish - a + t_redirect
                        redirected += 1
                        red_col[i] = 1
                    else:
                        latency = finish - a
                    lat[i] = latency
                    node_col[i] = best
                return redirected
            return step

        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            redirected = 0
            if n_nodes == 1:
                first = [0] * m
                second = [0] * m
            else:
                first = po2_gen.integers(0, n_nodes, size=m).tolist()
                second = po2_gen.integers(0, n_nodes - 1, size=m).tolist()
            for i in range(m):
                a = arr_list[i]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                x = first[i]
                y = second[i]
                if y >= x:   # second sample drawn over the other n-1 nodes
                    y += 1 if n_nodes > 1 else 0
                best = y if _count(y, a) < _count(x, a) else x
                finish = _finish_on(best, a, rank_list[i])
                if best != home:
                    latency = finish - a + t_redirect
                    redirected += 1
                    red_col[i] = 1
                else:
                    latency = finish - a
                lat[i] = latency
                node_col[i] = best
            return redirected
        return step

    if policy == "lwl":
        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            redirected = 0
            for i in range(m):
                a = arr_list[i]
                rank = rank_list[i]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                # Outstanding work in seconds; busy clocks already run
                # in each node's own time, so the comparison is speed-
                # normalised for free on heterogeneous clusters.
                best = home
                w = busy[home] - a
                best_w = w if w > 0.0 else 0.0
                for j in node_range:
                    if j == home:
                        continue
                    w = busy[j] - a
                    if w < 0.0:
                        w = 0.0
                    if w < best_w:
                        best_w = w
                        best = j
                s = (service[rank] if service_by is None
                     else service_by[best][rank])
                busy[best] = finish = ((busy[best] if busy[best] > a else a)
                                       + s)
                served[best] += 1
                if best != home:
                    latency = finish - a + t_redirect
                    redirected += 1
                    red_col[i] = 1
                else:
                    latency = finish - a
                lat[i] = latency
                node_col[i] = best
            return redirected
        return step

    if policy == "chash":
        prefs = rank_preferences(scenario.n_paths, n_nodes)
        inv_n = 1.0 / n_nodes

        def step(m, arr_list, rank_list, lat, node_col, red_col):
            nonlocal rr
            redirected = 0
            for i in range(m):
                a = arr_list[i]
                rank = rank_list[i]
                home = rr
                rr = rr + 1
                if rr == n_nodes:
                    rr = 0
                order = prefs[rank]
                total_w = 0.0
                for j in node_range:
                    w = busy[j] - a
                    if w > 0.0:
                        total_w += w
                mean_w = total_w * inv_n
                # Bounded load: the owner keeps the request unless its
                # backlog exceeds twice the cluster mean plus the
                # request itself; then walk the spill order.
                best = order[0]
                for j in order:
                    w = busy[j] - a
                    if w < 0.0:
                        w = 0.0
                    s_j = (service[rank] if service_by is None
                           else service_by[j][rank])
                    if w <= 2.0 * mean_w + s_j:
                        best = j
                        break
                s = (service[rank] if service_by is None
                     else service_by[best][rank])
                busy[best] = finish = ((busy[best] if busy[best] > a else a)
                                       + s)
                served[best] += 1
                if best != home:
                    latency = finish - a + t_redirect
                    redirected += 1
                    red_col[i] = 1
                else:
                    latency = finish - a
                lat[i] = latency
                node_col[i] = best
            return redirected
        return step

    raise ValueError(f"no fluid stepper for policy {policy!r}")


def _popularity_cdf(scenario: FluidScenario) -> Optional[np.ndarray]:
    """CDF over path ranks for inverse-transform sampling (None=uniform)."""
    if scenario.alpha is None:
        return None
    ranks = np.arange(1, scenario.n_paths + 1, dtype=float)
    weights = ranks ** (-float(scenario.alpha))
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def run_fluid(scenario: FluidScenario,
              registry: Optional[MetricsRegistry] = None,
              keep_records: bool = True) -> FluidResult:
    """Run one fluid-population cell to completion.

    One simulator process advances batch by batch: numpy draws a batch
    of Poisson arrivals and Zipf path ranks, a ``sim.timeout`` jumps the
    kernel clock to the batch end, and a tight scalar loop applies the
    two-stage assignment to per-node busy-clocks.  Metrics go into
    ``registry`` under the ``fluid.*`` namespace (histogram
    ``fluid.latency_s`` on the shared ``LATENCY_BUCKETS``), and a
    streaming sha256 fingerprints every outcome for the shard runner's
    determinism checks.
    """
    scenario.validate()
    registry = registry if registry is not None else MetricsRegistry()
    rng = RandomStreams(seed=scenario.seed)
    service, service_by = _service_tables(scenario, rng)
    cdf = _popularity_cdf(scenario)
    arrivals_gen = rng.stream("fluid-arrivals")
    paths_gen = rng.stream("fluid-paths")
    bounds = np.asarray(LATENCY_BUCKETS)

    n_nodes = scenario.nodes
    busy = [0.0] * n_nodes
    served = [0] * n_nodes
    step = _make_stepper(scenario, rng, service, service_by, busy, served)
    records = FluidRecords() if keep_records else None
    digest = hashlib.sha256()
    bucket_counts = np.zeros(len(bounds) + 1, dtype=np.int64)
    totals = {"latency_sum": 0.0, "lat_min": float("inf"),
              "lat_max": float("-inf"), "redirected": 0}

    sim = Simulator()

    def driver():  # noqa: ANN202 - kernel process generator
        clock = 0.0
        remaining = scenario.n_requests
        while remaining > 0:
            m = min(scenario.batch, remaining)
            remaining -= m
            gaps = arrivals_gen.exponential(1.0 / scenario.rate, size=m)
            arrivals = np.cumsum(gaps) + clock
            clock = float(arrivals[-1])
            if cdf is None:
                ranks = paths_gen.integers(0, scenario.n_paths, size=m)
            else:
                ranks = np.searchsorted(cdf, paths_gen.random(m),
                                        side="right")
            # Jump the kernel to the batch horizon: the only events this
            # model schedules are one timeout per batch.
            if clock > sim.now:
                yield sim.timeout(clock - sim.now)

            arr_list = arrivals.tolist()
            rank_list = ranks.tolist()
            lat = array("d", bytes(8 * m))
            node_col = array("i", bytes(4 * m))
            red_col = array("b", bytes(m))
            redirected = step(m, arr_list, rank_list, lat, node_col, red_col)

            lat_np = np.frombuffer(lat, dtype=np.float64)
            bucket_counts[:] += np.bincount(
                np.searchsorted(bounds, lat_np, side="left"),
                minlength=len(bounds) + 1)
            totals["latency_sum"] += float(lat_np.sum())
            totals["lat_min"] = min(totals["lat_min"], float(lat_np.min()))
            totals["lat_max"] = max(totals["lat_max"], float(lat_np.max()))
            totals["redirected"] += redirected
            digest.update(arrivals.tobytes())
            digest.update(lat.tobytes())
            digest.update(node_col.tobytes())
            if records is not None:
                records.arrivals.extend(arr_list)
                records.latencies.extend(lat)
                records.nodes.extend(node_col)
                records.path_ranks.extend(rank_list)
                records.redirected.extend(red_col)

    sim.run(until=sim.spawn(driver(), name="fluid-driver"))

    counters = registry.counters("fluid")
    counters.incr("requests", by=scenario.n_requests)
    counters.incr("redirected", by=totals["redirected"])
    node_counters = registry.counters("fluid.served")
    for node_id, count in enumerate(served):
        node_counters.incr(f"n{node_id}", by=count)
    hist = registry.histogram("fluid.latency_s")
    hist.absorb(bucket_counts.tolist(), scenario.n_requests,
                totals["latency_sum"], totals["lat_min"], totals["lat_max"])
    digest.update(repr(tuple(served)).encode())
    return FluidResult(
        scenario=scenario,
        records=records,
        registry=registry,
        fingerprint=digest.hexdigest(),
        finished_at=max(busy),
        event_count=sim.event_count,
        n_requests=scenario.n_requests,
        redirected=totals["redirected"],
        served=served,
    )
