"""Adversarial client actors: hostile workloads the cluster must survive.

SWEB's thesis is that a multicomputer server stays balanced and
responsive *whatever the network throws at it* — "the environment can
change over time and SWEB cannot predict those changes" (§1).  The
generators in :mod:`generators` model cooperative browsers; this module
models the uncooperative rest of the Internet, in the spirit of the
load-skew attacks that motivate practical P2P/CDN balancing work.

Four actors, each a first-class workload builder returning a
:class:`~repro.workload.generators.Workload` plus the scenario-level
overrides the attack abuses:

* **hotspot** — a flood concentrated on the corpus's hottest few files,
  overwhelming their home node (the §4.2 skewed test, weaponized);
* **cachebust** — a permutation walk over the whole corpus that
  maximizes page-cache reuse distance, so every fetch misses and the
  disks thrash;
* **slowdrip** — slowloris-style clients behind a near-zero-bandwidth
  WAN path whose transfers occupy server connections for tens of
  seconds, starving the listen backlog;
* **dnsskew** — a single-resolver client population behind a long DNS
  TTL: the first round-robin answer is cached and every subsequent
  request lands on that one node, defeating rotation entirely.

Every actor mixes its attack stream into a plain background load so the
victim population's experience (p95, drops, balance) is measurable.
All randomness comes from registered :class:`~repro.sim.rng.RandomStreams`
substreams (``adv-*``), so adversarial workloads replay exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..cluster.network import WANPath
from ..sim import RandomStreams
from ..web.client import ClientProfile
from .corpus import Corpus
from .generators import Arrival, Workload, uniform_sampler
from .scenarios import DEFAULT_PROFILES

__all__ = [
    "ADVERSARIES",
    "AdversaryInfo",
    "BACKGROUND_CLIENT",
    "CHURN_CLIENT",
    "FLOOD_CLIENT",
    "SLOWDRIP_CLIENT",
    "adversary_names",
    "cachebust_workload",
    "dnsskew_workload",
    "hotspot_workload",
    "make_adversary",
    "slowdrip_workload",
]

#: The victim population's client name: every adversary mixes its
#: attack into a plain background carried by this client, so filtering
#: records on it isolates the bystanders' experience.
BACKGROUND_CLIENT = "ucsb"

#: The hotspot flood's botnet: campus-class connectivity, its own
#: resolver domain.  A distinct client name keeps the attack stream
#: separable from the victim population in the metrics.
FLOOD_CLIENT = ClientProfile(
    name="flood",
    wan=WANPath(latency=10e-3, bandwidth=4e6, name="flood-path"),
    domain="flood.invalid")

#: The cache-busting crawler population.
CHURN_CLIENT = ClientProfile(
    name="churn",
    wan=WANPath(latency=10e-3, bandwidth=4e6, name="churn-path"),
    domain="churn.invalid")

#: A slowloris-style browser: a long thin drip of bytes that holds a
#: server connection for tens of seconds per mid-sized (~1.5 MB) file.
SLOWDRIP_CLIENT = ClientProfile(
    name="slowdrip",
    wan=WANPath(latency=120e-3, bandwidth=6e4, name="drip-path"),
    domain="drip.invalid")

#: A large client population behind one caching resolver: every host
#: shares the first DNS answer for the whole TTL.
DNSSKEW_CLIENT = ClientProfile(
    name="dnsskew",
    wan=WANPath(latency=15e-3, bandwidth=2e6, name="skew-path"),
    domain="skew.invalid")


def _background(corpus: Corpus, rng: RandomStreams, rps: int,
                duration: float) -> list[Arrival]:
    """The victim population: a plain uniform burst load."""
    sample = uniform_sampler(corpus, rng)
    return [Arrival(time=float(second), path=sample(),
                    client=BACKGROUND_CLIENT)
            for second in range(int(duration))
            for _ in range(rps)]


def hotspot_workload(corpus: Corpus, rng: RandomStreams, rps: int,
                     duration: float, intensity: float = 3.0,
                     hot_k: int = 2) -> tuple[Workload, dict[str, Any]]:
    """A flood aimed at the corpus's first ``hot_k`` files.

    The attack adds ``intensity * rps`` extra requests per second, all
    for the same tiny set of paths, so their home nodes saturate while
    the rest of the cluster idles — exactly the skew DNS rotation
    cannot repair.
    """
    if not 1 <= hot_k <= len(corpus.paths):
        raise ValueError(f"hot_k must be in 1..{len(corpus.paths)}, "
                         f"got {hot_k}")
    arrivals = _background(corpus, rng, rps, duration)
    paths = corpus.paths
    attack_per_sec = max(1, int(intensity * rps))
    for second in range(int(duration)):
        for _ in range(attack_per_sec):
            target = paths[rng.integers("adv-hotspot", 0, hot_k)]
            jitter = rng.uniform("adv-hotspot", 0.0, 0.25)
            arrivals.append(Arrival(time=float(second) + jitter,
                                    path=target, client="flood"))
    wl = Workload(name=f"adv-hotspot-{rps}rps-{int(duration)}s",
                  arrivals=arrivals, duration=float(duration))
    return wl, {"profiles": {**DEFAULT_PROFILES, "flood": FLOOD_CLIENT}}


def cachebust_workload(corpus: Corpus, rng: RandomStreams, rps: int,
                       duration: float, intensity: float = 1.0
                       ) -> tuple[Workload, dict[str, Any]]:
    """URL churn that defeats LRU: walk the corpus in a fresh random
    permutation each cycle, so reuse distance equals the corpus size and
    every page-cache lookup misses.
    """
    arrivals = _background(corpus, rng, rps, duration)
    paths = corpus.paths
    attack_per_sec = max(1, int(intensity * rps))
    order: list[str] = []
    for second in range(int(duration)):
        for _ in range(attack_per_sec):
            if not order:
                perm = rng.stream("adv-cachebust").permutation(len(paths))
                order = [paths[int(i)] for i in perm]
            jitter = rng.uniform("adv-cachebust", 0.0, 0.5)
            arrivals.append(Arrival(time=float(second) + jitter,
                                    path=order.pop(), client="churn"))
    wl = Workload(name=f"adv-cachebust-{rps}rps-{int(duration)}s",
                  arrivals=arrivals, duration=float(duration))
    return wl, {"profiles": {**DEFAULT_PROFILES, "churn": CHURN_CLIENT}}


def slowdrip_workload(corpus: Corpus, rng: RandomStreams, rps: int,
                      duration: float, intensity: float = 2.0
                      ) -> tuple[Workload, dict[str, Any]]:
    """Slowloris: drip-feed clients that hold connections open.

    Each attack request arrives over :data:`SLOWDRIP_CLIENT`'s ~15 KB/s
    pipe, so even a mid-sized file occupies a server connection for tens
    of simulated seconds; enough of them exhaust the listen backlog and
    the victim population sees connections refused.  The overrides
    install the drip profile into the scenario's client table.
    """
    arrivals = _background(corpus, rng, rps, duration)
    # the biggest file drips longest; pick targets from the largest few
    by_size = sorted(corpus.documents, key=lambda d: (-d.size, d.path))
    targets = [d.path for d in by_size[:max(1, len(by_size) // 4)]]
    attack_per_sec = max(1, int(intensity * rps))
    for second in range(int(duration)):
        for _ in range(attack_per_sec):
            path = targets[rng.integers("adv-slowdrip", 0, len(targets))]
            jitter = rng.uniform("adv-slowdrip", 0.0, 1.0)
            arrivals.append(Arrival(time=float(second) + jitter,
                                    path=path, client="slowdrip"))
    wl = Workload(name=f"adv-slowdrip-{rps}rps-{int(duration)}s",
                  arrivals=arrivals, duration=float(duration))
    return wl, {"profiles": {**DEFAULT_PROFILES,
                             "slowdrip": SLOWDRIP_CLIENT}}


def dnsskew_workload(corpus: Corpus, rng: RandomStreams, rps: int,
                     duration: float, intensity: float = 2.0
                     ) -> tuple[Workload, dict[str, Any]]:
    """DNS-cache skew abuse: one resolver, long TTL, many requests.

    The attack population shares a single caching resolver domain; with
    the overrides' long ``dns_ttl`` the first round-robin answer sticks
    for the whole run and *every* attack request lands on that one node.
    Round-robin's only balancing mechanism — rotation — never engages.
    """
    arrivals = _background(corpus, rng, rps, duration)
    sample = uniform_sampler(corpus, rng)
    attack_per_sec = max(1, int(intensity * rps))
    for second in range(int(duration)):
        for _ in range(attack_per_sec):
            jitter = rng.uniform("adv-dnsskew", 0.0, 0.5)
            arrivals.append(Arrival(time=float(second) + jitter,
                                    path=sample(), client="dnsskew"))
    wl = Workload(name=f"adv-dnsskew-{rps}rps-{int(duration)}s",
                  arrivals=arrivals, duration=float(duration))
    return wl, {"profiles": {**DEFAULT_PROFILES,
                             "dnsskew": DNSSKEW_CLIENT},
                "dns_ttl": 600.0, "hosts_per_profile": 1}


@dataclass(frozen=True)
class AdversaryInfo:
    """One registered adversary: metadata plus its workload builder."""

    name: str
    #: one-line attack description (rendered by docs and the CLI)
    summary: str
    #: which tier the attack stresses ("cache", "backlog", "dns", ...)
    stresses: str
    build: Callable[..., tuple[Workload, dict[str, Any]]]


#: name -> adversary, in canonical (documentation) order.
ADVERSARIES: dict[str, AdversaryInfo] = {a.name: a for a in (
    AdversaryInfo(
        name="hotspot",
        summary="flood the hottest files so their home nodes saturate",
        stresses="broker redirection + cooperative cache",
        build=hotspot_workload),
    AdversaryInfo(
        name="cachebust",
        summary="permutation-walk the corpus so every cache lookup misses",
        stresses="page-cache hit rate + disk bandwidth",
        build=cachebust_workload),
    AdversaryInfo(
        name="slowdrip",
        summary="slowloris drip connections that exhaust the backlog",
        stresses="listen backlog + graceful-degradation retries",
        build=slowdrip_workload),
    AdversaryInfo(
        name="dnsskew",
        summary="one cached resolver answer pins a flood to a single node",
        stresses="DNS rotation + load-aware redirection",
        build=dnsskew_workload),
)}


def adversary_names() -> tuple[str, ...]:
    """Every registered adversary name, in canonical order."""
    return tuple(ADVERSARIES)


def make_adversary(name: str, corpus: Corpus, rng: RandomStreams, *,
                   rps: int, duration: float,
                   intensity: float | None = None
                   ) -> tuple[Workload, dict[str, Any]]:
    """Build the named adversary's workload and scenario overrides.

    ``intensity`` scales the attack arrival rate relative to the
    background ``rps``; ``None`` keeps each actor's calibrated default.
    """
    info = ADVERSARIES.get(name)
    if info is None:
        raise KeyError(f"unknown adversary {name!r}; "
                       f"choose from {adversary_names()}")
    if intensity is None:
        return info.build(corpus, rng, rps, duration)
    return info.build(corpus, rng, rps, duration, intensity=intensity)
