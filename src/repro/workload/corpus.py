"""Document corpora: what the server serves.

The paper's experiments use three shapes of content, all provided here:

* **uniform** — every file the same size (Table 1, 2 and 4 use 1 KB and
  1.5 MB corpora);
* **mixed / non-uniform** — "sizes varying from short, approximately 100
  bytes, to relatively long, approximately 1.5 MB" (Table 3);
* **single hot file** — "each client accessed the same file located on a
  single server" (the §4.2 skewed test).

Plus an Alexandria-Digital-Library-flavoured corpus for the examples:
map thumbnails, full-resolution aerial photographs, metadata pages and
spatial-query CGIs — the workload §1 motivates SWEB with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from ..sim import RandomStreams

if TYPE_CHECKING:  # pragma: no cover
    from ..core.sweb import SWEBCluster

__all__ = [
    "Document",
    "CGISpec",
    "Corpus",
    "uniform_corpus",
    "mixed_corpus",
    "single_hot_file",
    "adl_corpus",
    "KB",
    "MB",
]

KB = 1e3
MB = 1e6


@dataclass(frozen=True)
class Document:
    """One static file and its placement."""

    path: str
    size: float
    home: int


@dataclass(frozen=True)
class CGISpec:
    """One CGI program in a corpus."""

    path: str
    cpu_ops: float
    output_bytes: float
    reads_path: Optional[str] = None


@dataclass
class Corpus:
    """A set of documents (and optional CGIs) ready to install."""

    name: str
    documents: list[Document] = field(default_factory=list)
    cgis: list[CGISpec] = field(default_factory=list)
    #: real HTML markup by path, for pages browsers will parse
    markup: dict[str, str] = field(default_factory=dict)

    def install(self, cluster: "SWEBCluster") -> None:
        """Place every file and register every CGI on the cluster."""
        for doc in self.documents:
            cluster.add_file(doc.path, doc.size, home=doc.home)
        for cgi in self.cgis:
            cluster.add_cgi(cgi.path, cgi.cpu_ops, cgi.output_bytes,
                            reads_path=cgi.reads_path)
        if self.markup:
            cluster.page_markup.update(self.markup)

    @property
    def paths(self) -> list[str]:
        return [d.path for d in self.documents]

    @property
    def all_paths(self) -> list[str]:
        return self.paths + [c.path for c in self.cgis]

    @property
    def total_bytes(self) -> float:
        return sum(d.size for d in self.documents)

    @property
    def mean_size(self) -> float:
        if not self.documents:
            return 0.0
        return self.total_bytes / len(self.documents)

    def __len__(self) -> int:
        return len(self.documents)


def _place(i: int, n_nodes: int, placement, rng: Optional[RandomStreams]) -> int:
    """Resolve a placement strategy to a home node for document ``i``."""
    if isinstance(placement, int):
        return placement % n_nodes
    if placement == "round-robin":
        return i % n_nodes
    if placement == "random":
        if rng is None:
            raise ValueError("random placement needs an rng")
        return rng.integers("placement", 0, n_nodes)
    if callable(placement):
        return placement(i) % n_nodes
    raise ValueError(f"unknown placement {placement!r}")


def uniform_corpus(n_files: int, size: float, n_nodes: int,
                   placement="round-robin", prefix: str = "/docs",
                   ext: str = ".html",
                   rng: Optional[RandomStreams] = None) -> Corpus:
    """``n_files`` identical-size documents spread over ``n_nodes``."""
    if n_files < 1:
        raise ValueError(f"n_files must be >= 1, got {n_files}")
    if size < 0:
        raise ValueError(f"negative size: {size}")
    docs = [Document(path=f"{prefix}/file{i:05d}{ext}", size=float(size),
                     home=_place(i, n_nodes, placement, rng))
            for i in range(n_files)]
    return Corpus(name=f"uniform-{int(size)}B", documents=docs)


def mixed_corpus(n_files: int, n_nodes: int,
                 min_size: float = 100.0, max_size: float = 1.5 * MB,
                 placement="round-robin", prefix: str = "/mixed",
                 rng: Optional[RandomStreams] = None,
                 seed: int = 0) -> Corpus:
    """Non-uniform sizes, log-uniform between ``min_size`` and ``max_size``
    (matching Table 3's "100 bytes … 1.5 MB" span: a few huge images
    dominate the bytes while small pages dominate the count)."""
    if n_files < 1:
        raise ValueError(f"n_files must be >= 1, got {n_files}")
    if not 0 < min_size <= max_size:
        raise ValueError(f"bad size range [{min_size}, {max_size}]")
    rng = rng or RandomStreams(seed=seed)
    import math
    docs = []
    for i in range(n_files):
        u = rng.uniform("mixed-size", math.log(min_size), math.log(max_size))
        size = float(math.exp(u))
        ext = ".html" if size < 32 * KB else ".gif"
        docs.append(Document(path=f"{prefix}/doc{i:05d}{ext}", size=size,
                             home=_place(i, n_nodes, placement, rng)))
    return Corpus(name="mixed", documents=docs)


def bimodal_corpus(n_files: int, n_nodes: int, large_frac: float = 0.5,
                   small_range: tuple[float, float] = (100.0, 30 * KB),
                   large_range: tuple[float, float] = (0.8 * MB, 1.5 * MB),
                   placement="round-robin", prefix: str = "/m",
                   seed: int = 0) -> Corpus:
    """The Table 3 workload: small HTML pages mixed with large images.

    "Sizes varying from short, approximately 100 bytes, to relatively
    long, approximately 1.5MB" — a digital-library mix where a burst of
    large image fetches landing on one node creates the heterogeneous
    load that round-robin DNS cannot adapt to.
    """
    if not 0.0 <= large_frac <= 1.0:
        raise ValueError(f"large_frac must be in [0,1], got {large_frac}")
    import math
    rng = RandomStreams(seed=seed)
    docs = []
    for i in range(n_files):
        if rng.uniform("kind") < large_frac:
            size = rng.uniform("large", *large_range)
            ext = ".gif"
        else:
            lo, hi = small_range
            size = math.exp(rng.uniform("small", math.log(lo), math.log(hi)))
            ext = ".html"
        docs.append(Document(path=f"{prefix}/doc{i:05d}{ext}", size=size,
                             home=_place(i, n_nodes, placement, rng)))
    return Corpus(name="bimodal", documents=docs)


def single_hot_file(size: float = 1.5 * MB, home: int = 0,
                    path: str = "/hot/popular.gif") -> Corpus:
    """The §4.2 skewed test: one file, one home, everyone wants it."""
    return Corpus(name="hot-file",
                  documents=[Document(path=path, size=float(size), home=home)])


def html_site_corpus(n_pages: int, n_nodes: int, images_per_page: int = 4,
                     image_size: float = 150 * KB, text_bytes: int = 3000,
                     placement="round-robin", prefix: str = "/site",
                     seed: int = 0) -> Corpus:
    """A web site of *real HTML pages* with inline images.

    Each page is generated as genuine markup (``repro.web.html``) whose
    ``<img>`` tags reference image files placed across the cluster's
    disks; the :class:`~repro.web.browser.BrowserSession` model parses
    the served markup to discover what to fetch next — the paper's
    "burst of requests … one for each graphics image on the page",
    produced the way a browser actually produces it.
    """
    from ..web.html import HTMLPage

    if n_pages < 1:
        raise ValueError(f"n_pages must be >= 1, got {n_pages}")
    if images_per_page < 0:
        raise ValueError(f"negative images_per_page: {images_per_page}")
    rng = RandomStreams(seed=seed)
    docs: list[Document] = []
    markup: dict[str, str] = {}
    img_index = 0
    for i in range(n_pages):
        page_path = f"{prefix}/page{i:04d}.html"
        images = []
        for _ in range(images_per_page):
            img_path = f"{prefix}/img{img_index:05d}.gif"
            img_index += 1
            size = image_size * rng.uniform("imgsize", 0.5, 1.5)
            docs.append(Document(path=img_path, size=size,
                                 home=_place(img_index, n_nodes, placement,
                                             rng)))
            images.append(img_path)
        links = [f"{prefix}/page{(i + 1) % n_pages:04d}.html"]
        page = HTMLPage(path=page_path, title=f"Sheet {i}", images=images,
                        links=links, text_bytes=text_bytes)
        text = page.render()
        markup[page_path] = text
        docs.append(Document(path=page_path,
                             size=float(len(text.encode("utf-8"))),
                             home=_place(i, n_nodes, placement, rng)))
    return Corpus(name="html-site", documents=docs, markup=markup)


def adl_corpus(n_nodes: int, n_maps: int = 40, seed: int = 0) -> Corpus:
    """An Alexandria-Digital-Library-style collection.

    Per map sheet: a browse thumbnail (~20 KB GIF), a full-resolution
    scan (~1.5 MB TIFF), and a metadata page (~4 KB HTML).  Plus the
    spatial-query and metadata-search CGIs the prototype exposed.
    """
    rng = RandomStreams(seed=seed)
    docs = [Document(path="/index.html", size=8 * KB, home=0)]
    for i in range(n_maps):
        home = i % n_nodes
        base = f"/maps/sheet{i:04d}"
        thumb = 15 * KB + rng.uniform("thumb", 0, 10 * KB)
        full = 1.2 * MB + rng.uniform("full", 0, 0.6 * MB)
        meta = 3 * KB + rng.uniform("meta", 0, 2 * KB)
        docs.append(Document(path=f"{base}.thumb.gif", size=thumb, home=home))
        docs.append(Document(path=f"{base}.full.tif", size=full, home=home))
        docs.append(Document(path=f"{base}.meta.html", size=meta, home=home))
    cgis = [
        CGISpec(path="/cgi-bin/spatial-query", cpu_ops=8e6,
                output_bytes=12 * KB),
        CGISpec(path="/cgi-bin/metadata-search", cpu_ops=3e6,
                output_bytes=6 * KB),
        CGISpec(path="/cgi-bin/gazetteer", cpu_ops=1.5e6,
                output_bytes=2 * KB),
    ]
    return Corpus(name="adl", documents=docs, cgis=cgis)
