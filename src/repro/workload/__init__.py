"""Workload generation: document corpora and request-arrival processes.

Two client-population models live here: the per-client process model
(``generators`` + ``scenarios``, faithful but bounded at ~10^3–10^4
requests) and the aggregate *fluid* model (``fluid``), which drives a
Poisson/Zipf arrival stream through array-backed records so a single
process reaches 10^6+ requests in seconds.  See ``docs/SCALING.md``.
"""

from .adversaries import (
    ADVERSARIES,
    AdversaryInfo,
    BACKGROUND_CLIENT,
    CHURN_CLIENT,
    FLOOD_CLIENT,
    SLOWDRIP_CLIENT,
    adversary_names,
    make_adversary,
)
from .corpus import (
    CGISpec,
    bimodal_corpus,
    Corpus,
    Document,
    KB,
    MB,
    adl_corpus,
    html_site_corpus,
    mixed_corpus,
    single_hot_file,
    uniform_corpus,
)
from .scenarios import (
    DEFAULT_PROFILES,
    SCENARIOS,
    Scenario,
    build_scenario,
    scenario_names,
)
from .logs import (
    CLFEntry,
    format_clf,
    parse_clf,
    workload_from_clf,
    write_clf,
)
from .fluid import (
    FluidRecords,
    FluidRequest,
    FluidResult,
    FluidScenario,
    run_fluid,
)
from .generators import (
    Arrival,
    Workload,
    burst_workload,
    hot_file_sampler,
    poisson_workload,
    ramp_workload,
    uniform_sampler,
    weighted_sampler,
    zipf_sampler,
)

__all__ = [
    "ADVERSARIES",
    "AdversaryInfo",
    "Arrival",
    "BACKGROUND_CLIENT",
    "CHURN_CLIENT",
    "FLOOD_CLIENT",
    "SLOWDRIP_CLIENT",
    "adversary_names",
    "make_adversary",
    "bimodal_corpus",
    "CGISpec",
    "CLFEntry",
    "DEFAULT_PROFILES",
    "SCENARIOS",
    "Scenario",
    "Corpus",
    "Document",
    "FluidRecords",
    "FluidRequest",
    "FluidResult",
    "FluidScenario",
    "KB",
    "MB",
    "Workload",
    "adl_corpus",
    "build_scenario",
    "burst_workload",
    "hot_file_sampler",
    "html_site_corpus",
    "mixed_corpus",
    "poisson_workload",
    "ramp_workload",
    "run_fluid",
    "scenario_names",
    "single_hot_file",
    "uniform_corpus",
    "uniform_sampler",
    "format_clf",
    "parse_clf",
    "weighted_sampler",
    "workload_from_clf",
    "write_clf",
    "zipf_sampler",
]
