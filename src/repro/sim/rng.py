"""Deterministic named random substreams.

Every stochastic component of the simulation draws from its own named
substream derived from a single root seed, so adding a new source of
randomness never perturbs existing ones and every experiment is exactly
replayable.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent ``numpy.random.Generator`` substreams.

    Streams are keyed by name; the substream seed is derived from the root
    seed and a stable hash of the name (crc32), so the mapping is identical
    across processes and Python versions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._zipf_cache: dict[tuple[int, float], np.ndarray] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, key]))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child registry (for nested components)."""
        key = zlib.crc32(name.encode("utf-8"))
        return RandomStreams(seed=(self.seed * 1_000_003 + key) % (2**63))

    # Convenience draws -----------------------------------------------------
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, seq: Sequence[Any],
               p: Optional[Sequence[float]] = None) -> Any:
        idx = self.stream(name).choice(len(seq), p=p)
        return seq[int(idx)]

    def zipf_index(self, name: str, n: int, alpha: float = 1.0) -> int:
        """Draw an index in [0, n) with Zipf(alpha) popularity."""
        if n <= 0:
            raise ValueError("n must be positive")
        key = (n, float(alpha))
        weights = self._zipf_cache.get(key)
        if weights is None:
            ranks = np.arange(1, n + 1, dtype=float)
            weights = ranks ** (-alpha)
            weights /= weights.sum()
            self._zipf_cache[key] = weights
        return int(self.stream(name).choice(n, p=weights))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"
