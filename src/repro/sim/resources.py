"""Queueing resources for the simulation kernel.

Three classic primitives:

* :class:`Resource` — a counted resource with ``capacity`` slots and a FIFO
  wait queue (used for e.g. server accept slots, fork limits).
* :class:`Store` — an unbounded-or-bounded FIFO buffer of Python objects
  (used for message queues between processes).
* :class:`Container` — a continuous quantity with ``put``/``get`` of float
  amounts (used for e.g. memory accounting).

All wait queues are FIFO, which keeps the simulator deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Event, Simulator, SimulationError

__all__ = ["Request", "Release", "Resource", "Store", "Container"]


class Request(Event):
    """Pending acquisition of one slot of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw the request (and release the slot if already granted)."""
        self.resource._do_cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.cancel()


class Release(Event):
    """Immediate release of a previously granted :class:`Request`."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.sim)
        resource._do_release(request)
        self.succeed()


class Resource:
    """``capacity`` identical slots with a FIFO waiting line."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - len(self.users)

    def request(self) -> Request:
        """Ask for one slot; the returned event triggers when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back the slot held by ``request``."""
        return Release(self, request)

    # -- internals ---------------------------------------------------------
    def _do_request(self, req: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)

    def _do_release(self, req: Request) -> None:
        try:
            self.users.remove(req)
        except ValueError:
            raise SimulationError("releasing a request that does not hold the resource")
        self._grant_next()

    def _do_cancel(self, req: Request) -> None:
        if req in self.users:
            self.users.remove(req)
            self._grant_next()
        else:
            try:
                self.queue.remove(req)
            except ValueError:
                pass  # cancelled twice, or already granted+released: no-op

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (f"<Resource capacity={self.capacity} "
                f"used={self.count} queued={len(self.queue)}>")


class Store:
    """A FIFO buffer of arbitrary items with optional capacity bound."""

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event triggers once it is accepted."""
        ev = Event(self.sim)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-waiting put; returns False when the store is full."""
        if len(self.items) + len(self._putters) >= self.capacity:
            return False
        self.put(item)
        return True

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                ev, item = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progressed = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True


class Container:
    """A continuous quantity (float) with blocking put/get."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple[Event, float]] = deque()
        self._putters: Deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers once it fits under ``capacity``."""
        if amount < 0:
            raise ValueError(f"negative put amount: {amount}")
        ev = Event(self.sim)
        self._putters.append((ev, amount))
        self._dispatch()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers once that much is available."""
        if amount < 0:
            raise ValueError(f"negative get amount: {amount}")
        ev = Event(self.sim)
        self._getters.append((ev, amount))
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity + 1e-12:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed()
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if amount <= self._level + 1e-12:
                    self._getters.popleft()
                    self._level = max(0.0, self._level - amount)
                    ev.succeed()
                    progressed = True
