"""Structured event tracing.

Every subsystem can emit timestamped, categorised records into a shared
:class:`Trace`.  Experiments use it to render Figure 1 (the HTTP
transaction sequence) and Figure 3 (broker/oracle/loadd interactions), and
tests use it to assert orderings without poking at internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, which component, what happened, details."""

    time: float
    category: str
    actor: str
    action: str
    detail: dict[str, Any]

    def format(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.6f}] {self.category:>9} {self.actor:<14} {self.action:<18} {kv}"


class Trace:
    """An append-only, filterable log of :class:`TraceRecord`."""

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None) -> None:
        self.enabled = enabled
        self.max_records = max_records
        self.records: list[TraceRecord] = []

    def emit(self, time: float, category: str, actor: str, action: str,
             **detail: Any) -> None:
        """Append a record (no-op when disabled or full)."""
        if not self.enabled:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            return
        self.records.append(TraceRecord(time, category, actor, action, detail))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, category: Optional[str] = None, actor: Optional[str] = None,
               action: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None,
               ) -> list[TraceRecord]:
        """Records matching all the given criteria, in time order."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if actor is not None and rec.actor != actor:
                continue
            if action is not None and rec.action != action:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def actions(self, **kwargs: Any) -> list[str]:
        """Just the action names of the matching records."""
        return [rec.action for rec in self.filter(**kwargs)]

    def render(self, **kwargs: Any) -> str:
        """Human-readable dump of the matching records."""
        return "\n".join(rec.format() for rec in self.filter(**kwargs))
