"""Structured event tracing.

Every subsystem can emit timestamped, categorised records into a shared
:class:`Trace`.  Experiments use it to render Figure 1 (the HTTP
transaction sequence) and Figure 3 (broker/oracle/loadd interactions), and
tests use it to assert orderings without poking at internals.

Verbosity is gated cheaply so tracing costs ~nothing when off (the hot
paths check :attr:`Trace.active` before even building the detail dict):

* every record carries a *level*: :data:`SUMMARY` (the default — scheduling
  decisions, request lifecycle, faults) or :data:`DETAIL` (the high-volume
  sites: per-broadcast loadd and per-read io chatter mark themselves with
  ``level=DETAIL``).  ``Trace(level=SUMMARY)`` drops DETAIL records at the
  door;
* ``Trace(sample_every=n)`` keeps every *n*-th record per category — a
  deterministic decimation for long runs;
* ``max_records`` caps the log; once full the trace deactivates itself.

See docs/METRICS.md for the knobs and docs/PERFORMANCE.md for the cost
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Trace", "SUMMARY", "DETAIL"]

#: Level of headline records: scheduling, request lifecycle, faults.
SUMMARY = 1
#: Level of high-volume records: loadd broadcasts, per-read io chatter.
DETAIL = 2


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace line: when, which component, what happened, details."""

    time: float
    category: str
    actor: str
    action: str
    detail: dict[str, Any]

    def format(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.6f}] {self.category:>9} {self.actor:<14} {self.action:<18} {kv}"


class Trace:
    """An append-only, filterable log of :class:`TraceRecord`.

    ``level`` keeps only records at or below that verbosity (default
    :data:`DETAIL` keeps everything); ``sample_every`` keeps every n-th
    surviving record per category; ``max_records`` bounds the log.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None,
                 level: int = DETAIL, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.max_records = max_records
        self.level = level
        self.sample_every = sample_every
        self.records: list[TraceRecord] = []
        self._seen: dict[str, int] = {}
        self._enabled = bool(enabled)
        #: cheap gate hot paths read before building a record's detail
        self.active = self._enabled and (max_records is None or max_records > 0)

    @property
    def enabled(self) -> bool:
        """Master switch; assignment keeps :attr:`active` in sync."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self.active = self._enabled and (
            self.max_records is None or len(self.records) < self.max_records)

    def emit(self, time: float, category: str, actor: str, action: str,
             level: int = SUMMARY, **detail: Any) -> None:
        """Append a record (no-op when inactive, filtered or sampled out)."""
        if not self.active or level > self.level:
            return
        if self.sample_every > 1:
            seen = self._seen.get(category, 0)
            self._seen[category] = seen + 1
            if seen % self.sample_every:
                return
        self.records.append(TraceRecord(time, category, actor, action, detail))
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.active = False

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, category: Optional[str] = None, actor: Optional[str] = None,
               action: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None,
               ) -> list[TraceRecord]:
        """Records matching all the given criteria, in time order."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if actor is not None and rec.actor != actor:
                continue
            if action is not None and rec.action != action:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def actions(self, **kwargs: Any) -> list[str]:
        """Just the action names of the matching records."""
        return [rec.action for rec in self.filter(**kwargs)]

    def render(self, **kwargs: Any) -> str:
        """Human-readable dump of the matching records."""
        return "\n".join(rec.format() for rec in self.filter(**kwargs))
