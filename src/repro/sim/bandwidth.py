"""Fair-share (processor-sharing) service stations.

:class:`FairShareServer` models a resource with a total service *rate*
(CPU ops/s, disk bytes/s, link bytes/s) shared among all active jobs by
weighted processor sharing with optional per-job rate caps (water-filling).
It is the single modelling primitive behind SWEB's CPUs, disks, the Meiko
fat-tree ports, the NOW's shared Ethernet bus, and WAN links.

The implementation is event-driven: whenever the set of active jobs (or the
rate) changes, every job's remaining work is advanced using the allocation
that was in force, a new allocation is computed, and a single wake-up timer
is scheduled for the earliest completion.  Stale timers are ignored via a
generation counter, so membership churn is O(n) per change and the server
never scans jobs on a clock tick.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from .engine import Event, Simulator

__all__ = ["Job", "FairShareServer"]

_EPS = 1e-9


class Job:
    """One unit of work in service at a :class:`FairShareServer`."""

    __slots__ = ("server", "work", "remaining", "weight", "cap", "tag",
                 "done", "submitted_at", "finished_at", "_rate")

    def __init__(self, server: "FairShareServer", work: float, weight: float,
                 cap: Optional[float], tag: Any) -> None:
        self.server = server
        self.work = float(work)
        self.remaining = float(work)
        self.weight = float(weight)
        self.cap = cap
        self.tag = tag
        #: Event that fires (with the job as value) when service completes.
        self.done: Event = Event(server.sim)
        self.submitted_at = server.sim.now
        self.finished_at: Optional[float] = None
        self._rate = 0.0  # current allocated rate

    @property
    def progress(self) -> float:
        """Fraction of the work completed, in [0, 1]."""
        if self.work <= 0:
            return 1.0
        return 1.0 - self.remaining / self.work

    @property
    def rate(self) -> float:
        """Service rate currently allocated to this job."""
        return self._rate

    def __repr__(self) -> str:
        return (f"<Job tag={self.tag!r} remaining={self.remaining:.3g}/"
                f"{self.work:.3g} rate={self._rate:.3g}>")


class FairShareServer:
    """Weighted processor-sharing station with per-job caps.

    Parameters
    ----------
    sim:
        The owning simulator.
    rate:
        Total service rate (work units per simulated second).
    name:
        Label used in repr and traces.
    """

    def __init__(self, sim: Simulator, rate: float, name: str = "server") -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.sim = sim
        self.name = name
        self._rate = float(rate)
        self._jobs: list[Job] = []
        self._generation = 0
        self._last_update = sim.now
        # Integrals for load/utilisation accounting (see sample helpers).
        self._pop_integral = 0.0   # ∫ n(t) dt
        self._busy_integral = 0.0  # ∫ [n(t) > 0] dt
        self._work_done = 0.0      # total work completed
        self._jobs_completed = 0

    # -- public API ----------------------------------------------------------
    @property
    def rate(self) -> float:
        """Total service rate."""
        return self._rate

    @property
    def njobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._jobs)

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Snapshot of the jobs currently in service."""
        return tuple(self._jobs)

    @property
    def work_completed(self) -> float:
        """Total work units served since construction."""
        return self._work_done

    @property
    def jobs_completed(self) -> int:
        """Number of jobs fully served since construction."""
        return self._jobs_completed

    def submit(self, work: float, weight: float = 1.0,
               cap: Optional[float] = None, tag: Any = None) -> Job:
        """Enter a job of ``work`` units; ``job.done`` fires at completion.

        ``cap`` bounds the rate this single job may receive (e.g. a WAN
        client whose modem is slower than the server's link).
        """
        if work < 0:
            raise ValueError(f"negative work: {work}")
        if weight <= 0:
            raise ValueError(f"weight must be > 0, got {weight}")
        if cap is not None and cap <= 0:
            raise ValueError(f"cap must be > 0, got {cap}")
        self._advance()
        job = Job(self, work, weight, cap, tag)
        if job.remaining <= _EPS:
            self._finish(job)
        else:
            self._jobs.append(job)
        self._reallocate()
        return job

    def cancel(self, job: Job) -> None:
        """Abort a job; its ``done`` event fails with ``InterruptedError``."""
        self._advance()
        if job in self._jobs:
            self._jobs.remove(job)
            job._rate = 0.0
            job.done.fail(InterruptedError(f"job {job.tag!r} cancelled"))
            job.done.defuse()
        self._reallocate()

    def set_rate(self, rate: float) -> None:
        """Change the total service rate (e.g. node slowdown)."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._advance()
        self._rate = float(rate)
        self._reallocate()

    def service_time(self, work: float) -> float:
        """Unloaded service time for ``work`` units (work / rate)."""
        if self._rate <= 0:
            return math.inf
        return work / self._rate

    # -- load accounting ------------------------------------------------------
    def population_integral(self) -> float:
        """∫ n(t) dt up to now; diff two readings for a window average."""
        self._advance()
        self._reallocate()
        return self._pop_integral

    def busy_integral(self) -> float:
        """∫ [n(t) > 0] dt up to now (busy time)."""
        self._advance()
        self._reallocate()
        return self._busy_integral

    # -- internals -------------------------------------------------------------
    def _advance(self) -> None:
        """Apply progress accrued since the last state change."""
        now = self.sim.now
        dt = now - self._last_update
        if dt <= 0:
            # Nothing can have progressed (or finished: every path that
            # changes `remaining` runs the completion scan below itself).
            return
        self._last_update = now
        jobs = self._jobs
        n = len(jobs)
        if not n:
            return
        self._pop_integral += n * dt
        self._busy_integral += dt
        work_done = self._work_done
        any_done = False
        for job in jobs:
            step = job._rate * dt
            rem = job.remaining
            if step > rem:
                step = rem
            job.remaining = rem - step
            work_done += step
            if rem - step <= _EPS * (job.work if job.work > 1.0 else 1.0):
                any_done = True
        self._work_done = work_done
        # Complete any job that ran out of work exactly now.
        if any_done:
            finished = [j for j in jobs
                        if j.remaining <= _EPS * max(1.0, j.work)]
            for job in finished:
                jobs.remove(job)
                self._finish(job)

    def _finish(self, job: Job) -> None:
        job.remaining = 0.0
        job._rate = 0.0
        job.finished_at = self.sim.now
        self._jobs_completed += 1
        job.done.succeed(job)

    def _reallocate(self) -> None:
        """Water-filling rate allocation, then schedule the next completion."""
        self._generation += 1
        jobs = self._jobs
        if not jobs:
            return
        total = self._rate
        for job in jobs:
            if job.cap is not None:
                break
        else:
            # Fast path: no capped job in service (the overwhelmingly
            # common case) — the fair share is final on the first pass, so
            # skip the iterative water-filling and its list copies.  The
            # rate expression matches the general path bit for bit.
            if total > _EPS:
                wsum = sum(j.weight for j in jobs)
                for j in jobs:
                    j._rate = total * j.weight / wsum
            else:
                for j in jobs:
                    j._rate = 0.0
            self._schedule_wakeup()
            return
        pending = list(jobs)
        # Fix capped jobs whose fair share exceeds their cap, iteratively.
        for job in pending:
            job._rate = 0.0
        while pending and total > _EPS:
            wsum = sum(j.weight for j in pending)
            capped = [j for j in pending
                      if j.cap is not None and total * j.weight / wsum > j.cap + _EPS]
            if not capped:
                for j in pending:
                    j._rate = total * j.weight / wsum
                total = 0.0
                break
            for j in capped:
                j._rate = j.cap
                total -= j.cap
                pending.remove(j)
            total = max(total, 0.0)
        self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        """Arm a timer for the earliest completion under the new rates."""
        # Earliest completion under the new allocation.
        soonest = math.inf
        for job in self._jobs:
            if job._rate > _EPS:
                soonest = min(soonest, job.remaining / job._rate)
        if math.isfinite(soonest):
            # Floor the delay at the clock's float resolution: a delay below
            # one ulp of `now` would not advance time, and the wake-up would
            # re-arm itself forever (zero-dt livelock).
            floor = 4.0 * math.ulp(max(1.0, self.sim.now))
            gen = self._generation
            timer = self.sim.timeout(max(soonest, floor))
            timer.callbacks.append(lambda ev, gen=gen: self._wake(gen))

    def _wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # state changed since this timer was armed
        self._advance()
        self._reallocate()

    def __repr__(self) -> str:
        return f"<FairShareServer {self.name!r} rate={self._rate:.3g} njobs={self.njobs}>"
