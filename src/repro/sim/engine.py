"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, written from scratch so the reproduction has no dependencies
beyond numpy.  Processes are Python generators that ``yield`` :class:`Event`
objects; the :class:`Simulator` advances virtual time and resumes each
process when the event it waits on triggers.

Determinism: the event queue breaks ties on (time, priority, sequence
number), so two runs with the same seed produce identical schedules.

Performance: this file is the hottest code in the repository (see
``docs/PERFORMANCE.md``).  The main loop in :meth:`Simulator.run` inlines
:meth:`Simulator.step`, the trigger/timeout paths push onto the heap
directly instead of going through :meth:`Simulator._push`, and processed
events return their callback lists to a per-simulator free pool so steady
state allocates no lists.  All of it is behaviour-preserving: the
schedule order — (time, priority, seq) — is untouched, and
``tests/test_determinism.py`` pins bit-identical fixed-seed results.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for interrupts and simulation-control events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for illegal kernel operations (double trigger, bad yield...)."""


class StopSimulation(Exception):
    """Internal control-flow exception that halts :meth:`Simulator.run`."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    ``cause`` carries the value given by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A condition that may trigger once, at a point in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules it on the event queue; when the simulator
    pops it, the event is *processed* and its callbacks run (resuming any
    process waiting on it).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_defused")

    #: event states
    PENDING, TRIGGERED, PROCESSED = 0, 1, 2

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        pool = sim._cb_pool
        self.callbacks: Optional[list[Callable[["Event"], None]]] = (
            pool.pop() if pool else [])
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = Event.PENDING
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed`/:meth:`fail` has been called."""
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the simulator has run this event's callbacks."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` (or the failure exception)."""
        if self._state == Event.PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._trigger(False, exception)
        return self

    def defuse(self) -> "Event":
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True
        return self

    def _trigger(self, ok: bool, value: Any, priority: int = NORMAL) -> None:
        if self._state != Event.PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = ok
        self._value = value
        self._state = Event.TRIGGERED
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, priority, seq, self))

    # -- combinators -------------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x} state={self._state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Hot path: sets every Event field directly (no super() chain) and
        # pushes the pre-triggered event onto the heap in one go.
        self.sim = sim
        pool = sim._cb_pool
        self.callbacks = pool.pop() if pool else []
        self._value = value
        self._ok = True
        self._state = Event.TRIGGERED
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, NORMAL, seq, self))


class _Interruption(Event):
    """Urgent helper event that throws :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.sim)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self._state = Event.TRIGGERED
        self.callbacks.append(self._apply)
        self.sim._push(self, delay=0.0, priority=URGENT)

    def _apply(self, event: Event) -> None:
        proc = self.process
        if proc.triggered:  # process already finished; nothing to interrupt
            return
        # Detach the process from whatever it currently waits on, then make
        # the interruption the thing that resumes it.
        if proc._target is not None and proc._target.callbacks is not None:
            try:
                proc._target.callbacks.remove(proc._resume)
            except ValueError:
                pass
        proc._resume(self)


class Process(Event):
    """A running generator.  As an :class:`Event` it triggers when the
    generator returns (value = return value) or raises (failure)."""

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: ProcessGenerator,
                 name: Optional[str] = None) -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(f"spawn() needs a generator, got {gen!r}")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick the process off via an initialization event at the current time.
        init = Event(sim)
        init._ok = True
        init._state = Event.TRIGGERED
        init.callbacks.append(self._resume)
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, URGENT, seq, init))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == Event.PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if just started)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self.name} has terminated; cannot interrupt")
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        sim = self.sim
        sim._active_process = self
        gen = self.gen
        send = gen.send
        try:
            while True:
                try:
                    if event._ok:
                        target = send(event._value)
                    else:
                        event._defused = True
                        target = gen.throw(event._value)
                except StopIteration as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return

                if not isinstance(target, Event):
                    msg = (f"process {self.name!r} yielded {target!r}; "
                           f"processes must yield Event instances")
                    err = SimulationError(msg)
                    try:
                        gen.throw(err)
                    except StopIteration as stop:
                        self._target = None
                        self.succeed(stop.value)
                        return
                    except SimulationError:
                        self._target = None
                        self.fail(err)
                        return
                if target.sim is not sim:
                    raise SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        f"different simulator")
                cbs = target.callbacks
                if cbs is None:
                    # Already processed: resume immediately with its value.
                    event = target
                    continue
                cbs.append(self._resume)
                self._target = target
                return
        finally:
            sim._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} alive={self.is_alive}>"


class _Condition(Event):
    """Base for AnyOf/AllOf."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Only events that have actually been *processed* (their callbacks
        # ran) count as fired; a pending Timeout is triggered-but-unfired.
        return {ev: ev._value
                for ev in self.events
                if ev.callbacks is None and ev._ok}


class AnyOf(_Condition):
    """Triggers when any child event succeeds (fails on first failure)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Triggers when every child event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


class Simulator:
    """The event loop: owns virtual time and the pending-event heap."""

    #: cap on the callback-list free pool (plenty for the deepest cascade)
    _POOL_MAX = 256

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._event_count = 0
        # Free pool of empty callback lists: Event.__init__ pops, the run
        # loop returns each processed event's (cleared) list.  Purely an
        # allocation-rate optimisation — never observable.
        self._cb_pool: list[list] = []

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def event_count(self) -> int:
        """Total events processed so far (a determinism fingerprint)."""
        return self._event_count

    # -- event construction --------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event, to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now.

        Hot path: builds the :class:`Timeout` without the ``__init__``
        call frame (one frame per event adds up) — keep the field
        assignments in sync with :meth:`Timeout.__init__`.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        ev = Timeout.__new__(Timeout)
        ev.sim = self
        pool = self._cb_pool
        ev.callbacks = pool.pop() if pool else []
        ev._value = value
        ev._ok = True
        ev._state = 1  # Event.TRIGGERED
        ev._defused = False
        ev.delay = delay
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now + delay, NORMAL, seq, ev))
        return ev

    def spawn(self, gen: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    def defer(self, fn: Callable[[Event], None]) -> Event:
        """Run ``fn(event)`` urgently at the current time, once the event
        being processed now has finished.

        A process-free alternative to :meth:`spawn` for straight-line
        callback chains (the network/disk pumps): it schedules exactly
        like a new process's initialisation event — same URGENT priority,
        same sequence position — without the generator, the
        :class:`Process` object, or the process-completion event.
        """
        ev = Event(self)
        ev._ok = True
        ev._state = Event.TRIGGERED
        ev.callbacks.append(fn)
        self._seq = seq = self._seq + 1
        heappush(self._queue, (self._now, URGENT, seq, ev))
        return ev

    # Alias familiar to simpy users.
    process = spawn

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _push(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        :meth:`run` inlines this body for speed; keep the two in sync.
        """
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heappop(self._queue)
        if when < self._now - 1e-12:
            raise SimulationError("event scheduled in the past")
        self._now = max(self._now, when)
        self._event_count += 1
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        event._state = Event.PROCESSED
        if not event._ok and not event._defused:
            exc = event._value
            raise exc
        if len(self._cb_pool) < self._POOL_MAX:
            callbacks.clear()
            self._cb_pool.append(callbacks)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run up to
        that time), or an :class:`Event` (run until it is processed, and
        return its value).
        """
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    if not until._ok and not until._defused:
                        until._defused = True
                        raise until._value
                    return until._value

                def _halt(ev: Event) -> None:
                    if not ev._ok and not ev._defused:
                        ev._defused = True
                        raise ev._value
                    raise StopSimulation(ev._value)

                until.callbacks.append(_halt)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} lies in the past (now={self._now})")
                stopper = Event(self)
                stopper._ok = True
                stopper._value = None
                stopper._state = Event.TRIGGERED
                stopper.callbacks = [lambda ev: (_ for _ in ()).throw(StopSimulation(None))]
                self._seq += 1
                heapq.heappush(self._queue, (at, URGENT, self._seq, stopper))
        # Hot loop: an inlined copy of step() (kept in sync by hand) with
        # bound locals — the method-call and attribute-lookup overhead per
        # event is the single largest kernel cost.
        queue = self._queue
        pool = self._cb_pool
        pool_max = self._POOL_MAX
        pop = heappop
        try:
            while queue:
                when, _prio, _seq, event = pop(queue)
                now = self._now
                if when >= now:
                    self._now = when
                elif when < now - 1e-12:
                    raise SimulationError("event scheduled in the past")
                self._event_count += 1
                callbacks = event.callbacks
                event.callbacks = None
                for cb in callbacks:
                    cb(event)
                event._state = 2  # Event.PROCESSED
                if not event._ok and not event._defused:
                    raise event._value
                if len(pool) < pool_max:
                    callbacks.clear()
                    pool.append(callbacks)
        except StopSimulation as stop:
            stop_value = stop.value
            if until is not None and not isinstance(until, Event):
                self._now = float(until)
            return stop_value
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError("run() ran out of events before `until` triggered")
        return until._value if isinstance(until, Event) else None
