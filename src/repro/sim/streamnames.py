"""Central registry of every named RNG substream in the reproduction.

:class:`repro.sim.rng.RandomStreams` derives each substream's seed from
``crc32(name)`` — which means two *different* names that happen to
share a crc32 value would silently yield **identical** "independent"
streams and quietly correlate whatever they drive.  Registering every
name here makes the namespace auditable: ``sweb-repro lint --deep``
statically collects every name used anywhere in ``src/repro``, checks
the used and registered sets coincide, and proves the registered set is
crc32-collision-free (see ``lint/rules/streams.py``).

Adding a substream = pick a fresh name at the call site *and* add it
here with a one-line purpose; the deep lint gate holds you to both.
"""

from __future__ import annotations

import zlib

__all__ = ["STREAM_NAMES", "crc32_key", "registered_names",
           "stream_collisions"]

#: every named substream, with the draw it feeds.  Keys are the exact
#: string literals passed to RandomStreams methods; values are
#: documentation only.
STREAM_NAMES: dict[str, str] = {
    # workload/corpus.py — synthetic file-corpus construction
    "placement": "home node for each generated file",
    "mixed-size": "log-uniform file sizes for the mixed corpus",
    "kind": "large-vs-small coin flip for the bimodal corpus",
    "large": "sizes of the large files in the bimodal corpus",
    "small": "log-uniform sizes of the small bimodal files",
    "imgsize": "per-image size jitter for the image corpus",
    "thumb": "thumbnail sizes for the gallery corpus",
    "full": "full-resolution image sizes for the gallery corpus",
    "meta": "metadata-file sizes for the gallery corpus",
    # workload/generators.py — request samplers and arrival processes
    "sampler": "uniform path draws (uniform_sampler default stream)",
    "zipf": "Zipf-ranked path draws (zipf_sampler default stream)",
    "zipf-tail": "uniform tail beyond the hot set in zipf_sampler",
    "weighted": "explicit-probability path draws (weighted_sampler)",
    "client-mix": "which client class issues the next burst request",
    "poisson": "exponential inter-arrival gaps in poisson_workload",
    # workload/fluid.py — aggregate million-request model
    "fluid-arrivals": "per-step Poisson arrival counts",
    "fluid-paths": "batched path-index draws for fluid cells",
    "fluid-sizes": "response-size draws for the fluid service tables",
    "fluid-choice": "random-policy node picks in the fluid stepper",
    "fluid-po2": "power-of-two candidate pairs in the fluid stepper",
    # core/policies.py — per-client scheduling strategies
    "random-policy": "uniform node pick for the random strategy",
    "po2-policy": "two-candidate sampling for power-of-two-choices",
    # experiments/striping.py — stripe-read burst driver
    "pick": "which striped file each burst request fetches",
    # workload/adversaries.py — hostile client actors
    "adv-hotspot": "target picks and burst jitter for the hotspot flood",
    "adv-cachebust": "corpus-permutation walk for the cache-busting churn",
    "adv-slowdrip": "arrival jitter and path picks for slow-drip clients",
    "adv-dnsskew": "arrival jitter for the DNS-cache skew flood",
    # fuzz/generator.py — randomized end-to-end configuration draws
    "fuzz-shape": "topology draws: mode, node count, het/hom, policy",
    "fuzz-workload": "workload draws: rates, sizes, skew, adversary",
    "fuzz-faults": "fault-plan draws: clause count, kinds, windows",
    "fuzz-knobs": "cache/broker/mitigation knob draws",
    # geo/scenario.py — multi-site client population assignment
    "geo-affinity": "home-site draw for each arriving client request",
    # fuzz/generator.py — geo dimension draws (independent substream)
    "fuzz-geo": "geo draws: site count, WAN link matrix, edge budgets",
}


def crc32_key(name: str) -> int:
    """The seed key ``RandomStreams`` derives for ``name``."""
    return zlib.crc32(name.encode("utf-8"))


def registered_names() -> tuple[str, ...]:
    """Every registered substream name, sorted."""
    return tuple(sorted(STREAM_NAMES))


def stream_collisions(names: tuple[str, ...] | None = None
                      ) -> tuple[tuple[str, str], ...]:
    """Pairs of distinct names sharing a crc32 key (ideally empty)."""
    pool = registered_names() if names is None else tuple(sorted(names))
    by_key: dict[int, str] = {}
    out: list[tuple[str, str]] = []
    for name in pool:
        key = crc32_key(name)
        if key in by_key and by_key[key] != name:
            out.append((by_key[key], name))
        else:
            by_key[key] = name
    return tuple(out)
