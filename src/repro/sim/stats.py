"""Measurement helpers: summaries, time-weighted values, counters.

The experiment harness reports the same quantities the paper does —
average response time, drop rate, maximum sustained rps, per-phase cost
breakdowns, and server-side CPU-overhead percentages — all built from
these primitives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

# Percentile math is deliberately not implemented here: repro.obs (the
# dependency-free observability layer below sim) owns the one shared
# implementation, so Summary, Tally, histograms and reports can never
# disagree about what "p95" means.
from ..obs.percentiles import percentiles as _percentiles

__all__ = ["Summary", "Tally", "TimeWeighted", "Counter", "PhaseAccumulator"]


@dataclass(frozen=True)
class Summary:
    """Immutable numeric summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    total: float

    @staticmethod
    def empty() -> "Summary":
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, 0.0)

    @staticmethod
    def of(values: Iterable[float]) -> "Summary":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return Summary.empty()
        p50, p90, p99 = _percentiles(arr, (50, 90, 99))
        return Summary(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            total=float(arr.sum()),
        )


class Tally:
    """Collects scalar observations (e.g. per-request response times)."""

    def __init__(self, name: str = "tally") -> None:
        self.name = name
        self.values: list[float] = []

    def record(self, value: float) -> None:
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def total(self) -> float:
        return float(np.sum(self.values)) if self.values else 0.0

    def percentile(self, q: float) -> float:
        return _percentiles(self.values, (q,))[0]

    def summary(self) -> Summary:
        return Summary.of(self.values)

    def __repr__(self) -> str:
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.4g}>"


class TimeWeighted:
    """A piecewise-constant signal with time-weighted averaging.

    ``update(t, v)`` sets the value at time ``t``; ``average(t0, t1)`` is the
    exact time-weighted mean over the window (used for CPU load averages
    seen by ``loadd``).
    """

    def __init__(self, initial: float = 0.0, at: float = 0.0) -> None:
        self._times: list[float] = [float(at)]
        self._values: list[float] = [float(initial)]

    @property
    def current(self) -> float:
        return self._values[-1]

    def update(self, t: float, value: float) -> None:
        if t < self._times[-1] - 1e-12:
            raise ValueError("time must be non-decreasing")
        if value == self._values[-1]:
            return
        self._times.append(float(t))
        self._values.append(float(value))

    def add(self, t: float, delta: float) -> None:
        self.update(t, self._values[-1] + delta)

    def value_at(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        idx = max(idx, 0)
        return self._values[idx]

    def average(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return self.value_at(t0)
        times = np.asarray(self._times)
        values = np.asarray(self._values)
        # Integrate the step function over [t0, t1].
        edges = np.concatenate(([t0], times[(times > t0) & (times < t1)], [t1]))
        idx = np.searchsorted(times, edges[:-1], side="right") - 1
        idx = np.clip(idx, 0, len(values) - 1)
        widths = np.diff(edges)
        return float(np.sum(values[idx] * widths) / (t1 - t0))


class Counter:
    """Named integer counters (drops, redirects, cache hits...)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + by

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"<Counter {self._counts!r}>"


class PhaseAccumulator:
    """Accumulates time spent per named phase (Table 5's breakdown)."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def record(self, phase: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration for {phase!r}: {duration}")
        self._totals[phase] = self._totals.get(phase, 0.0) + duration
        self._counts[phase] = self._counts.get(phase, 0) + 1

    def total(self, phase: str) -> float:
        return self._totals.get(phase, 0.0)

    def count(self, phase: str) -> int:
        return self._counts.get(phase, 0)

    def mean(self, phase: str) -> float:
        n = self._counts.get(phase, 0)
        return self._totals.get(phase, 0.0) / n if n else float("nan")

    def phases(self) -> list[str]:
        return sorted(self._totals)

    def as_dict(self) -> dict[str, float]:
        return dict(self._totals)

    def merge(self, other: "PhaseAccumulator") -> None:
        for phase, total in other._totals.items():
            self._totals[phase] = self._totals.get(phase, 0.0) + total
            self._counts[phase] = self._counts.get(phase, 0) + other._counts[phase]
