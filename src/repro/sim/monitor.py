"""Periodic signal monitoring and ASCII charts.

A :class:`Monitor` samples named probes (callables) at a fixed period
inside the simulation — the instrumentation equivalent of watching
``xload`` on every node of the Meiko — and renders the series as
terminal charts for the examples and reports.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from .engine import Event, Process, Simulator

__all__ = ["Monitor", "ascii_series", "ascii_sparkline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


class Monitor:
    """Samples named probes every ``period`` simulated seconds."""

    def __init__(self, sim: Simulator, period: float = 1.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.sim = sim
        self.period = float(period)
        self._probes: dict[str, Callable[[], float]] = {}
        self.times: list[float] = []
        self.samples: dict[str, list[float]] = {}
        self._proc = None

    def probe(self, name: str, fn: Callable[[], float]) -> "Monitor":
        """Register a probe (chainable)."""
        if name in self._probes:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = fn
        self.samples[name] = []
        return self

    def start(self) -> Process:
        """Spawn the sampling process."""
        if self._proc is None:
            self._proc = self.sim.spawn(self._run(), name="monitor")
        return self._proc

    def _run(self) -> Iterator[Event]:
        while True:
            self.times.append(self.sim.now)
            for name, fn in self._probes.items():
                self.samples[name].append(float(fn()))
            yield self.sim.timeout(self.period)

    # -- access -------------------------------------------------------------
    def series(self, name: str) -> tuple[list[float], list[float]]:
        """(times, values) for one probe."""
        if name not in self.samples:
            raise KeyError(f"unknown probe {name!r}")
        return self.times[:len(self.samples[name])], self.samples[name]

    def peak(self, name: str) -> float:
        values = self.samples.get(name) or [float("nan")]
        return max(values)

    def mean(self, name: str) -> float:
        values = self.samples.get(name)
        return float(np.mean(values)) if values else float("nan")

    def render(self, width: int = 60) -> str:
        """One sparkline per probe, labelled with min/mean/max."""
        lines = []
        for name in self._probes:
            values = self.samples[name]
            if not values:
                continue
            lines.append(f"{name:<20} {ascii_sparkline(values, width)} "
                         f"min {min(values):.2f} mean "
                         f"{float(np.mean(values)):.2f} max {max(values):.2f}")
        return "\n".join(lines)


def ascii_sparkline(values: Iterable[float], width: int = 60) -> str:
    """Compress a series into a fixed-width block-character sparkline."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Average into `width` buckets.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
                        for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _BLOCKS[1] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(s))] for s in scaled)


def ascii_series(values: Iterable[float], height: int = 8, width: int = 60,
                 label: str = "") -> str:
    """A multi-line bar chart of a series (rows = magnitude bands)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(no data)"
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
                        for a, b in zip(edges[:-1], edges[1:])])
    hi = float(arr.max())
    if hi <= 0:
        hi = 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = hi * (level - 0.5) / height
        row = "".join("█" if v >= threshold else " " for v in arr)
        prefix = f"{hi * level / height:8.2f} |" if level in (height, 1) \
            else "         |"
        rows.append(prefix + row)
    rows.append("         +" + "-" * len(arr))
    if label:
        rows.append(f"          {label}")
    return "\n".join(rows)
