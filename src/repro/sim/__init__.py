"""Discrete-event simulation kernel for the SWEB reproduction.

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Process`, :class:`Interrupt` —
  the event loop and process model (:mod:`repro.sim.engine`).
* :class:`Resource`, :class:`Store`, :class:`Container` — queueing
  primitives (:mod:`repro.sim.resources`).
* :class:`FairShareServer` — processor-sharing stations, the model behind
  CPUs, disks and links (:mod:`repro.sim.bandwidth`).
* :class:`RandomStreams` — deterministic named substreams.
* :class:`Tally`, :class:`TimeWeighted`, :class:`Counter`,
  :class:`PhaseAccumulator`, :class:`Summary` — metrics.
* :class:`Trace` — structured event log.
"""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    NORMAL,
    URGENT,
)
from .bandwidth import FairShareServer, Job
from .monitor import Monitor, ascii_series, ascii_sparkline
from .resources import Container, Resource, Store
from .rng import RandomStreams
from .stats import Counter, PhaseAccumulator, Summary, Tally, TimeWeighted
from .streamnames import STREAM_NAMES, crc32_key, stream_collisions
from .trace import DETAIL as TRACE_DETAIL
from .trace import SUMMARY as TRACE_SUMMARY
from .trace import Trace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "Event",
    "FairShareServer",
    "Interrupt",
    "Job",
    "Monitor",
    "NORMAL",
    "PhaseAccumulator",
    "Process",
    "RandomStreams",
    "Resource",
    "STREAM_NAMES",
    "SimulationError",
    "Simulator",
    "Store",
    "Summary",
    "TRACE_DETAIL",
    "TRACE_SUMMARY",
    "Tally",
    "TimeWeighted",
    "Timeout",
    "Trace",
    "TraceRecord",
    "URGENT",
    "ascii_series",
    "ascii_sparkline",
    "crc32_key",
    "stream_collisions",
]
