"""Disk model.

Each SWEB node owns a dedicated drive (1 GB on the Meiko CS-2, 525 MB on
the SparcStation LX NOW).  The drive is a fair-share bandwidth station:
concurrent reads split the channel, which is exactly the "disk channel
load" the paper's cost model measures (`load_1` in the t_data term).
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Event, FairShareServer, Simulator

__all__ = ["Disk"]


class Disk:
    """A single disk drive with a shared-bandwidth channel.

    Parameters
    ----------
    sim:
        The owning simulator.
    bandwidth:
        Sequential read bandwidth in bytes/second (the paper's ``b_disk``;
        5 MB/s in the §3.3 worked example).
    capacity:
        Drive capacity in bytes (only used for placement sanity checks).
    name:
        Label for traces.
    """

    def __init__(self, sim: Simulator, bandwidth: float,
                 capacity: float = 1e9, name: str = "disk",
                 seek_latency: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"disk bandwidth must be > 0, got {bandwidth}")
        if seek_latency < 0:
            raise ValueError(f"negative seek_latency: {seek_latency}")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.capacity = float(capacity)
        #: fixed per-read positioning cost (seek + rotational latency);
        #: 0 by default — the paper's b_disk already folds it into the
        #: effective bandwidth, but the knob exists for finer models.
        self.seek_latency = float(seek_latency)
        self.used_bytes = 0.0
        self.server = FairShareServer(sim, rate=bandwidth, name=f"{name}.channel")
        self.bytes_read = 0.0
        self.reads = 0
        #: > 1 while the drive is degraded (fault injection); the nominal
        #: ``bandwidth`` is what loadd keeps advertising — a sick disk
        #: does not know it is sick, so brokers misprice it
        self.degrade_factor = 1.0

    # -- I/O -------------------------------------------------------------
    def read(self, nbytes: float, tag: Any = None) -> Event:
        """Start reading ``nbytes``; the returned event fires on completion."""
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        self.bytes_read += nbytes
        self.reads += 1
        if self.seek_latency <= 0:
            return self.server.submit(nbytes, tag=tag).done
        done = Event(self.sim)

        # Process-free callback chain (docs/PERFORMANCE.md): scheduling
        # order matches the old generator pump exactly.
        def queue_job(_ev: Event) -> None:
            job = self.server.submit(nbytes, tag=tag)
            job.done.callbacks.append(lambda ev: done.succeed(nbytes))

        def start(_ev: Event) -> None:
            self.sim.timeout(self.seek_latency).callbacks.append(queue_job)

        self.sim.defer(start)
        return done

    def allocate(self, nbytes: float) -> None:
        """Account for a stored file (placement-time bookkeeping)."""
        if self.used_bytes + nbytes > self.capacity:
            raise ValueError(
                f"{self.name}: allocating {nbytes:.0f} B exceeds capacity "
                f"({self.used_bytes:.0f}/{self.capacity:.0f} B used)")
        self.used_bytes += nbytes

    # -- fault injection -----------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Slow the channel to ``bandwidth / factor`` (a failing drive,
        a RAID rebuild, bad-sector retries).  In-flight reads slow down
        immediately; the advertised ``bandwidth`` is unchanged."""
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {factor}")
        self.degrade_factor = float(factor)
        self.server.set_rate(self.bandwidth / self.degrade_factor)

    def restore(self) -> None:
        """End a degradation: the channel serves at nominal rate again."""
        self.degrade_factor = 1.0
        self.server.set_rate(self.bandwidth)

    @property
    def current_bandwidth(self) -> float:
        """The channel's actual total rate (nominal unless degraded)."""
        return self.server.rate

    # -- load metrics (read by loadd) --------------------------------------
    @property
    def channel_load(self) -> int:
        """Number of in-flight reads (the paper's disk-channel load)."""
        return self.server.njobs

    def effective_bandwidth(self) -> float:
        """Per-stream bandwidth given the current channel load."""
        return self.bandwidth / max(1, self.server.njobs)

    def utilization(self) -> float:
        """Busy time so far (seconds)."""
        return self.server.busy_integral()

    def __repr__(self) -> str:
        return (f"<Disk {self.name!r} bw={self.bandwidth / 1e6:.1f}MB/s "
                f"inflight={self.channel_load}>")
