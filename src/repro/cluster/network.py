"""Interconnect and wide-area network models.

Three different fabrics appear in the paper:

* the Meiko CS-2's **fat-tree** (40 MB/s per port, essentially
  non-blocking internally) — modelled as per-node port stations, so a
  transfer contends only at its two endpoints;
* the NOW's **shared 10 Mb/s Ethernet** — a single bus station that every
  remote transfer in the whole cluster shares (this is what makes file
  locality pay off in Table 4);
* the **Internet** between clients and the server site — modelled as a
  per-client path (latency + bandwidth cap) drawing from the serving
  node's NIC, which the paper identifies as "often a severe bottleneck".
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..sim import AllOf, Event, FairShareServer, Simulator

__all__ = [
    "Link",
    "ClusterNetwork",
    "FatTreeNetwork",
    "SharedBusNetwork",
    "WANPath",
    "Internet",
]


class Link:
    """A unidirectional shared pipe: fixed latency + fair-share bandwidth."""

    def __init__(self, sim: Simulator, bandwidth: float, latency: float = 0.0,
                 name: str = "link") -> None:
        if bandwidth <= 0:
            raise ValueError(f"link bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.server = FairShareServer(sim, rate=bandwidth, name=f"{name}.pipe")
        self.bytes_sent = 0.0

    def transfer(self, nbytes: float, tag: Any = None,
                 cap: Optional[float] = None) -> Event:
        """Move ``nbytes`` through the link; fires when the last byte lands."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        self.bytes_sent += nbytes
        done = Event(self.sim)

        # Process-free callback chain (docs/PERFORMANCE.md): scheduling
        # order matches the old generator pump exactly.
        def queue_job(_ev: Event) -> None:
            job = self.server.submit(nbytes, cap=cap, tag=tag)
            job.done.callbacks.append(lambda ev: done.succeed(nbytes))

        def start(_ev: Event) -> None:
            if self.latency > 0:
                self.sim.timeout(self.latency).callbacks.append(queue_job)
            else:
                queue_job(_ev)

        self.sim.defer(start)
        return done

    @property
    def load(self) -> int:
        """In-flight transfers (the paper's ``load_2``)."""
        return self.server.njobs

    def __repr__(self) -> str:
        return f"<Link {self.name!r} bw={self.bandwidth / 1e6:.2f}MB/s load={self.load}>"


class ClusterNetwork:
    """Interface for the intra-cluster interconnect.

    Partition support (the fault-injection subsystem, docs/FAULTS.md)
    lives here so every fabric inherits it: :meth:`partition` splits the
    nodes into disjoint groups, after which cross-group transfers are
    *lost* — their completion events simply never fire, exactly like
    packets into a dead switch.  loadd broadcasts stop crossing the cut
    (peers stale each other out) and cross-partition NFS reads hang
    until the client's timeout.  :meth:`heal` restores full reachability
    for transfers started afterwards; in-flight lost transfers stay lost.
    """

    #: advertised peak bandwidth of a single path, bytes/s (``b_net``)
    bandwidth: float
    #: node id -> partition group id; None = fully connected
    _node_group: Optional[dict[int, int]] = None
    #: transfers dropped at a partition cut (diagnostic counter)
    transfers_lost: int = 0

    def transfer(self, src: int, dst: int, nbytes: float, tag: Any = None) -> Event:
        """Move ``nbytes`` from node ``src`` to node ``dst``."""
        raise NotImplementedError

    def multicast(self, src: int, dsts: Iterable[int], nbytes: float,
                  tag: Any = None) -> list[Event]:
        """Send one ``nbytes`` payload from ``src`` to every node in ``dsts``.

        Returns one completion event per destination, in ``dsts`` order —
        semantically identical to calling :meth:`transfer` in a loop, but
        fabrics override it with a batched implementation that drives the
        whole fan-out from a single simulator process (one spawn and one
        latency timer instead of one per destination).  loadd's periodic
        broadcasts — O(nodes²) transfers per period — are the main user.
        """
        return [self.transfer(src, dst, nbytes, tag=tag) for dst in dsts]

    def node_load(self, node: int) -> int:
        """In-flight transfers that involve ``node`` (loadd's net metric)."""
        raise NotImplementedError

    def effective_bandwidth(self, node: int) -> float:
        """Per-stream bandwidth a new transfer at ``node`` would see."""
        raise NotImplementedError

    # -- partitions (fault injection) ---------------------------------------
    def partition(self, groups) -> None:
        """Split the fabric into disjoint ``groups`` of node ids.

        Nodes not named in any group share an implicit extra group (they
        can still reach each other, but none of the named groups).
        """
        mapping: dict[int, int] = {}
        for gid, members in enumerate(groups):
            for node in members:
                node = int(node)
                if node in mapping:
                    raise ValueError(
                        f"node {node} appears in more than one group")
                mapping[node] = gid
        self._node_group = mapping

    def heal(self) -> None:
        """Remove any partition (future transfers flow everywhere again)."""
        self._node_group = None

    @property
    def partitioned(self) -> bool:
        """True while a partition is in force."""
        return self._node_group is not None

    def reachable(self, src: int, dst: int) -> bool:
        """Whether a transfer from ``src`` to ``dst`` can cross the fabric."""
        if self._node_group is None:
            return True
        return self._node_group.get(src) == self._node_group.get(dst)

    def _lost(self, src: int, dst: int, sim: "Simulator") -> Event:
        """A transfer into the cut: count it, return a never-firing event."""
        self.transfers_lost += 1
        return Event(sim)


class FatTreeNetwork(ClusterNetwork):
    """Meiko CS-2 style fabric: contention only at the endpoints.

    Each node owns one port station; a transfer holds a job on the source
    and destination ports concurrently and completes when both finish
    (the slower endpoint governs, like a cut-through fabric).
    """

    def __init__(self, sim: Simulator, nodes: int, bandwidth: float,
                 latency: float = 10e-6, name: str = "fat-tree") -> None:
        if nodes < 1:
            raise ValueError("need at least one node")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.sim = sim
        self.name = name
        self.nodes = nodes
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.ports = [FairShareServer(sim, rate=bandwidth, name=f"{name}.port{i}")
                      for i in range(nodes)]
        self.bytes_sent = 0.0

    def transfer(self, src: int, dst: int, nbytes: float, tag: Any = None) -> Event:
        if not (0 <= src < self.nodes and 0 <= dst < self.nodes):
            raise ValueError(f"bad endpoints {src}->{dst} (nodes={self.nodes})")
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst:
            # Loopback never touches the fabric.
            done = Event(self.sim)
            done.succeed(nbytes)
            return done
        if not self.reachable(src, dst):
            return self._lost(src, dst, self.sim)
        done = Event(self.sim)
        self.bytes_sent += nbytes

        # Process-free callback chain (docs/PERFORMANCE.md): scheduling
        # order matches the old generator pump exactly.
        def open_stream(_ev: Event) -> None:
            out = self.ports[src].submit(nbytes, tag=tag)
            inn = self.ports[dst].submit(nbytes, tag=tag)
            both = AllOf(self.sim, [out.done, inn.done])
            both.callbacks.append(lambda ev: done.succeed(nbytes))

        def start(_ev: Event) -> None:
            if self.latency > 0:
                self.sim.timeout(self.latency).callbacks.append(open_stream)
            else:
                open_stream(_ev)

        self.sim.defer(start)
        return done

    def multicast(self, src: int, dsts: Iterable[int], nbytes: float,
                  tag: Any = None) -> list[Event]:
        """Batched fan-out: one process pays the latency once, then opens
        every port-pair stream in ``dsts`` order — the same submissions in
        the same order as per-destination :meth:`transfer` calls, without
        a process/timer per destination."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        results: list[Event] = []
        remote: list[tuple[int, Event]] = []
        for dst in dsts:
            if not (0 <= src < self.nodes and 0 <= dst < self.nodes):
                raise ValueError(
                    f"bad endpoints {src}->{dst} (nodes={self.nodes})")
            if src == dst:
                done = Event(self.sim)
                done.succeed(nbytes)
            elif not self.reachable(src, dst):
                done = self._lost(src, dst, self.sim)
            else:
                self.bytes_sent += nbytes
                done = Event(self.sim)
                remote.append((dst, done))
            results.append(done)
        if remote:
            def pump():
                if self.latency > 0:
                    yield self.sim.timeout(self.latency)
                out_port = self.ports[src]
                for dst, done in remote:
                    out = out_port.submit(nbytes, tag=tag)
                    inn = self.ports[dst].submit(nbytes, tag=tag)
                    both = AllOf(self.sim, [out.done, inn.done])
                    both.callbacks.append(
                        lambda ev, d=done: d.succeed(nbytes))

            self.sim.spawn(pump(), name=f"{self.name}.mcast")
        return results

    def node_load(self, node: int) -> int:
        return self.ports[node].njobs

    def effective_bandwidth(self, node: int) -> float:
        return self.bandwidth / max(1, self.ports[node].njobs)


class SharedBusNetwork(ClusterNetwork):
    """Ethernet-style bus: every remote transfer shares one medium."""

    def __init__(self, sim: Simulator, bandwidth: float,
                 latency: float = 0.5e-3, name: str = "ethernet",
                 background_load: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        if not 0.0 <= background_load < 1.0:
            raise ValueError(f"background_load must be in [0,1), got {background_load}")
        self.sim = sim
        self.name = name
        self.latency = float(latency)
        # The paper notes the UCSB Ethernet's effective bandwidth was low
        # because it was shared with other campus machines: model that as a
        # fixed fraction of the medium permanently consumed.
        self.bandwidth = float(bandwidth) * (1.0 - background_load)
        self.bus = FairShareServer(sim, rate=self.bandwidth, name=f"{name}.bus")
        self.bytes_sent = 0.0

    def transfer(self, src: int, dst: int, nbytes: float, tag: Any = None) -> Event:
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst:
            done = Event(self.sim)
            done.succeed(nbytes)
            return done
        if not self.reachable(src, dst):
            return self._lost(src, dst, self.sim)
        done = Event(self.sim)
        self.bytes_sent += nbytes

        # Process-free callback chain (docs/PERFORMANCE.md): scheduling
        # order matches the old generator pump exactly.
        def queue_job(_ev: Event) -> None:
            job = self.bus.submit(nbytes, tag=tag)
            job.done.callbacks.append(lambda ev: done.succeed(nbytes))

        def start(_ev: Event) -> None:
            if self.latency > 0:
                self.sim.timeout(self.latency).callbacks.append(queue_job)
            else:
                queue_job(_ev)

        self.sim.defer(start)
        return done

    def multicast(self, src: int, dsts: Iterable[int], nbytes: float,
                  tag: Any = None) -> list[Event]:
        """Batched fan-out over the shared medium: one process pays the
        latency once, then queues one bus job per destination in ``dsts``
        order — the same contention as per-destination :meth:`transfer`
        calls, without a process/timer per destination."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        results: list[Event] = []
        remote: list[Event] = []
        for dst in dsts:
            if src == dst:
                done = Event(self.sim)
                done.succeed(nbytes)
            elif not self.reachable(src, dst):
                done = self._lost(src, dst, self.sim)
            else:
                self.bytes_sent += nbytes
                done = Event(self.sim)
                remote.append(done)
            results.append(done)
        if remote:
            def pump():
                if self.latency > 0:
                    yield self.sim.timeout(self.latency)
                for done in remote:
                    job = self.bus.submit(nbytes, tag=tag)
                    job.done.callbacks.append(
                        lambda ev, d=done: d.succeed(nbytes))

            self.sim.spawn(pump(), name=f"{self.name}.mcast")
        return results

    def node_load(self, node: int) -> int:
        # A bus is global: every node observes the same contention.
        return self.bus.njobs

    def effective_bandwidth(self, node: int) -> float:
        return self.bandwidth / max(1, self.bus.njobs)


class WANPath:
    """The Internet path between one client and the server site."""

    def __init__(self, latency: float, bandwidth: float, name: str = "wan") -> None:
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.name = name

    def __repr__(self) -> str:
        return (f"<WANPath {self.name!r} rtt={2 * self.latency * 1e3:.1f}ms "
                f"bw={self.bandwidth / 1e6:.2f}MB/s>")


class Internet:
    """Delivers server responses to clients over their WAN paths.

    A response stream is a job on the serving node's NIC, rate-capped by
    the client's own path bandwidth, plus the one-way path latency.  Slow
    clients therefore do not starve fast ones (the cap frees NIC share),
    while many concurrent responses on one node do contend — the paper's
    "network overhead ... concentrated at a single node" effect.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.bytes_sent = 0.0

    def send(self, nic: FairShareServer, path: WANPath, nbytes: float,
             tag: Any = None) -> Event:
        if nbytes < 0:
            raise ValueError(f"negative send size: {nbytes}")
        self.bytes_sent += nbytes
        done = Event(self.sim)

        # Process-free callback chain (docs/PERFORMANCE.md): scheduling
        # order matches the old generator pump exactly.
        def queue_job(_ev: Event) -> None:
            job = nic.submit(nbytes, cap=path.bandwidth, tag=tag)
            job.done.callbacks.append(lambda ev: done.succeed(nbytes))

        def start(_ev: Event) -> None:
            if path.latency > 0:
                self.sim.timeout(path.latency).callbacks.append(queue_job)
            else:
                queue_job(_ev)

        self.sim.defer(start)
        return done
