"""Distributed file system with NFS cross-mounts.

Every file lives on exactly one node's dedicated disk; all other nodes
reach it through the interconnect (the paper's NFS cross-mounts).  Remote
access pays a protocol penalty on top of the raw transfer: ~10 % on the
Meiko's fat-tree, 50–70 % on the NOW's Ethernet (§3.2, measured by the
authors).  Reads go through the *home* node's page cache, so a popular
file served remotely still benefits from the home node's RAM.

When the replication daemon (repro.cache) has planted copies in other
nodes' page caches, reads additionally prefer any cache-resident copy
over the home disk: a peer's RAM plus one fabric hop is far cheaper than
a 5 MB/s disk (the xFS/GMS remote-memory observation).  Plain runs never
create such copies, so their event schedules are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..obs import Span, Tracer
from ..sim import AllOf, Event, Simulator
from .network import ClusterNetwork
from .node import Node

__all__ = ["FileMeta", "ReadOutcome", "DistributedFileSystem"]


@dataclass(frozen=True)
class FileMeta:
    """Placement record for one file.

    ``stripes`` is empty for whole-file placement; a striped file (§1:
    "retrieving files in parallel from inexpensive disks") lists every
    node holding a chunk, with ``home`` being the first of them (the
    node the locality heuristics treat as the owner).

    ``wan`` marks a file whose authoritative copy lives in *another
    cluster* behind a WAN link (the geo tier's origin): ``home`` is then
    the local gateway node and a cache miss pays the link cost.  Always
    False for single-cluster file systems.
    """

    path: str
    size: float
    home: int
    stripes: tuple[int, ...] = ()
    wan: bool = False

    @property
    def is_striped(self) -> bool:
        return len(self.stripes) > 1


@dataclass(frozen=True)
class ReadOutcome:
    """What happened during a read (for traces and tests)."""

    path: str
    nbytes: float
    source: str      # "cache" or "disk"
    remote: bool
    home: int


class DistributedFileSystem:
    """Path → (home node, size) mapping plus the read machinery."""

    def __init__(self, sim: Simulator, nodes: list[Node],
                 network: ClusterNetwork, remote_penalty: float = 0.10) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        if remote_penalty < 0:
            raise ValueError(f"negative remote_penalty: {remote_penalty}")
        self.sim = sim
        self.nodes = nodes
        self.network = network
        self.remote_penalty = float(remote_penalty)
        self._files: dict[str, FileMeta] = {}
        self.remote_reads = 0
        self.local_reads = 0
        #: local reads satisfied by a replicated (non-home) cache copy
        self.replica_reads = 0
        #: home-cache misses served from a peer's cached replica instead
        #: of the home disk (cooperative-cache fast path)
        self.peer_cache_reads = 0
        #: per-request span tracer (wired post-build by SWEBCluster;
        #: ``None`` = tracing off).  Reads pass their parent span via the
        #: ``ctx`` argument so cache/disk/NFS legs show up nested under
        #: the server's fulfillment span.
        self.tracer: Optional[Tracer] = None

    # -- tracing helpers ------------------------------------------------------
    def _read_span(self, ctx: Optional[Span], name: str,
                   node: Optional[int], **tags) -> Optional[Span]:
        """Open a data-transfer child span under ``ctx`` (None-safe)."""
        if self.tracer is None:
            return None
        return self.tracer.start(ctx, name, self.sim.now, "data_transfer",
                                 node=node, **tags)

    def _end_span(self, span: Optional[Span], **tags) -> None:
        """Close ``span`` at the current sim time (None-safe)."""
        if self.tracer is not None:
            self.tracer.finish(span, self.sim.now, **tags)

    # -- namespace -----------------------------------------------------------
    def add_file(self, path: str, size: float, home: int) -> FileMeta:
        """Place a file on ``home``'s disk."""
        if path in self._files:
            raise ValueError(f"duplicate path: {path!r}")
        if size < 0:
            raise ValueError(f"negative size for {path!r}: {size}")
        if not 0 <= home < len(self.nodes):
            raise ValueError(f"bad home node {home} for {path!r}")
        meta = FileMeta(path=path, size=float(size), home=home)
        self.nodes[home].disk.allocate(size)
        self._files[path] = meta
        return meta

    def add_files(self, entries: Iterable[tuple[str, float, int]]) -> None:
        for path, size, home in entries:
            self.add_file(path, size, home)

    def add_striped_file(self, path: str, size: float,
                         stripes: Iterable[int]) -> FileMeta:
        """Stripe a file across several nodes' disks in equal chunks.

        Reads then proceed from every stripe disk in parallel — the §1
        promise that "retrieving files in parallel from inexpensive
        disks can significantly improve the scalability of the server".
        """
        if path in self._files:
            raise ValueError(f"duplicate path: {path!r}")
        if size < 0:
            raise ValueError(f"negative size for {path!r}: {size}")
        stripes = tuple(stripes)
        if not stripes:
            raise ValueError(f"striped file {path!r} needs at least one node")
        if len(set(stripes)) != len(stripes):
            raise ValueError(f"duplicate stripe nodes for {path!r}: {stripes}")
        for node in stripes:
            if not 0 <= node < len(self.nodes):
                raise ValueError(f"bad stripe node {node} for {path!r}")
        chunk = size / len(stripes)
        for node in stripes:
            self.nodes[node].disk.allocate(chunk)
        meta = FileMeta(path=path, size=float(size), home=stripes[0],
                        stripes=stripes)
        self._files[path] = meta
        return meta

    def exists(self, path: str) -> bool:
        return path in self._files

    def locate(self, path: str) -> FileMeta:
        """Placement of ``path``; raises ``FileNotFoundError`` if absent."""
        meta = self._files.get(path)
        if meta is None:
            raise FileNotFoundError(path)
        return meta

    def paths(self) -> list[str]:
        return list(self._files)

    def __len__(self) -> int:
        return len(self._files)

    # -- I/O ---------------------------------------------------------------------
    def read(self, path: str, at_node: int,
             ctx: Optional[Span] = None) -> Event:
        """Read ``path`` as seen from ``at_node``.

        Returns an event whose value is a :class:`ReadOutcome`.  Local
        reads hit the node's page cache or disk; remote reads are served
        by the home node (its cache or disk) and then shipped over the
        interconnect with the NFS penalty applied to the bytes moved.
        ``ctx`` is the caller's span: when tracing is on, each leg of the
        read (cache hit, disk, replica, peer cache, NFS wire) becomes a
        child span under it.
        """
        meta = self.locate(path)
        if meta.is_striped:
            return self._read_striped(meta, at_node, ctx)
        home_node = self.nodes[meta.home]
        reader = self.nodes[at_node]
        done = Event(self.sim)
        remote = meta.home != at_node
        # A replication-daemon copy in the reading node's own cache turns
        # a would-be NFS read into a local memory-speed hit (the whole
        # point of proactive replication).  Plain runs never take this
        # branch: demand fills only populate the *home* cache.
        if remote and path in reader.cache:
            self.local_reads += 1
            self.replica_reads += 1
            reader.cache.lookup(path)

            def pump_replica():
                sp = self._read_span(ctx, "replica_read", at_node, path=path)
                yield reader.read_from_cache(meta.size, tag=path)
                self._end_span(sp, bytes=meta.size)
                done.succeed(ReadOutcome(path=path, nbytes=meta.size,
                                         source="cache", remote=False,
                                         home=meta.home))

            self.sim.spawn(pump_replica(), name=f"fs.read:{path}")
            return done
        if remote:
            self.remote_reads += 1
        else:
            self.local_reads += 1

        def pump():
            # Stage 1: produce the bytes at the home node (cache or disk).
            if home_node.cache.lookup(path):
                source = "cache"
                sp = self._read_span(ctx, "cache_read", meta.home, path=path)
                yield home_node.read_from_cache(meta.size, tag=path)
                self._end_span(sp, bytes=meta.size)
            else:
                holder = self._cached_peer(meta, at_node)
                if holder is not None:
                    # Cooperative-cache fast path: a peer's cached replica
                    # plus one fabric hop beats the home disk.  Only the
                    # replication daemon creates non-home copies, so plain
                    # runs never reach this branch.
                    self.peer_cache_reads += 1
                    holder.cache.lookup(path)
                    sp = self._read_span(ctx, "peer_cache_read", holder.id,
                                         path=path, dst=at_node)
                    yield holder.read_from_cache(meta.size, tag=path)
                    wire = meta.size * (1.0 + self.remote_penalty)
                    yield self.network.transfer(holder.id, at_node, wire,
                                                tag=path)
                    self._end_span(sp, bytes=meta.size)
                    done.succeed(ReadOutcome(path=path, nbytes=meta.size,
                                             source="cache", remote=True,
                                             home=meta.home))
                    return
                source = "disk"
                sp = self._read_span(ctx, "disk_read", meta.home, path=path)
                yield home_node.disk.read(meta.size, tag=path)
                self._end_span(sp, bytes=meta.size)
                home_node.cache.insert(path, meta.size)
            # Stage 2: ship them over the interconnect if non-local.
            if remote:
                wire_bytes = meta.size * (1.0 + self.remote_penalty)
                sp = self._read_span(ctx, "nfs_transfer", meta.home,
                                     path=path, dst=at_node)
                yield self.network.transfer(meta.home, at_node, wire_bytes, tag=path)
                self._end_span(sp, bytes=wire_bytes)
            done.succeed(ReadOutcome(path=path, nbytes=meta.size, source=source,
                                     remote=remote, home=meta.home))

        self.sim.spawn(pump(), name=f"fs.read:{path}")
        return done

    def _cached_peer(self, meta: FileMeta, at_node: int) -> Optional[Node]:
        """Least-loaded alive node, other than home and reader, whose page
        cache holds the file (ties break on node id).  ``None`` when no
        replica exists — the overwhelmingly common case."""
        best: Optional[Node] = None
        best_key: Optional[tuple[float, int]] = None
        for node in self.nodes:
            if node.id == meta.home or node.id == at_node or not node.alive:
                continue
            if meta.path not in node.cache:
                continue
            key = (float(self.network.node_load(node.id)), node.id)
            if best_key is None or key < best_key:
                best, best_key = node, key
        return best

    def _read_striped(self, meta: FileMeta, at_node: int,
                      ctx: Optional[Span] = None) -> Event:
        """Parallel chunk reads from every stripe disk.

        The assembled file is cached at the *reading* node (there is no
        single home copy to cache); chunks from non-local disks cross the
        interconnect with the NFS penalty.
        """
        reader = self.nodes[at_node]
        done = Event(self.sim)
        if at_node in meta.stripes:
            self.local_reads += 1
        else:
            self.remote_reads += 1
        chunk = meta.size / len(meta.stripes)

        def pump():
            if reader.cache.lookup(meta.path):
                sp = self._read_span(ctx, "cache_read", at_node,
                                     path=meta.path)
                yield reader.read_from_cache(meta.size, tag=meta.path)
                self._end_span(sp, bytes=meta.size)
                done.succeed(ReadOutcome(path=meta.path, nbytes=meta.size,
                                         source="cache",
                                         remote=at_node not in meta.stripes,
                                         home=meta.home))
                return
            # One span for the whole parallel fan-out: the stripe legs
            # overlap by design, so modelling them as sibling child spans
            # would violate the non-overlap invariant.
            sp = self._read_span(ctx, "striped_read", at_node,
                                 path=meta.path, stripes=len(meta.stripes))
            waits = []
            for node in meta.stripes:
                waits.append(self.nodes[node].disk.read(chunk, tag=meta.path))
                if node != at_node:
                    wire = chunk * (1.0 + self.remote_penalty)
                    waits.append(self.network.transfer(node, at_node, wire,
                                                       tag=meta.path))
            yield AllOf(self.sim, waits)
            self._end_span(sp, bytes=meta.size)
            reader.cache.insert(meta.path, meta.size)
            done.succeed(ReadOutcome(path=meta.path, nbytes=meta.size,
                                     source="disk",
                                     remote=at_node not in meta.stripes,
                                     home=meta.home))

        self.sim.spawn(pump(), name=f"fs.sread:{meta.path}")
        return done

    def __repr__(self) -> str:
        return (f"<DistributedFileSystem files={len(self._files)} "
                f"local={self.local_reads} remote={self.remote_reads}>")
