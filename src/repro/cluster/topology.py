"""Cluster topologies: the paper's two testbeds plus custom builders.

All hardware constants come from the paper's text:

* **Meiko CS-2** — six nodes, each a 40 MHz SuperSparc (modelled as
  40e6 ops/s) with 32 MB RAM and a dedicated 1 GB drive at ``b1`` = 5 MB/s
  (the §3.3 worked example); a modified fat-tree at 40 MB/s peak, but
  sockets over TCP/IP reach only 5–15 % of that (we use 10 % → 4 MB/s
  socket paths, while kernel-level NFS uses the fast fabric); remote NFS
  penalty ≈ 10 %.
* **Sun NOW** — four SparcStation LXs (50 MHz microSPARC ≈ 25e6 ops/s)
  with 16 MB RAM, a local 525 MB drive, on a shared 10 Mb/s Ethernet whose
  effective bandwidth is reduced because the segment is shared with other
  UCSB machines; remote NFS penalty 50–70 % (we use 60 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..sched import SpeedFactors
from ..sim import Simulator
from .disk import Disk
from .filesystem import DistributedFileSystem
from .network import (
    ClusterNetwork,
    FatTreeNetwork,
    Internet,
    SharedBusNetwork,
)
from .node import Node

__all__ = ["NodeSpec", "ClusterSpec", "BuiltCluster", "meiko_cs2", "sun_now",
           "custom_cluster", "heterogeneous_now", "heterogeneous_meiko"]

MB = 1e6


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one node."""

    cpu_speed: float = 40e6          # operations / second
    ram_bytes: float = 32 * MB       # page-cache capacity
    disk_bandwidth: float = 5 * MB   # b_disk (b1 in §3.3)
    disk_capacity: float = 1000 * MB
    nic_bandwidth: float = 4 * MB    # socket bandwidth toward the Internet
    mem_bandwidth: float = 40 * MB   # page-cache copy bandwidth


@dataclass(frozen=True)
class ClusterSpec:
    """Full description of a testbed."""

    name: str
    nodes: tuple[NodeSpec, ...]
    network_kind: str = "fat-tree"        # "fat-tree" | "bus"
    network_bandwidth: float = 40 * MB    # fabric port / bus raw bandwidth
    network_latency: float = 10e-6
    network_background_load: float = 0.0  # fraction of a bus consumed by others
    nfs_penalty: float = 0.10             # extra bytes on remote reads
    shared_nic_is_bus: bool = False       # NOW: client traffic rides the bus too

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def with_nodes(self, n: int) -> "ClusterSpec":
        """Same hardware, different node count (for Table 2's sweeps)."""
        if n < 1:
            raise ValueError(f"need at least 1 node, got {n}")
        base = self.nodes[0]
        return replace(self, nodes=tuple(base for _ in range(n)))

    def with_speed_factors(self, factors: SpeedFactors) -> "ClusterSpec":
        """Scale per-node hardware by dimensionless speed factors.

        ``factors.cpu`` multiplies CPU ops/s, ``factors.disk`` multiplies
        disk bandwidth, and ``factors.mem`` multiplies the page-cache copy
        bandwidth — the same heterogeneity model the fluid scenario's
        ``cpu_factors``/``disk_factors``/``mem_factors`` apply to analytic
        service times (docs/SCHEDULING.md).
        """
        if factors.num_nodes != self.num_nodes:
            raise ValueError(
                f"{self.name!r} has {self.num_nodes} nodes but factors "
                f"describe {factors.num_nodes}")
        nodes = tuple(
            replace(ns, cpu_speed=ns.cpu_speed * fc,
                    disk_bandwidth=ns.disk_bandwidth * fd,
                    mem_bandwidth=ns.mem_bandwidth * fm)
            for ns, fc, fd, fm in zip(self.nodes, factors.cpu, factors.disk,
                                      factors.mem))
        return replace(self, nodes=nodes)

    def build(self, sim: Simulator) -> "BuiltCluster":
        """Instantiate the testbed inside ``sim``."""
        n = len(self.nodes)
        if self.network_kind == "fat-tree":
            network: ClusterNetwork = FatTreeNetwork(
                sim, n, bandwidth=self.network_bandwidth,
                latency=self.network_latency, name=f"{self.name}.net")
        elif self.network_kind == "bus":
            network = SharedBusNetwork(
                sim, bandwidth=self.network_bandwidth,
                latency=self.network_latency,
                background_load=self.network_background_load,
                name=f"{self.name}.net")
        else:
            raise ValueError(f"unknown network kind {self.network_kind!r}")

        shared_nic = None
        if self.shared_nic_is_bus:
            if not isinstance(network, SharedBusNetwork):
                raise ValueError("shared_nic_is_bus requires a bus network")
            shared_nic = network.bus

        nodes = []
        for i, ns in enumerate(self.nodes):
            disk = Disk(sim, bandwidth=ns.disk_bandwidth,
                        capacity=ns.disk_capacity, name=f"{self.name}.disk{i}")
            nodes.append(Node(
                sim, i, cpu_speed=ns.cpu_speed, ram_bytes=ns.ram_bytes,
                disk=disk, mem_bandwidth=ns.mem_bandwidth,
                nic_bandwidth=ns.nic_bandwidth,
                name=f"{self.name}.node{i}", nic_server=shared_nic))
        fs = DistributedFileSystem(sim, nodes, network,
                                   remote_penalty=self.nfs_penalty)
        return BuiltCluster(sim=sim, spec=self, nodes=nodes, network=network,
                            fs=fs, internet=Internet(sim))


@dataclass
class BuiltCluster:
    """A live testbed: simulator plus all hardware objects."""

    sim: Simulator
    spec: ClusterSpec
    nodes: list[Node]
    network: ClusterNetwork
    fs: DistributedFileSystem
    internet: Internet

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def alive_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]


# --------------------------------------------------------------------------
# Presets
# --------------------------------------------------------------------------
def meiko_cs2(n: int = 6) -> ClusterSpec:
    """The primary testbed: ``n`` Meiko CS-2 nodes (paper uses six)."""
    node = NodeSpec(cpu_speed=40e6, ram_bytes=32 * MB, disk_bandwidth=5 * MB,
                    disk_capacity=1000 * MB, nic_bandwidth=4 * MB,
                    mem_bandwidth=40 * MB)
    return ClusterSpec(
        name="meiko",
        nodes=tuple(node for _ in range(n)),
        network_kind="fat-tree",
        network_bandwidth=40 * MB,   # Elan fat-tree peak; NFS rides this
        network_latency=10e-6,
        nfs_penalty=0.10,
    )


def sun_now(n: int = 4) -> ClusterSpec:
    """The secondary testbed: ``n`` SparcStation LXs on shared Ethernet."""
    node = NodeSpec(cpu_speed=25e6, ram_bytes=16 * MB, disk_bandwidth=3 * MB,
                    disk_capacity=525 * MB, nic_bandwidth=1.25 * MB,
                    mem_bandwidth=30 * MB)
    return ClusterSpec(
        name="now",
        nodes=tuple(node for _ in range(n)),
        network_kind="bus",
        network_bandwidth=1.25 * MB,        # 10 Mb/s Ethernet
        network_latency=0.5e-3,
        network_background_load=0.30,       # segment shared with campus
        nfs_penalty=0.60,                   # paper: +50–70 % on Ethernet
        shared_nic_is_bus=True,
    )


def custom_cluster(name: str, node_specs: list[NodeSpec],
                   network_kind: str = "fat-tree",
                   network_bandwidth: float = 40 * MB,
                   nfs_penalty: float = 0.10,
                   **kwargs) -> ClusterSpec:
    """Arbitrary (possibly heterogeneous) testbed."""
    return ClusterSpec(name=name, nodes=tuple(node_specs),
                       network_kind=network_kind,
                       network_bandwidth=network_bandwidth,
                       nfs_penalty=nfs_penalty, **kwargs)


def heterogeneous_now(speeds: Optional[list[float]] = None) -> ClusterSpec:
    """A NOW with unequal CPUs — the environment §1 motivates SWEB for."""
    speeds = speeds or [40e6, 25e6, 25e6, 10e6]
    base = sun_now(len(speeds))
    nodes = tuple(replace(ns, cpu_speed=sp)
                  for ns, sp in zip(base.nodes, speeds))
    return replace(base, name="hetnow", nodes=nodes)


def heterogeneous_meiko(n: int = 6,
                        factors: Optional[SpeedFactors] = None) -> ClusterSpec:
    """The tournament's heterogeneous testbed: a mixed-generation Meiko.

    The homogeneous :func:`meiko_cs2` hardware scaled by
    :data:`repro.sched.MIXED_GENERATION` speed factors (aggregate CPU
    equals the homogeneous cluster's, so the comparison is capacity-fair).
    """
    from ..sched import MIXED_GENERATION
    factors = factors or MIXED_GENERATION.take(n)
    spec = meiko_cs2(n).with_speed_factors(factors)
    return replace(spec, name="hetmeiko")
