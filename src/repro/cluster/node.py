"""A processing node of the multicomputer.

One node = one CPU (processor-sharing over "operations"), its RAM page
cache, a dedicated disk, a NIC for Internet traffic, and a port on the
cluster interconnect.  CPU work is charged per *category* so the §4.3
overhead analysis (parsing vs. scheduling vs. load monitoring) falls out
of the accounting for free.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Event, FairShareServer, Simulator
from .disk import Disk
from .memory import PageCache

__all__ = ["Node"]


class Node:
    """One processing unit of the SWEB multicomputer.

    Parameters
    ----------
    sim:
        The owning simulator.
    node_id:
        Index within the cluster (also its interconnect port number).
    cpu_speed:
        CPU service rate in operations/second (a 40 MHz SuperSparc is
        modelled as 40e6 ops/s).
    ram_bytes:
        Page-cache capacity (32 MB on the Meiko nodes, 16 MB on the LXs).
    disk:
        The node's dedicated drive.
    mem_bandwidth:
        Memory-copy bandwidth for cache hits, bytes/s.
    nic_bandwidth:
        Socket/TCP bandwidth available for Internet responses, bytes/s
        (the paper measured only 5–15 % of the Meiko's 40 MB/s peak
        through the sockets library).
    """

    def __init__(self, sim: Simulator, node_id: int, cpu_speed: float,
                 ram_bytes: float, disk: Disk, mem_bandwidth: float = 80e6,
                 nic_bandwidth: float = 6e6, name: Optional[str] = None,
                 nic_server: Optional[FairShareServer] = None) -> None:
        if cpu_speed <= 0:
            raise ValueError(f"cpu_speed must be > 0, got {cpu_speed}")
        if ram_bytes < 0:
            raise ValueError(f"negative ram_bytes: {ram_bytes}")
        self.sim = sim
        self.id = int(node_id)
        self.name = name or f"node{node_id}"
        self.cpu_speed = float(cpu_speed)
        self.cpu = FairShareServer(sim, rate=cpu_speed, name=f"{self.name}.cpu")
        self.disk = disk
        self.cache = PageCache(ram_bytes, name=f"{self.name}.cache")
        self.mem = FairShareServer(sim, rate=mem_bandwidth, name=f"{self.name}.mem")
        # On a shared-Ethernet NOW the "NIC" is the bus itself: all nodes'
        # client traffic and NFS traffic compete on one medium, so the
        # topology may inject a shared server here.
        self.nic = nic_server or FairShareServer(
            sim, rate=nic_bandwidth, name=f"{self.name}.nic")
        self.alive = True
        #: True after crash(): unlike a graceful leave(), a crash also
        #: resets in-flight connections (see HTTPServer.reset_connections)
        self.crashed = False
        #: operations charged per category (parsing, scheduling, loadd, ...)
        self.cpu_ops_by_category: dict[str, float] = {}

    # -- CPU ----------------------------------------------------------------
    def compute(self, ops: float, category: str = "other", tag: Any = None) -> Event:
        """Charge ``ops`` operations to the CPU; fires when serviced."""
        if ops < 0:
            raise ValueError(f"negative ops: {ops}")
        self.cpu_ops_by_category[category] = (
            self.cpu_ops_by_category.get(category, 0.0) + ops)
        return self.cpu.submit(ops, tag=tag or category).done

    def cpu_load(self) -> float:
        """Instantaneous run-queue length (jobs in service)."""
        return float(self.cpu.njobs)

    def cpu_seconds_by_category(self) -> dict[str, float]:
        """CPU time (s) consumed per category, at this node's speed."""
        return {cat: ops / self.cpu_speed
                for cat, ops in self.cpu_ops_by_category.items()}

    # -- memory -----------------------------------------------------------
    def read_from_cache(self, nbytes: float, tag: Any = None) -> Event:
        """Serve a page-cache hit at memory-copy bandwidth."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return self.mem.submit(nbytes, tag=tag).done

    # -- membership -----------------------------------------------------------
    def leave(self) -> None:
        """Withdraw from the resource pool (in-flight work still drains)."""
        self.alive = False

    def join(self) -> None:
        """Rejoin the resource pool."""
        self.alive = True
        self.crashed = False

    def crash(self) -> None:
        """Die abruptly: refuse new connections AND abandon in-flight work.

        A graceful :meth:`leave` drains; a crash does not — the httpd
        layer resets live connections so clients see the failure quickly
        (modelled as an immediate 503/connection-reset, not a silent
        120 s timeout).
        """
        self.alive = False
        self.crashed = True

    def restart(self) -> None:
        """Come back after a crash (cold: the page cache survives only
        because the model keeps no dirty state; membership-wise this is
        identical to join())."""
        self.join()

    def __repr__(self) -> str:
        return (f"<Node {self.name!r} cpu={self.cpu_speed / 1e6:.0f}Mops "
                f"alive={self.alive} load={self.cpu.njobs}>")
