"""Multicomputer substrate: nodes, disks, memory, networks, file system.

This package models the hardware the paper ran on — the Meiko CS-2 and a
Sun NOW — at the fidelity the evaluation needs: fair-share CPUs and disk
channels, a fat-tree vs. a shared Ethernet, NFS cross-mounts with the
measured remote penalties, per-node page caches, and WAN paths to clients.
"""

from .disk import Disk
from .filesystem import DistributedFileSystem, FileMeta, ReadOutcome
from .memory import PageCache
from .network import (
    ClusterNetwork,
    FatTreeNetwork,
    Internet,
    Link,
    SharedBusNetwork,
    WANPath,
)
from .node import Node
from .topology import (
    BuiltCluster,
    ClusterSpec,
    NodeSpec,
    custom_cluster,
    heterogeneous_meiko,
    heterogeneous_now,
    meiko_cs2,
    sun_now,
)

__all__ = [
    "BuiltCluster",
    "ClusterNetwork",
    "ClusterSpec",
    "Disk",
    "DistributedFileSystem",
    "FatTreeNetwork",
    "FileMeta",
    "Internet",
    "Link",
    "Node",
    "NodeSpec",
    "PageCache",
    "ReadOutcome",
    "SharedBusNetwork",
    "WANPath",
    "custom_cluster",
    "heterogeneous_meiko",
    "heterogeneous_now",
    "meiko_cs2",
    "sun_now",
]
