"""Main-memory file cache.

§4.1 of the paper attributes SWEB's *superlinear* speedup on 1.5 MB files
to aggregate RAM: "the total size of memory in SWEB is much larger than on
a one-node server, and the multi-node server accommodates more requests
within main memory while one-node server spends more time in swapping".

We model each node's RAM as an LRU whole-file cache.  A hit serves the
file at memory-copy bandwidth; a miss goes to the disk channel and then
inserts the file (evicting least-recently-used files until it fits).
Files larger than the cache are never cached, which is the single-node
thrashing regime.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["PageCache"]


class PageCache:
    """LRU whole-file cache with byte-capacity accounting."""

    def __init__(self, capacity_bytes: float, name: str = "cache") -> None:
        if capacity_bytes < 0:
            raise ValueError(f"negative cache capacity: {capacity_bytes}")
        self.name = name
        self.capacity = float(capacity_bytes)
        self._entries: OrderedDict[str, float] = OrderedDict()
        self._used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries ------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity - self._used

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entries(self) -> list[tuple[str, float]]:
        """Resident ``(path, size)`` pairs in LRU order (oldest first).

        The cooperative-cache directory samples this to build its
        bytes·recency hot set; reading it has no side effects on LRU
        order or the hit/miss counters.
        """
        return list(self._entries.items())

    # -- operations -----------------------------------------------------------
    def lookup(self, path: str) -> bool:
        """Check for ``path``; updates LRU order and hit/miss counters."""
        if path in self._entries:
            self._entries.move_to_end(path)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, path: str, size: float) -> bool:
        """Cache ``path`` (evicting LRU entries); False if it can never fit."""
        if size < 0:
            raise ValueError(f"negative file size: {size}")
        if size > self.capacity:
            return False  # un-cacheable: the thrashing regime
        if path in self._entries:
            self._entries.move_to_end(path)
            return True
        while self._used + size > self.capacity and self._entries:
            _victim, vsize = self._entries.popitem(last=False)
            self._used -= vsize
            self.evictions += 1
        self._entries[path] = size
        self._used += size
        return True

    def invalidate(self, path: str) -> bool:
        """Drop ``path`` from the cache (e.g. file migrated); True if present."""
        size = self._entries.pop(path, None)
        if size is None:
            return False
        self._used -= size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0.0

    def __repr__(self) -> str:
        return (f"<PageCache {self.name!r} {self._used / 1e6:.1f}/"
                f"{self.capacity / 1e6:.1f} MB files={len(self._entries)} "
                f"hit_rate={self.hit_rate:.2f}>")
