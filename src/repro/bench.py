"""Performance benchmark harness behind ``sweb-repro bench``.

The ROADMAP's north star is a simulator that "runs as fast as the
hardware allows"; §3.3 of the paper bounds the max sustained request
rate, and we can only explore large clusters and high arrival rates if
the discrete-event kernel keeps up.  This module measures the kernel the
same way every time — a fixed set of *phases*, each timed over several
repeats — and writes the result as ``BENCH_kernel.json`` so
``scripts/bench_compare.py`` can fail a change that regresses events/s
by more than the budget (15 % by default).

Phases (see :data:`PHASES`):

* ``timeout_chain``   — raw event throughput: one process, N timeouts;
* ``process_spawn``   — spawn/resume cost: N short-lived processes;
* ``fair_share``      — water-filling reallocation under job churn;
* ``trace_disabled``  — cost of a gated-off :class:`~repro.sim.Trace`;
* ``end_to_end``      — the full SWEB stack serving a request stream;
* ``coop_broker``     — cache-aware broker decisions against a seeded
  cooperative-cache directory (the repro.cache hot path).

``run_bench(profile=True)`` additionally runs each phase under
:mod:`cProfile` and reports the hottest functions plus a per-subsystem
(``repro.sim`` / ``repro.web`` / ...) time split.

Used by ``sweb-repro bench`` (see ``docs/PERFORMANCE.md``); importable
directly for tests.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from typing import Any, Callable, Optional

try:  # POSIX only; the bench degrades gracefully without it
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = ["PHASES", "SCHEMA", "run_bench", "run_phase", "main"]

#: Schema tag stamped into every BENCH file (bump on incompatible change).
SCHEMA = "sweb-bench/1"


# ---------------------------------------------------------------------------
# phase bodies: each returns (work_units, unit_name, extras)
# ---------------------------------------------------------------------------

def _phase_timeout_chain(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import Simulator

    n = max(1, int(50_000 * scale))
    sim = Simulator()

    def ticker():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.spawn(ticker())
    sim.run()
    return sim.event_count, "events", {"timeouts": n}


def _phase_process_spawn(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import Simulator

    n = max(1, int(10_000 * scale))
    sim = Simulator()

    def short_lived(i):
        yield sim.timeout(0.001 * (i % 13))
        yield sim.timeout(0.5)

    for i in range(n):
        sim.spawn(short_lived(i))
    sim.run()
    return sim.event_count, "events", {"processes": n}


def _phase_fair_share(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import FairShareServer, Simulator

    n = max(1, int(600 * scale))
    sim = Simulator()
    srv = FairShareServer(sim, rate=100.0)

    def submit(i):
        yield sim.timeout(i * 0.01)
        cap = 5.0 if i % 9 == 0 else None
        job = srv.submit(1.0 + (i % 7), cap=cap)
        yield job.done

    for i in range(n):
        sim.spawn(submit(i))
    sim.run()
    return sim.event_count, "events", {
        "jobs": srv.jobs_completed,
        "work_done": srv.work_completed,
    }


def _phase_trace_disabled(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import Trace

    n = max(1, int(200_000 * scale))
    trace = Trace(enabled=False)
    emit = trace.emit
    for i in range(n):
        emit(float(i), "bench", "bench", "noop", i=i, level=2)
    return n, "emits", {"records_kept": len(trace)}


def _phase_end_to_end(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .cluster import meiko_cs2
    from .core.sweb import SWEBCluster

    n = max(1, int(300 * scale))
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=1)
    for i in range(20):
        cluster.add_file(f"/f{i}.html", 2e4, home=i % 6)
    client = cluster.client()
    sim = cluster.sim

    def driver():
        for i in range(n):
            yield sim.timeout(0.05)
            client.fetch(f"/f{i % 20}.html")

    sim.spawn(driver())
    cluster.run(until=sim.now + 0.05 * n + 60.0)
    # Rated in requests/s, not events/s: optimisations that *eliminate*
    # kernel events (batched fan-out, process-free transfer chains) make
    # the same scenario cheaper while lowering event_count — events/s
    # would punish exactly the improvements this phase exists to measure.
    return n, "requests", {
        "completed": cluster.metrics.completed,
        "events": sim.event_count,
    }


def _phase_coop_broker(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .cache import CacheReport
    from .cluster import meiko_cs2
    from .core import CostParameters
    from .core.sweb import SWEBCluster

    n = max(1, int(3_000 * scale))
    cluster = SWEBCluster(
        meiko_cs2(6), policy="sweb", seed=1, start_loadd=False,
        params=CostParameters(coop_cache=True, cache_hot_set=16))
    for i in range(16):
        cluster.add_file(f"/hot{i}.gif", 3e6, home=0)
    # Seed every directory with synthetic peer reports so choose_server
    # exercises the cache-aware t_data path (directory lookup per
    # candidate), not just the plain cost loop.
    for node_id, directory in cluster.directories.items():
        for peer in range(6):
            if peer == node_id:
                continue
            paths = tuple(f"/hot{i}.gif" for i in range(peer, 16, 6))
            directory.update(CacheReport(node=peer, paths=paths,
                                         timestamp=0.0))
    brokers = list(cluster.brokers.values())
    decisions = 0
    for i in range(n):
        broker = brokers[i % len(brokers)]
        broker.choose_server(f"/hot{i % 16}.gif", client_latency=0.01)
        decisions += 1
    return decisions, "decisions", {"nodes": 6, "hot_files": 16}


#: Ordered registry: phase name -> body.  ``bench_compare`` diffs by name.
PHASES: dict[str, Callable[[float], tuple[int, str, dict[str, Any]]]] = {
    "timeout_chain": _phase_timeout_chain,
    "process_spawn": _phase_process_spawn,
    "fair_share": _phase_fair_share,
    "trace_disabled": _phase_trace_disabled,
    "end_to_end": _phase_end_to_end,
    "coop_broker": _phase_coop_broker,
}

_SUBSYSTEMS = ("repro/sim", "repro/cluster", "repro/cache", "repro/web",
               "repro/core", "repro/faults", "repro/workload",
               "repro/experiments")


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def run_phase(name: str, repeats: int = 3, scale: float = 1.0) -> dict[str, Any]:
    """Time one phase ``repeats`` times; report the best (least-noise) run."""
    body = PHASES[name]
    best_wall = None
    units = 0
    unit = "units"
    extras: dict[str, Any] = {}
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        units, unit, extras = body(scale)
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
    result = {
        "units": units,
        "unit": unit,
        "wall_s": round(best_wall, 6),
        "per_s": round(units / best_wall, 1) if best_wall > 0 else 0.0,
    }
    result.update(extras)
    return result


def _profile_phase(name: str, scale: float, top: int) -> str:
    """cProfile one phase: top-``top`` functions + per-subsystem split."""
    profiler = cProfile.Profile()
    profiler.enable()
    PHASES[name](scale)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    subsystem_time: dict[str, float] = {key: 0.0 for key in _SUBSYSTEMS}
    other = 0.0
    total = 0.0
    for (filename, _lineno, _fn), (_cc, _nc, tottime, _ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        total += tottime
        path = filename.replace("\\", "/")
        for key in _SUBSYSTEMS:
            if key in path:
                subsystem_time[key] += tottime
                break
        else:
            other += tottime
    out = io.StringIO()
    out.write(f"--- profile: {name} ---\n")
    out.write("subsystem time split (tottime):\n")
    for key in _SUBSYSTEMS:
        if subsystem_time[key] > 0:
            share = subsystem_time[key] / total if total else 0.0
            out.write(f"  {key:<20} {subsystem_time[key]:8.3f}s  {share:6.1%}\n")
    if total:
        out.write(f"  {'(interpreter/other)':<20} {other:8.3f}s  "
                  f"{other / total:6.1%}\n")
    stats.stream = out  # type: ignore[attr-defined]
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


def run_bench(repeats: int = 3, scale: float = 1.0, profile: bool = False,
              top: int = 20, phases: Optional[list[str]] = None,
              stream=None) -> dict[str, Any]:
    """Run the benchmark suite; return the BENCH document as a dict."""
    stream = stream if stream is not None else sys.stdout
    names = list(PHASES) if not phases else phases
    unknown = [p for p in names if p not in PHASES]
    if unknown:
        raise KeyError(f"unknown phase(s): {', '.join(unknown)}")
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "scale": scale,
        "phases": {},
    }
    total_wall = 0.0
    for name in names:
        result = run_phase(name, repeats=repeats, scale=scale)
        doc["phases"][name] = result
        total_wall += result["wall_s"]
        print(f"  {name:<16} {result['per_s']:>12,.0f} {result['unit']}/s  "
              f"({result['wall_s'] * 1e3:,.1f} ms best of {repeats})",
              file=stream)
        if profile:
            print(_profile_phase(name, scale, top), file=stream)
    headline = doc["phases"].get("timeout_chain", {}).get("per_s", 0.0)
    doc["totals"] = {
        "wall_s": round(total_wall, 6),
        "events_per_s": headline,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return doc


def main(out: Optional[str] = "BENCH_kernel.json", repeats: int = 3,
         scale: float = 1.0, profile: bool = False, top: int = 20,
         phases: Optional[list[str]] = None) -> int:
    """Entry point used by ``sweb-repro bench``."""
    print(f"sweb-repro bench (repeats={repeats}, scale={scale:g})")
    doc = run_bench(repeats=repeats, scale=scale, profile=profile, top=top,
                    phases=phases)
    totals = doc["totals"]
    rss = totals["peak_rss_kb"]
    if totals["events_per_s"]:
        head = f"kernel: {totals['events_per_s']:,.0f} events/s"
    else:
        head = "kernel: n/a (timeout_chain phase not run)"
    line = f"{head}; total wall {totals['wall_s']:.2f}s"
    if rss is not None:
        line += f"; peak RSS {rss / 1024:.1f} MiB"
    print(line)
    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
