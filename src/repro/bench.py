"""Performance benchmark harness behind ``sweb-repro bench``.

The ROADMAP's north star is a simulator that "runs as fast as the
hardware allows"; §3.3 of the paper bounds the max sustained request
rate, and we can only explore large clusters and high arrival rates if
the discrete-event kernel keeps up.  This module measures the kernel the
same way every time — a fixed set of *phases*, each timed over several
repeats — and writes the result as ``BENCH_kernel.json`` so
``scripts/bench_compare.py`` can fail a change that regresses events/s
by more than the budget (15 % by default).

Phases (see :data:`PHASES`):

* ``timeout_chain``   — raw event throughput: one process, N timeouts;
* ``process_spawn``   — spawn/resume cost: N short-lived processes;
* ``fair_share``      — water-filling reallocation under job churn;
* ``trace_disabled``  — cost of a gated-off :class:`~repro.sim.Trace`;
* ``end_to_end``      — the full SWEB stack serving a request stream;
* ``coop_broker``     — cache-aware broker decisions against a seeded
  cooperative-cache directory (the repro.cache hot path);
* ``lint_deep``       — the full static-analysis stack (per-file rules
  plus the whole-program call graph, substream audit, and purity proof)
  over ``src/repro``, rated in files/s — keeps ``--deep`` fast enough
  to gate tier-1.

Tier phases (``--scale {S,M,L,XL}``, see :data:`TIERS` and
``docs/SCALING.md``) additionally measure the million-request path:

* ``fluid_stream@T``  — the aggregate client-population model
  (:func:`repro.workload.run_fluid`), rated in sim-req/s;
* ``shard_grid@T``    — a seeds-grid through the sharded runner
  (:func:`repro.experiments.run_grid`) including the snapshot merge;
* ``sched_tournament@T`` — the X11 policy × cluster × popularity grid
  (every fluid decision kernel, homogeneous and heterogeneous), the
  stress test for the per-policy stepper dispatch;
* ``fuzz_smoke@T``    — a seeded ``repro.fuzz`` campaign (generator →
  executor → oracle over whole random deployments), rated in cases/s —
  tracks the cost of the tier-1 fuzz gate;
* ``geo_cdn@T``       — the three-site geo tier end to end (WAN reads,
  placement daemon, geo-affinity DNS; docs/GEO.md), rated in requests/s
  — the multi-cluster analogue of ``end_to_end``.

``run_bench(profile=True)`` additionally runs each phase under
:mod:`cProfile` and reports the hottest functions plus a per-subsystem
(``repro.sim`` / ``repro.web`` / ...) time split.

Used by ``sweb-repro bench`` (see ``docs/PERFORMANCE.md``); importable
directly for tests.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from typing import Any, Callable, Optional

try:  # POSIX only; the bench degrades gracefully without it
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = ["PHASES", "SCHEMA", "TIERS", "TIER_PHASES", "parse_scale",
           "run_bench", "run_phase", "main"]

#: Schema tag stamped into every BENCH file (bump on incompatible change).
SCHEMA = "sweb-bench/1"

#: ``--scale`` tier definitions: simulated request volumes for the
#: fluid-stream phase and the sharded seeds-grid phase.  The grid always
#: totals the same request count as the stream so the two rates compare
#: directly (grid = stream + shard/merge overhead).
TIERS: dict[str, dict[str, int]] = {
    "S": {"fluid_requests": 100_000, "grid_cells": 4,
          "grid_requests": 25_000, "tournament_requests": 10_000,
          "fuzz_cases": 10, "geo_requests": 600},
    "M": {"fluid_requests": 400_000, "grid_cells": 4,
          "grid_requests": 100_000, "tournament_requests": 40_000,
          "fuzz_cases": 20, "geo_requests": 1_200},
    "L": {"fluid_requests": 1_000_000, "grid_cells": 4,
          "grid_requests": 250_000, "tournament_requests": 100_000,
          "fuzz_cases": 40, "geo_requests": 2_400},
    "XL": {"fluid_requests": 4_000_000, "grid_cells": 8,
           "grid_requests": 500_000, "tournament_requests": 250_000,
           "fuzz_cases": 80, "geo_requests": 4_800},
}

#: offered rate for the tier phases: ~70 % utilisation of the default
#: 6-node fluid cluster, the regime where broker decisions matter
_TIER_RATE = 7_000.0


# ---------------------------------------------------------------------------
# phase bodies: each returns (work_units, unit_name, extras)
# ---------------------------------------------------------------------------

def _phase_timeout_chain(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import Simulator

    n = max(1, int(50_000 * scale))
    sim = Simulator()

    def ticker():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.spawn(ticker())
    sim.run()
    return sim.event_count, "events", {"timeouts": n}


def _phase_process_spawn(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import Simulator

    n = max(1, int(10_000 * scale))
    sim = Simulator()

    def short_lived(i):
        yield sim.timeout(0.001 * (i % 13))
        yield sim.timeout(0.5)

    for i in range(n):
        sim.spawn(short_lived(i))
    sim.run()
    return sim.event_count, "events", {"processes": n}


def _phase_fair_share(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import FairShareServer, Simulator

    n = max(1, int(600 * scale))
    sim = Simulator()
    srv = FairShareServer(sim, rate=100.0)

    def submit(i):
        yield sim.timeout(i * 0.01)
        cap = 5.0 if i % 9 == 0 else None
        job = srv.submit(1.0 + (i % 7), cap=cap)
        yield job.done

    for i in range(n):
        sim.spawn(submit(i))
    sim.run()
    return sim.event_count, "events", {
        "jobs": srv.jobs_completed,
        "work_done": srv.work_completed,
    }


def _phase_trace_disabled(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .sim import Trace

    n = max(1, int(200_000 * scale))
    trace = Trace(enabled=False)
    emit = trace.emit
    for i in range(n):
        emit(float(i), "bench", "bench", "noop", i=i, level=2)
    return n, "emits", {"records_kept": len(trace)}


def _phase_end_to_end(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .cluster import meiko_cs2
    from .core.sweb import SWEBCluster

    n = max(1, int(300 * scale))
    cluster = SWEBCluster(meiko_cs2(6), policy="sweb", seed=1)
    for i in range(20):
        cluster.add_file(f"/f{i}.html", 2e4, home=i % 6)
    client = cluster.client()
    sim = cluster.sim

    def driver():
        for i in range(n):
            yield sim.timeout(0.05)
            client.fetch(f"/f{i % 20}.html")

    sim.spawn(driver())
    cluster.run(until=sim.now + 0.05 * n + 60.0)
    # Rated in requests/s, not events/s: optimisations that *eliminate*
    # kernel events (batched fan-out, process-free transfer chains) make
    # the same scenario cheaper while lowering event_count — events/s
    # would punish exactly the improvements this phase exists to measure.
    return n, "requests", {
        "completed": cluster.metrics.completed,
        "events": sim.event_count,
    }


def _phase_coop_broker(scale: float) -> tuple[int, str, dict[str, Any]]:
    from .cache import CacheReport
    from .cluster import meiko_cs2
    from .core import CostParameters
    from .core.sweb import SWEBCluster

    n = max(1, int(3_000 * scale))
    cluster = SWEBCluster(
        meiko_cs2(6), policy="sweb", seed=1, start_loadd=False,
        params=CostParameters(coop_cache=True, cache_hot_set=16))
    for i in range(16):
        cluster.add_file(f"/hot{i}.gif", 3e6, home=0)
    # Seed every directory with synthetic peer reports so choose_server
    # exercises the cache-aware t_data path (directory lookup per
    # candidate), not just the plain cost loop.
    for node_id, directory in cluster.directories.items():
        for peer in range(6):
            if peer == node_id:
                continue
            paths = tuple(f"/hot{i}.gif" for i in range(peer, 16, 6))
            directory.update(CacheReport(node=peer, paths=paths,
                                         timestamp=0.0))
    brokers = list(cluster.brokers.values())
    decisions = 0
    for i in range(n):
        broker = brokers[i % len(brokers)]
        broker.choose_server(f"/hot{i % 16}.gif", client_latency=0.01)
        decisions += 1
    return decisions, "decisions", {"nodes": 6, "hot_files": 16}


def _phase_lint_deep(scale: float) -> tuple[int, str, dict[str, Any]]:
    # scale is ignored: the corpus is the live tree, whose size is fixed.
    from .lint import ContextCache, Program, run_deep, run_lint

    cache = ContextCache()
    per_file = run_lint(cache=cache)
    program = Program.build(cache=cache)
    deep = run_deep(cache=cache, program=program)
    return len(cache), "files", {
        "per_file_findings": len(per_file),
        "deep_findings": len(deep),
        "functions": len(program.functions),
        "call_edges": sum(len(t) for t in program.edges.values()),
        "reachable": len(program.sim_reachable),
    }


def _make_fluid_stream(tier: str) -> Callable[[float],
                                              tuple[int, str, dict[str, Any]]]:
    def body(scale: float) -> tuple[int, str, dict[str, Any]]:
        from .workload import FluidScenario, run_fluid

        n = max(1, int(TIERS[tier]["fluid_requests"] * scale))
        scenario = FluidScenario(name=f"bench-{tier}", n_requests=n,
                                 rate=_TIER_RATE, seed=1)
        res = run_fluid(scenario, keep_records=False)
        return n, "sim-req", {
            "tier": tier,
            "events": res.event_count,
            "redirected": res.redirected,
            "fingerprint": res.fingerprint[:16],
        }
    return body


def _make_shard_grid(tier: str) -> Callable[[float],
                                            tuple[int, str, dict[str, Any]]]:
    def body(scale: float) -> tuple[int, str, dict[str, Any]]:
        from .experiments import make_fluid_grid, run_grid
        from .workload import FluidScenario

        cfg = TIERS[tier]
        n = max(1, int(cfg["grid_requests"] * scale))
        base = FluidScenario(name=f"grid-{tier}", n_requests=n,
                             rate=_TIER_RATE, seed=1)
        cells = make_fluid_grid(base, seeds=range(1, cfg["grid_cells"] + 1))
        report = run_grid(cells)
        return report.n_requests, "sim-req", {
            "tier": tier,
            "cells": len(cells),
            "workers": report.workers,
            "grid_fingerprint": report.grid_fingerprint[:16],
        }
    return body


#: Ordered registry: phase name -> body.  ``bench_compare`` diffs by name.
PHASES: dict[str, Callable[[float], tuple[int, str, dict[str, Any]]]] = {
    "timeout_chain": _phase_timeout_chain,
    "process_spawn": _phase_process_spawn,
    "fair_share": _phase_fair_share,
    "trace_disabled": _phase_trace_disabled,
    "end_to_end": _phase_end_to_end,
    "coop_broker": _phase_coop_broker,
    "lint_deep": _phase_lint_deep,
}

def _make_sched_tournament(tier: str) -> Callable[[float],
                                                  tuple[int, str,
                                                        dict[str, Any]]]:
    def body(scale: float) -> tuple[int, str, dict[str, Any]]:
        from .experiments import run_grid
        from .experiments.tournament import make_cells
        from .sched import fluid_policy_names

        n = max(1, int(TIERS[tier]["tournament_requests"] * scale))
        cells = make_cells(n)
        report = run_grid(cells)
        return report.n_requests, "sim-req", {
            "tier": tier,
            "cells": len(cells),
            "policies": len(fluid_policy_names()),
            "workers": report.workers,
            "grid_fingerprint": report.grid_fingerprint[:16],
        }
    return body


def _make_fuzz_smoke(tier: str) -> Callable[[float],
                                            tuple[int, str, dict[str, Any]]]:
    def body(scale: float) -> tuple[int, str, dict[str, Any]]:
        from .fuzz import SMOKE_PROFILE, run_fuzz

        n = max(1, int(TIERS[tier]["fuzz_cases"] * scale))
        report = run_fuzz(root_seed=7, n_cases=n, profile=SMOKE_PROFILE,
                          shrink_failures=False)
        return n, "cases", {
            "tier": tier,
            "failures": len(report.failures),
        }
    return body


def _make_geo_cdn(tier: str) -> Callable[[float],
                                         tuple[int, str, dict[str, Any]]]:
    def body(scale: float) -> tuple[int, str, dict[str, Any]]:
        from .geo import GeoScenario, run_geo

        n = max(1, int(TIERS[tier]["geo_requests"] * scale))
        rps = 40.0
        result = run_geo(GeoScenario(name=f"bench-geo-{tier}", rps=rps,
                                     duration=n / rps, seed=1,
                                     graceful=True))
        return n, "requests", {
            "tier": tier,
            "edge_hit_rate": round(result.edge_hit_rate, 4),
            "wan_reads": result.wan_reads,
            "placements": result.placements,
        }
    return body


#: Tier-tagged phases, run only under ``--scale {S,M,L,XL}``.  The ``@``
#: suffix marks them optional to ``scripts/bench_compare.py``: a tier
#: phase present in the baseline but absent from the new file is noted,
#: not fatal, since plain ``bench`` runs skip the tiers.
TIER_PHASES: dict[str, Callable[[float], tuple[int, str, dict[str, Any]]]] = {}
for _tier in TIERS:
    TIER_PHASES[f"fluid_stream@{_tier}"] = _make_fluid_stream(_tier)
    TIER_PHASES[f"shard_grid@{_tier}"] = _make_shard_grid(_tier)
    TIER_PHASES[f"sched_tournament@{_tier}"] = _make_sched_tournament(_tier)
    TIER_PHASES[f"fuzz_smoke@{_tier}"] = _make_fuzz_smoke(_tier)
    TIER_PHASES[f"geo_cdn@{_tier}"] = _make_geo_cdn(_tier)


def parse_scale(value: Any) -> tuple[float, Optional[str]]:
    """Interpret a ``--scale`` value: a float multiplier or a tier letter.

    Returns ``(multiplier, tier)`` — tier is ``None`` for plain float
    scales, and the multiplier is 1.0 for tier scales.
    """
    if isinstance(value, (int, float)):
        return float(value), None
    text = str(value).strip()
    tier = text.upper()
    if tier in TIERS:
        return 1.0, tier
    try:
        return float(text), None
    except ValueError:
        raise ValueError(
            f"--scale must be a float or one of {'/'.join(TIERS)}, "
            f"got {value!r}") from None

_SUBSYSTEMS = ("repro/sim", "repro/cluster", "repro/cache", "repro/web",
               "repro/core", "repro/faults", "repro/workload",
               "repro/experiments")


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def _phase_body(name: str) -> Callable[[float], tuple[int, str, dict[str, Any]]]:
    """Look up a phase in the base registry, then the tier registry."""
    body = PHASES.get(name) or TIER_PHASES.get(name)
    if body is None:
        raise KeyError(name)
    return body


def run_phase(name: str, repeats: int = 3, scale: float = 1.0) -> dict[str, Any]:
    """Time one phase ``repeats`` times; report the best (least-noise) run."""
    body = _phase_body(name)
    best_wall = None
    units = 0
    unit = "units"
    extras: dict[str, Any] = {}
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        units, unit, extras = body(scale)
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
    result = {
        "units": units,
        "unit": unit,
        "wall_s": round(best_wall, 6),
        "per_s": round(units / best_wall, 1) if best_wall > 0 else 0.0,
    }
    result.update(extras)
    # Tier phases report kernel events alongside sim-requests; derive
    # the events/s rate the BENCH record promises per tier.
    if "events" in extras and best_wall > 0:
        result["events_per_s"] = round(extras["events"] / best_wall, 1)
    return result


def _profile_phase(name: str, scale: float, top: int) -> str:
    """cProfile one phase: top-``top`` functions + per-subsystem split."""
    profiler = cProfile.Profile()
    profiler.enable()
    _phase_body(name)(scale)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    subsystem_time: dict[str, float] = {key: 0.0 for key in _SUBSYSTEMS}
    other = 0.0
    total = 0.0
    for (filename, _lineno, _fn), (_cc, _nc, tottime, _ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        total += tottime
        path = filename.replace("\\", "/")
        for key in _SUBSYSTEMS:
            if key in path:
                subsystem_time[key] += tottime
                break
        else:
            other += tottime
    out = io.StringIO()
    out.write(f"--- profile: {name} ---\n")
    out.write("subsystem time split (tottime):\n")
    for key in _SUBSYSTEMS:
        if subsystem_time[key] > 0:
            share = subsystem_time[key] / total if total else 0.0
            out.write(f"  {key:<20} {subsystem_time[key]:8.3f}s  {share:6.1%}\n")
    if total:
        out.write(f"  {'(interpreter/other)':<20} {other:8.3f}s  "
                  f"{other / total:6.1%}\n")
    stats.stream = out  # type: ignore[attr-defined]
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def _peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


def run_bench(repeats: int = 3, scale: float = 1.0, profile: bool = False,
              top: int = 20, phases: Optional[list[str]] = None,
              stream=None, tier: Optional[str] = None) -> dict[str, Any]:
    """Run the benchmark suite; return the BENCH document as a dict.

    ``tier`` (one of :data:`TIERS`) appends that tier's ``fluid_stream@T``,
    ``shard_grid@T`` and ``sched_tournament@T`` phases to the run and
    stamps the tier into the document.
    """
    stream = stream if stream is not None else sys.stdout
    if tier is not None and tier not in TIERS:
        raise KeyError(f"unknown tier {tier!r}; choose from {sorted(TIERS)}")
    if phases:
        names = list(phases)
    else:
        names = list(PHASES)
        if tier is not None:
            names += [f"fluid_stream@{tier}", f"shard_grid@{tier}",
                      f"sched_tournament@{tier}", f"fuzz_smoke@{tier}",
                      f"geo_cdn@{tier}"]
    known = set(PHASES) | set(TIER_PHASES)
    unknown = [p for p in names if p not in known]
    if unknown:
        raise KeyError(f"unknown phase(s): {', '.join(unknown)}")
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "repeats": repeats,
        "scale": scale,
        "phases": {},
    }
    if tier is not None:
        doc["tier"] = tier
    total_wall = 0.0
    for name in names:
        result = run_phase(name, repeats=repeats, scale=scale)
        doc["phases"][name] = result
        total_wall += result["wall_s"]
        print(f"  {name:<16} {result['per_s']:>12,.0f} {result['unit']}/s  "
              f"({result['wall_s'] * 1e3:,.1f} ms best of {repeats})",
              file=stream)
        if profile:
            print(_profile_phase(name, scale, top), file=stream)
    headline = doc["phases"].get("timeout_chain", {}).get("per_s", 0.0)
    doc["totals"] = {
        "wall_s": round(total_wall, 6),
        "events_per_s": headline,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return doc


def main(out: Optional[str] = "BENCH_kernel.json", repeats: int = 3,
         scale: Any = 1.0, profile: bool = False, top: int = 20,
         phases: Optional[list[str]] = None) -> int:
    """Entry point used by ``sweb-repro bench``.

    ``scale`` accepts a float multiplier or a tier letter (S/M/L/XL).
    """
    multiplier, tier = parse_scale(scale)
    label = tier if tier is not None else f"{multiplier:g}"
    print(f"sweb-repro bench (repeats={repeats}, scale={label})")
    doc = run_bench(repeats=repeats, scale=multiplier, profile=profile,
                    top=top, phases=phases, tier=tier)
    totals = doc["totals"]
    rss = totals["peak_rss_kb"]
    if totals["events_per_s"]:
        head = f"kernel: {totals['events_per_s']:,.0f} events/s"
    else:
        head = "kernel: n/a (timeout_chain phase not run)"
    line = f"{head}; total wall {totals['wall_s']:.2f}s"
    if rss is not None:
        line += f"; peak RSS {rss / 1024:.1f} MiB"
    print(line)
    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin wrapper
    sys.exit(main())
