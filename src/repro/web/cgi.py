"""CGI program registry.

The Alexandria Digital Library workload the paper is built for is not
static HTML: spatial queries and metadata lookups run as CGI programs with
"known associated computational cost" (the t_CPU term).  The registry maps
CGI paths to their cost profile so both the server (to execute) and the
oracle (to predict) can look them up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CGIProgram", "CGIRegistry"]


@dataclass(frozen=True)
class CGIProgram:
    """Cost profile of one CGI executable."""

    path: str
    cpu_ops: float          # operations to execute the program
    output_bytes: float     # size of the generated reply body
    reads_path: Optional[str] = None   # data file it scans, if any

    def __post_init__(self) -> None:
        if self.cpu_ops < 0:
            raise ValueError(f"negative cpu_ops for {self.path!r}")
        if self.output_bytes < 0:
            raise ValueError(f"negative output_bytes for {self.path!r}")


class CGIRegistry:
    """Registered CGI programs, keyed by exact path.

    Anything under ``/cgi-bin/`` is *treated* as CGI; unregistered CGI
    paths fall back to a default profile (the server cannot refuse to run
    a script just because the oracle has never seen it).
    """

    CGI_PREFIX = "/cgi-bin/"

    def __init__(self, default_ops: float = 2e6,
                 default_output: float = 8e3) -> None:
        self._programs: dict[str, CGIProgram] = {}
        self.default_ops = float(default_ops)
        self.default_output = float(default_output)

    def register(self, program: CGIProgram) -> None:
        if not program.path.startswith(self.CGI_PREFIX):
            raise ValueError(
                f"CGI programs must live under {self.CGI_PREFIX!r}: {program.path!r}")
        self._programs[program.path] = program

    def add(self, path: str, cpu_ops: float, output_bytes: float,
            reads_path: Optional[str] = None) -> CGIProgram:
        prog = CGIProgram(path=path, cpu_ops=cpu_ops,
                          output_bytes=output_bytes, reads_path=reads_path)
        self.register(prog)
        return prog

    def is_cgi(self, path: str) -> bool:
        return path.startswith(self.CGI_PREFIX)

    def lookup(self, path: str) -> CGIProgram:
        """Profile for ``path`` (default profile if unregistered)."""
        if not self.is_cgi(path):
            raise KeyError(f"not a CGI path: {path!r}")
        prog = self._programs.get(path)
        if prog is None:
            prog = CGIProgram(path=path, cpu_ops=self.default_ops,
                              output_bytes=self.default_output)
        return prog

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, path: str) -> bool:
        return path in self._programs
