"""The two-level DNS of Figure 1.

"First, the client determines the host name from the URL, and uses the
local Domain Name System (DNS) server to determine its IP address.  The
local DNS may not know the IP address of the destination, and may need
to contact the DNS system on the destination side to complete the
resolution."

Two components:

* :class:`AuthoritativeDNS` — the name server at the SWEB site, handing
  out node addresses in round-robin rotation with a TTL;
* :class:`LocalResolver` — the client side's resolver: answers from its
  cache instantly, otherwise pays a WAN round trip to the authoritative
  server.  The cache is what makes "all requests for a period of time
  from a DNS server's domain go to a particular IP address" (§1).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.network import WANPath
from ..obs import Span, Tracer
from ..sim import Event, Simulator, Trace

__all__ = ["AuthoritativeDNS", "LocalResolver"]


class AuthoritativeDNS:
    """The SWEB site's name server: rotation over the node pool."""

    def __init__(self, sim: Simulator, addresses: list[int],
                 ttl: float = 30.0, answer_latency: float = 0.5e-3,
                 name: str = "ns.cs.ucsb.edu") -> None:
        if not addresses:
            raise ValueError("need at least one address")
        if ttl < 0:
            raise ValueError(f"negative TTL: {ttl}")
        self.sim = sim
        self.addresses = list(addresses)
        self.ttl = float(ttl)
        self.answer_latency = float(answer_latency)
        self.name = name
        self._cursor = 0
        self.queries = 0

    def register(self, address: int) -> None:
        if address not in self.addresses:
            self.addresses.append(address)

    def deregister(self, address: int) -> None:
        try:
            self.addresses.remove(address)
        except ValueError:
            pass

    def answer(self) -> tuple[int, float]:
        """One authoritative answer: (address, ttl)."""
        if not self.addresses:
            raise LookupError("zone is empty")
        self.queries += 1
        address = self.addresses[self._cursor % len(self.addresses)]
        self._cursor += 1
        return address, self.ttl


class LocalResolver:
    """A client domain's caching resolver."""

    def __init__(self, sim: Simulator, authoritative: AuthoritativeDNS,
                 wan: Optional[WANPath] = None,
                 local_latency: float = 1e-3,
                 domain: str = "client.example.edu",
                 trace: Optional[Trace] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.authoritative = authoritative
        self.wan = wan
        self.local_latency = float(local_latency)
        self.domain = domain
        self.trace = trace
        #: per-request span tracer; when set, resolutions called with a
        #: ``ctx`` span record their cache/upstream legs as child spans
        self.tracer = tracer
        self._cache: Optional[tuple[int, float]] = None   # (address, expiry)
        self.queries = 0
        self.cache_hits = 0
        self.upstream_queries = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    def resolve(self, hostname: str = "sweb.cs.ucsb.edu",
                ctx: Optional[Span] = None) -> Event:
        """Asynchronous resolution; the event's value is the node address.

        Cache hits cost only the LAN hop to the resolver; misses add a
        WAN round trip to the authoritative server.  When a tracer is
        wired in, ``ctx`` is the caller's span and each resolution leg
        (local cache probe, authoritative query) nests under it.
        """
        done = Event(self.sim)

        def pump():
            self.queries += 1
            sp = (self.tracer.start(ctx, "resolver_cache", self.sim.now,
                                    "network", domain=self.domain)
                  if self.tracer is not None else None)
            yield self.sim.timeout(self.local_latency)
            if self._cache is not None and self._cache[1] > self.sim.now:
                self.cache_hits += 1
                if self.tracer is not None:
                    self.tracer.finish(sp, self.sim.now, hit=True,
                                       address=self._cache[0])
                if self.trace is not None:
                    self.trace.emit(self.sim.now, "dns", self.domain,
                                    "cache_hit", address=self._cache[0])
                done.succeed(self._cache[0])
                return
            if self.tracer is not None:
                self.tracer.finish(sp, self.sim.now, hit=False)
            # Recursive query to the destination side (Figure 1's second
            # DNS exchange): one WAN round trip plus the answer latency.
            self.upstream_queries += 1
            rtt = 2 * self.wan.latency if self.wan is not None else 0.0
            sp = (self.tracer.start(ctx, "authoritative_query", self.sim.now,
                                    "network", server=self.authoritative.name)
                  if self.tracer is not None else None)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "dns", self.domain,
                                "query_authoritative",
                                server=self.authoritative.name)
            yield self.sim.timeout(rtt + self.authoritative.answer_latency)
            try:
                address, ttl = self.authoritative.answer()
            except LookupError as exc:
                if self.tracer is not None:
                    self.tracer.finish(sp, self.sim.now, error="empty_zone")
                done.fail(exc)
                return
            if ttl > 0:
                self._cache = (address, self.sim.now + ttl)
            if self.tracer is not None:
                self.tracer.finish(sp, self.sim.now, address=address, ttl=ttl)
            if self.trace is not None:
                self.trace.emit(self.sim.now, "dns", self.domain,
                                "authoritative_answer", address=address,
                                ttl=ttl)
            done.succeed(address)

        self.sim.spawn(pump(), name=f"resolver.{self.domain}")
        return done

    def flush(self) -> None:
        """Drop the cached mapping (an impatient admin's fix)."""
        self._cache = None
