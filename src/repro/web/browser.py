"""A graphical-browser session model.

§4: the load generator "simulat[es] the action of a graphical browser
such as Netscape where a number of simultaneous connections are made,
one for each graphics image on the page."  :class:`BrowserSession`
does that honestly: it fetches a page, *parses the returned HTML* to
find its inline images (the cluster stores real markup for pages built
with :func:`repro.workload.corpus.html_site_corpus`), opens one
concurrent connection per image, and reports when the page is fully
rendered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..sim import AllOf
from .client import Client, ClientProfile, UCSB_CLIENT
from .html import extract_images

if TYPE_CHECKING:  # pragma: no cover
    from ..core.sweb import SWEBCluster

__all__ = ["PageLoad", "BrowserSession"]


@dataclass
class PageLoad:
    """The outcome of rendering one page (page + all inline images)."""

    path: str
    started: float
    finished: Optional[float] = None
    page_ok: bool = False
    images_requested: int = 0
    images_ok: int = 0
    records: list = field(default_factory=list)

    @property
    def load_time(self) -> Optional[float]:
        """Time until the page and every image arrived (None if pending)."""
        if self.finished is None:
            return None
        return self.finished - self.started

    @property
    def complete(self) -> bool:
        return self.page_ok and self.images_ok == self.images_requested


class BrowserSession:
    """A browser pointed at a SWEB cluster.

    The cluster must have been populated with real markup for the pages
    (see ``html_site_corpus``), which is kept in ``cluster.page_markup``;
    pages without stored markup are treated as imageless documents.
    """

    def __init__(self, cluster: "SWEBCluster",
                 profile: ClientProfile = UCSB_CLIENT,
                 timeout: float = 120.0,
                 max_parallel_images: int = 4) -> None:
        if max_parallel_images < 1:
            raise ValueError(
                f"max_parallel_images must be >= 1, got {max_parallel_images}")
        self.cluster = cluster
        self.client = Client(cluster, profile=profile, timeout=timeout)
        #: Netscape-style cap on simultaneous image connections
        self.max_parallel_images = max_parallel_images
        self.loads: list[PageLoad] = []

    def open(self, path: str):
        """Load ``path`` and everything on it; returns a Process whose
        value is the :class:`PageLoad`."""
        return self.cluster.sim.spawn(self._open(path),
                                      name=f"browser:{path}")

    def _open(self, path: str):
        sim = self.cluster.sim
        load = PageLoad(path=path, started=sim.now)
        self.loads.append(load)

        page_rec = yield self.client.fetch(path)
        load.records.append(page_rec)
        load.page_ok = bool(page_rec.ok)
        if not load.page_ok:
            load.finished = sim.now
            return load

        markup = getattr(self.cluster, "page_markup", {}).get(path)
        images = extract_images(markup) if markup else []
        load.images_requested = len(images)
        # Fetch images through a bounded pool of simultaneous connections,
        # like a mid-90s browser.
        pending = list(images)
        while pending:
            batch = pending[:self.max_parallel_images]
            pending = pending[self.max_parallel_images:]
            procs = [self.client.fetch(src) for src in batch]
            yield AllOf(sim, procs)
            for proc in procs:
                rec = proc.value
                load.records.append(rec)
                if rec.ok:
                    load.images_ok += 1
        load.finished = sim.now
        return load

    # -- aggregate statistics ------------------------------------------------
    def mean_page_load_time(self) -> float:
        times = [l.load_time for l in self.loads if l.load_time is not None]
        return sum(times) / len(times) if times else float("nan")

    def complete_fraction(self) -> float:
        if not self.loads:
            return 0.0
        return sum(1 for l in self.loads if l.complete) / len(self.loads)
