"""The SWEB httpd: an NCSA-style daemon with the broker bolted on (§3.1).

Each node runs one :class:`HTTPServer`.  A request moves through the four
steps of §3.2 — preprocess, analyze, redirection, fulfillment — with each
step's cost charged to the node's simulated CPU under a named category,
so the §4.3 overhead accounting (parsing vs. scheduling vs. loadd) is an
output of the run rather than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..cache import FileHeat
from ..cluster.network import Internet, WANPath
from ..cluster.node import Node
from ..cluster.filesystem import DistributedFileSystem
from ..obs import Span, Tracer
from ..sim import Event, Simulator, Trace
from ..sim.trace import DETAIL as TRACE_DETAIL

if TYPE_CHECKING:  # pragma: no cover - avoid a web <-> core import cycle
    from ..core.broker import Broker
    from ..core.costmodel import CostParameters
    from ..core.policies import SchedulingPolicy
from .cgi import CGIRegistry
from .http import (
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    redirect_response,
)
from .metrics import Metrics, RequestRecord

__all__ = ["Connection", "HTTPServer"]


@dataclass
class Connection:
    """One client↔server TCP connection carrying one HTTP request."""

    raw_request: str
    wan: WANPath
    record: RequestRecord
    reply: Event
    redirects_left: int = 1
    #: request body size (POST uploads; 0 for GET/HEAD)
    body_bytes: float = 0.0
    #: when set, this is an internal *forwarded* connection: the response
    #: is relayed over the cluster fabric back to the origin node instead
    #: of straight onto the Internet (the "request forwarding" mechanism
    #: §3.1 considered and rejected for the real implementation).
    relay_to: Optional["HTTPServer"] = None
    #: parent span server-side spans hang off (the request's root for a
    #: direct connection, the forward span for a relayed one); ``None``
    #: when tracing is off or the request was not sampled
    span: Optional[Span] = None

    @property
    def client_latency(self) -> float:
        return self.wan.latency


class HTTPServer:
    """One node's httpd + broker, accepting connections from clients."""

    def __init__(self, sim: Simulator, node: Node, fs: DistributedFileSystem,
                 internet: Internet, policy: "SchedulingPolicy",
                 broker: "Broker",
                 cgi_registry: Optional[CGIRegistry] = None,
                 params: Optional["CostParameters"] = None,
                 backlog: int = 64, hostname: Optional[str] = None,
                 trace: Optional[Trace] = None,
                 heat: Optional[FileHeat] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if backlog < 1:
            raise ValueError(f"backlog must be >= 1, got {backlog}")
        if params is None:
            # Intentional upward reach: the httpd's tuning knobs live in
            # core's CostParameters; this lazy default keeps standalone
            # HTTPServer construction working without a hard web->core
            # module-load dependency (SWEBCluster always passes params).
            # sweb-lint: disable=layer-import
            from ..core.costmodel import CostParameters
            params = CostParameters()
        self.sim = sim
        self.node = node
        self.fs = fs
        self.internet = internet
        self.policy = policy
        self.broker = broker
        self.cgi = cgi_registry if cgi_registry is not None else CGIRegistry()
        self.params = params
        self.backlog = backlog
        self.hostname = hostname or f"sweb{node.id}.cs.ucsb.edu"
        self.trace = trace
        #: per-request span tracer (repro.obs); purely observational —
        #: span bookkeeping reads the sim clock but never schedules
        self.tracer = tracer
        #: cluster-shared per-file request counters feeding the
        #: replication daemon's skew detector (docs/CACHING.md)
        self.heat = heat
        #: peer httpds by node id (wired by SWEBCluster; used by the
        #: request-forwarding mechanism)
        self.peers: dict[int, "HTTPServer"] = {}
        self.connections_active = 0
        self.connections_refused = 0
        self.connections_reset = 0
        self.requests_handled = 0
        self.redirects_issued = 0
        self.forwards_issued = 0
        #: connections currently in the §3.2 pipeline (so a crash can
        #: reset them; see reset_connections)
        self._live: list[Connection] = []

    # -- connection admission -----------------------------------------------
    def try_accept(self, conn: Connection) -> bool:
        """Admit a connection, or refuse it (SYN drop) when the listen
        queue is full or the node has left the pool."""
        if not self.node.alive or self.connections_active >= self.backlog:
            self.connections_refused += 1
            return False
        self.connections_active += 1
        self._live.append(conn)
        self.sim.spawn(self._handle(conn), name=f"httpd{self.node.id}.conn")
        return True

    def reset_connections(self) -> int:
        """Abort every in-flight connection (the node crashed).

        The client-visible effect of a crash is a TCP reset, which we
        model as an immediate 503 so clients fail fast instead of
        sitting out their full timeout.  Returns the number reset.
        """
        reset = 0
        for conn in list(self._live):
            if not conn.reply.triggered:
                conn.reply.succeed(HTTPResponse(status=503))
                reset += 1
        self.connections_reset += reset
        if reset and self.trace is not None:
            self.trace.emit(self.sim.now, "http", f"httpd-{self.node.id}",
                            "reset_connections", count=reset)
        return reset

    # -- tracing helpers ------------------------------------------------------
    def _span(self, conn: Connection, name: str, stage: str,
              **tags) -> Optional[Span]:
        """Open a child span under the connection's span (None-safe)."""
        if self.tracer is None:
            return None
        return self.tracer.start(conn.span, name, self.sim.now, stage,
                                 node=self.node.id, **tags)

    def _span_end(self, span: Optional[Span], **tags) -> None:
        """Close ``span`` at the current sim time (None-safe)."""
        if self.tracer is not None:
            self.tracer.finish(span, self.sim.now, **tags)

    # -- the §3.2 request pipeline ----------------------------------------------
    def _handle(self, conn: Connection):
        rec = conn.record
        try:
            # ---- step 1: preprocess ------------------------------------
            t0 = self.sim.now
            sp = self._span(conn, "preprocess", "preprocessing")
            # fork the handling process, then parse the HTTP command,
            # complete the pathname and determine permissions.
            yield self.node.compute(self.params.fork_ops, category="fork")
            try:
                request = HTTPRequest.parse(conn.raw_request)
            except HTTPError:
                yield self.node.compute(self.params.preprocess_ops,
                                        category="parsing")
                rec.add_phase("preprocessing", self.sim.now - t0)
                self._span_end(sp, error="bad_request")
                yield from self._respond(conn, HTTPResponse(status=400))
                return
            yield self.node.compute(self.params.preprocess_ops,
                                    category="parsing")
            rec.add_phase("preprocessing", self.sim.now - t0)
            self._span_end(sp)

            if request.method == "POST" and self.params.enable_post:
                # The extension the paper names as future work: POST is
                # executed as a CGI after the body is uploaded, and is
                # never redirected (it is not idempotent).
                yield from self._handle_post(conn, request)
                return
            if not request.is_supported:
                # POST etc: "not handled, but SWEB could be extended".
                yield from self._respond(conn, HTTPResponse(status=501))
                return
            path = request.path
            is_cgi = self.cgi.is_cgi(path)
            if not is_cgi and not self.fs.exists(path):
                yield from self._respond(conn, HTTPResponse(status=404))
                return

            # ---- step 2: analyze ------------------------------------------
            # "If r is already determined to be a redirection … the request
            # is always completed at x" — no second hop, no ping-pong.
            may_move = conn.redirects_left > 0 and not is_cgi
            decision = None
            if may_move:
                t1 = self.sim.now
                sp = self._span(conn, "analyze", "analysis")
                if self.policy.consults_broker:
                    yield self.node.compute(self.params.analysis_ops,
                                            category="scheduling")
                decision = self.policy.decide(self.broker, path,
                                              conn.client_latency)
                rec.add_phase("analysis", self.sim.now - t1)
                if decision is not None and self.tracer is not None:
                    # Per-candidate cost estimates become span tags, so a
                    # trace shows *why* the broker picked its node.
                    self.tracer.annotate(sp, **decision.estimate_tags())
                self._span_end(sp)

            # ---- step 3: redirection (or forwarding) -------------------------
            if decision is not None and decision.chosen != self.node.id:
                target = self.broker.view.get(decision.chosen, self.sim.now)
                if target is not None and self.params.reassignment == "forward":
                    yield from self._forward(conn, decision.chosen)
                    return
                if target is not None:
                    t2 = self.sim.now
                    sp = self._span(conn, "redirect", "redirection",
                                    to=decision.chosen)
                    yield self.node.compute(self.params.redirect_ops,
                                            category="scheduling")
                    response = redirect_response(
                        f"sweb{decision.chosen}.cs.ucsb.edu", path)
                    response.headers["X-SWEB-Node"] = str(decision.chosen)
                    rec.add_phase("redirection", self.sim.now - t2)
                    self._span_end(sp)
                    self.redirects_issued += 1
                    if self.trace is not None:
                        self.trace.emit(self.sim.now, "http",
                                        f"httpd-{self.node.id}", "redirect",
                                        path=path, to=decision.chosen)
                    yield from self._respond(conn, response)
                    return

            # ---- step 4: fulfillment ------------------------------------------
            yield from self._fulfill(conn, request, is_cgi)
        finally:
            self.connections_active -= 1
            if conn in self._live:
                self._live.remove(conn)

    def _forward(self, conn: Connection, target_id: int):
        """Request forwarding: ship the request over the cluster fabric,
        let the target fulfil it, relay its response back, and answer the
        client ourselves.

        §3.1 rejected this for the real system ("very difficult to
        implement within HTTP") in favour of URL redirection; it lives
        here so the trade-off — no extra client round trip, but the whole
        response crosses the interconnect twice-removed — is measurable
        (experiment X4).
        """
        rec = conn.record
        network = self.fs.network
        t0 = self.sim.now
        # The forward span stays open across the peer's whole handling so
        # the peer's spans (which hang off the inner connection) nest
        # inside it; it closes before _respond opens the send span.
        fwspan = self._span(conn, "forward", "redirection", to=target_id)
        yield self.node.compute(self.params.redirect_ops, category="scheduling")
        inner = Connection(raw_request=conn.raw_request, wan=conn.wan,
                           record=rec, reply=Event(self.sim),
                           redirects_left=0, relay_to=self, span=fwspan)
        peer = self.peers.get(target_id)
        # Ship the request text across the fabric; fall back to local
        # service if the peer cannot take it.
        yield network.transfer(self.node.id, target_id,
                               len(conn.raw_request), tag="fwd-req")
        rec.add_phase("redirection", self.sim.now - t0)
        if peer is None or not peer.try_accept(inner):
            self._span_end(fwspan, fallback=True)
            request = HTTPRequest.parse(conn.raw_request)
            yield from self._fulfill(conn, request,
                                     self.cgi.is_cgi(request.path))
            return
        self.forwards_issued += 1
        rec.redirected = True
        if self.trace is not None:
            self.trace.emit(self.sim.now, "http", f"httpd-{self.node.id}",
                            "forward", to=target_id)
        response: HTTPResponse = yield inner.reply
        self._span_end(fwspan)
        # The relayed response now leaves through *our* NIC.
        yield from self._respond(conn, response, phase="data_transfer")

    def _handle_post(self, conn: Connection, request: HTTPRequest):
        """POST: upload the body, then run the target CGI locally."""
        rec = conn.record
        path = request.path
        if not self.cgi.is_cgi(path):
            yield from self._respond(conn, HTTPResponse(status=501))
            return
        t0 = self.sim.now
        sp = self._span(conn, "upload", "network", bytes=conn.body_bytes)
        if conn.body_bytes > 0:
            # The body flows up the client's WAN path into our NIC.
            yield self.internet.send(self.node.nic, conn.wan,
                                     conn.body_bytes,
                                     tag=f"upload{rec.req_id}")
        rec.add_phase("network", self.sim.now - t0)
        self._span_end(sp)
        yield from self._fulfill(conn, request, is_cgi=True)

    def _fulfill(self, conn: Connection, request: HTTPRequest, is_cgi: bool):
        rec = conn.record
        path = request.path
        t0 = self.sim.now
        sp = self._span(conn, "fulfill", "data_transfer", cgi=is_cgi)
        if is_cgi:
            prog = self.cgi.lookup(path)
            # A CGI may scan a data file before computing.
            if prog.reads_path is not None and self.fs.exists(prog.reads_path):
                yield self.fs.read(prog.reads_path, at_node=self.node.id,
                                   ctx=sp)
            yield self.node.compute(prog.cpu_ops, category="cgi")
            body = prog.output_bytes
        else:
            outcome = yield self.fs.read(path, at_node=self.node.id, ctx=sp)
            body = outcome.nbytes
            rec.source = outcome.source
            if self.heat is not None:
                self.heat.record(path, body)
            if self.trace is not None and self.trace.active:
                self.trace.emit(self.sim.now, "io", f"httpd-{self.node.id}",
                                "file_read", level=TRACE_DETAIL, path=path,
                                source=outcome.source, remote=outcome.remote)
        response = HTTPResponse(status=200, body_bytes=body)
        if request.method == "HEAD":
            response.body_bytes = 0.0
        rec.add_phase("data_transfer", self.sim.now - t0)
        self._span_end(sp, source=rec.source, bytes=body)
        rec.served_by = self.node.id
        # Feed the measured cost back to a learning oracle, if one is
        # installed (AdaptiveOracle; plain Oracle has no observe()).
        observe = getattr(self.broker.oracle, "observe", None)
        if observe is not None and not is_cgi and body > 0:
            observe(path, body, self.params.send_ops_per_byte * body)
        yield from self._respond(conn, response, phase="data_transfer")

    def _respond(self, conn: Connection, response: HTTPResponse,
                 phase: str = "network"):
        """Push the response onto the wire; completes when the last byte
        reaches the client, then wakes the client.

        The TCP stack's packetising/marshalling CPU is charged
        concurrently with the transfer (the stack overlaps with the wire),
        so big responses raise the node's run queue — the "processor load
        caused by the overhead necessary to send bytes out" of §3."""
        if conn.reply.triggered:
            # The connection was reset (node crash) while this handler was
            # mid-pipeline: the client already got its 503; nothing to send.
            return
        t0 = self.sim.now
        sp = self._span(conn, "send", phase, status=response.status,
                        bytes=response.wire_bytes)
        if conn.relay_to is not None:
            # Forwarded request: relay the response across the fabric to
            # the origin node, which owns the client connection.
            wire = self.fs.network.transfer(self.node.id,
                                            conn.relay_to.node.id,
                                            response.wire_bytes,
                                            tag=f"relay{conn.record.req_id}")
        else:
            wire = self.internet.send(self.node.nic, conn.wan,
                                      response.wire_bytes,
                                      tag=f"resp{conn.record.req_id}")
        send_ops = self.params.send_ops_per_byte * response.body_bytes
        if send_ops > 0:
            stack = self.node.compute(send_ops, category="send")
            yield wire & stack
        else:
            yield wire
        self._span_end(sp)
        if conn.reply.triggered:
            # Reset while the response was on the wire: the client already
            # saw the 503 and moved on.
            return
        conn.record.add_phase(phase, self.sim.now - t0)
        self.requests_handled += 1
        conn.reply.succeed(response)

    def __repr__(self) -> str:
        return (f"<HTTPServer node={self.node.id} policy={self.policy.name} "
                f"active={self.connections_active}/{self.backlog}>")
