"""HTTP clients: the left-hand side of Figure 1.

A client resolves the server name through the (round-robin) DNS, opens a
TCP connection, sends the request, and waits for the full response —
following at most one SWEB 302 redirection, "the conceptual model … of a
very short reply going back to the client browser, who then automatically
issues another request to the new server address" (§3.2).

Client profiles carry the WAN path parameters: the paper tested from
within UCSB (low latency, high bandwidth) and from Rutgers on the east
coast ("poor bandwidth and long latency").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from ..cluster.network import WANPath
from ..obs import Span
from ..sim import AnyOf, Event
from .http import HTTPRequest, HTTPResponse
from .metrics import Metrics, RequestRecord
from .server import Connection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.sweb import SWEBCluster

__all__ = ["ClientProfile", "Client", "UCSB_CLIENT", "RUTGERS_CLIENT"]


@dataclass(frozen=True)
class ClientProfile:
    """Where a client sits on the Internet."""

    name: str
    wan: WANPath
    domain: str = "default"   # its local DNS resolver's domain (TTL caching)


#: A browser on the UCSB campus network (the paper's primary client pool).
UCSB_CLIENT = ClientProfile(name="ucsb",
                            wan=WANPath(latency=2e-3, bandwidth=5e6,
                                        name="ucsb-lan"),
                            domain="ucsb.edu")

#: A browser at Rutgers: cross-country latency, thin mid-90s pipe.
RUTGERS_CLIENT = ClientProfile(name="rutgers",
                               wan=WANPath(latency=40e-3, bandwidth=0.3e6,
                                           name="east-coast"),
                               domain="rutgers.edu")


class Client:
    """Issues requests against a :class:`SWEBCluster`."""

    def __init__(self, cluster: "SWEBCluster",
                 profile: ClientProfile = UCSB_CLIENT,
                 metrics: Optional[Metrics] = None,
                 timeout: float = 120.0,
                 resolver=None) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.cluster = cluster
        self.profile = profile
        self.metrics = metrics if metrics is not None else cluster.metrics
        self.timeout = timeout
        #: optional two-level resolver (repro.web.resolver.LocalResolver);
        #: when None, the cluster's fused RoundRobinDNS answers directly.
        self.resolver = resolver

    # -- public API -------------------------------------------------------
    def fetch(self, path: str, method: str = "GET",
              body_bytes: float = 0.0):
        """Spawn one request; the returned Process resolves to its record.

        ``body_bytes`` is the upload size for POST (ignored otherwise).
        """
        return self.cluster.sim.spawn(self._fetch(path, method, body_bytes),
                                      name=f"client.{self.profile.name}")

    # -- tracing helpers ------------------------------------------------------
    def _span(self, parent: Optional[Span], name: str, stage: str,
              **tags) -> Optional[Span]:
        """Open a client-side (node-less) span under ``parent``."""
        tracer = self.cluster.tracer
        if tracer is None:
            return None
        return tracer.start(parent, name, self.cluster.sim.now, stage, **tags)

    def _end(self, span: Optional[Span], **tags) -> None:
        """Close ``span`` at the current sim time (None-safe)."""
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.finish(span, self.cluster.sim.now, **tags)

    # -- the request state machine ------------------------------------------
    def _resolve(self, span: Optional[Span] = None):
        """One DNS exchange; returns the resolved node id.

        ``span`` is the enclosing trace span: the pick and cache-hit
        flag are tagged onto it.  Raises ``LookupError`` when the zone
        is empty (every server deregistered)."""
        sim = self.cluster.sim
        tracer = self.cluster.tracer
        if self.resolver is not None:
            before = self.resolver.cache_hits
            node_id = yield self.resolver.resolve(ctx=span)
            if tracer is not None:
                tracer.annotate(span, node=node_id,
                                cache_hit=self.resolver.cache_hits > before)
        else:
            yield sim.timeout(self.cluster.dns.lookup_latency)
            node_id, from_cache = self.cluster.dns.resolve_ex(
                self.profile.domain)
            if tracer is not None:
                tracer.annotate(span, node=node_id, cache_hit=from_cache)
        return node_id

    def _fetch(self, path: str, method: str = "GET",
               body_bytes: float = 0.0):
        sim = self.cluster.sim
        params = self.cluster.params
        size = (self.cluster.fs.locate(path).size
                if self.cluster.fs.exists(path) else 0.0)
        rec = self.metrics.new_record(path, start=sim.now,
                                      client=self.profile.name, size=size)
        tracer = self.cluster.tracer
        root = (tracer.begin(rec.req_id, path, self.profile.name, sim.now)
                if tracer is not None else None)
        deadline = sim.timeout(self.timeout)
        # Graceful degradation: a refused or reset connection is retried
        # (after exponential backoff, at a freshly-resolved node) instead
        # of dropped.  Bounded, and off entirely in paper-faithful mode.
        retries_left = (params.client_retries
                        if params.graceful_degradation else 0)

        # --- DNS: Figure 1's first exchange ---------------------------------
        t0 = sim.now
        dns_span = self._span(root, "dns", "network")
        try:
            node_id = yield from self._resolve(dns_span)
        except LookupError:
            self._end(dns_span, error="empty_zone")
            self._end(root, outcome="dropped", reason="dns")
            self.metrics.drop(rec, sim.now, reason="dns")
            return rec
        self._end(dns_span)
        rec.dns_node = node_id
        rec.add_phase("network", sim.now - t0)
        if self.cluster.trace is not None:
            self.cluster.trace.emit(sim.now, "http",
                                    f"client-{rec.req_id}", "dns_lookup",
                                    node=node_id)

        request_text = HTTPRequest(
            method=method, path=path,
            host=f"sweb{node_id}.cs.ucsb.edu",
            headers={"User-Agent": "Mosaic/2.6 (X11; SunOS)"}).format()

        hop = 0
        while True:
            server = self.cluster.servers[node_id]
            phase = "network" if hop == 0 else "redirection"

            # --- TCP connect: one WAN round trip + server setup ----------
            t1 = sim.now
            # The connect span ends at accept time: from there on the
            # server's own spans (also children of the root) take over,
            # overlapping the client's final request-shipping WAN leg.
            cspan = self._span(
                root, "connect" if hop == 0 else "redirect_connect",
                phase, node=None, target=node_id)
            yield sim.timeout(2 * self.profile.wan.latency
                              + self.cluster.params.connect_time)
            conn = self._connection(request_text, rec, hop, body_bytes,
                                    span=root)
            if not server.try_accept(conn):
                self._end(cspan, refused=True)
                rec.add_phase(phase, sim.now - t1)
                if retries_left > 0:
                    retries_left -= 1
                    try:
                        node_id = yield from self._retry(rec, node_id,
                                                         "refused", root)
                    except LookupError:
                        self._end(root, outcome="dropped", reason="dns")
                        self.metrics.drop(rec, sim.now, reason="dns")
                        return rec
                    continue
                self._end(root, outcome="dropped", reason="refused")
                self.metrics.drop(rec, sim.now, reason="refused")
                if self.cluster.trace is not None:
                    self.cluster.trace.emit(sim.now, "http",
                                            f"client-{rec.req_id}",
                                            "refused", node=node_id)
                return rec
            self._end(cspan)
            # --- ship the request line + headers (small, one way) ---------
            yield sim.timeout(self.profile.wan.latency)
            rec.add_phase(phase, sim.now - t1)

            # --- wait for the full response, bounded by the deadline ------
            yield AnyOf(sim, [conn.reply, deadline])
            if not conn.reply.triggered:
                self._end(root, outcome="dropped", reason="timeout")
                self.metrics.drop(rec, sim.now, reason="timeout")
                if self.cluster.trace is not None:
                    self.cluster.trace.emit(sim.now, "http",
                                            f"client-{rec.req_id}",
                                            "timeout", node=node_id)
                return rec
            response: HTTPResponse = conn.reply.value

            if response.status == 503:
                # The connection was reset mid-flight (the serving node
                # crashed — including a redirect target that died between
                # the 302 and our second connection).
                if retries_left > 0:
                    retries_left -= 1
                    try:
                        node_id = yield from self._retry(rec, node_id,
                                                         "reset", root)
                    except LookupError:
                        self._end(root, outcome="dropped", reason="dns")
                        self.metrics.drop(rec, sim.now, reason="dns")
                        return rec
                    continue
                self._end(root, outcome="dropped", reason="reset")
                self.metrics.drop(rec, sim.now, reason="reset")
                if self.cluster.trace is not None:
                    self.cluster.trace.emit(sim.now, "http",
                                            f"client-{rec.req_id}",
                                            "reset", node=node_id)
                return rec

            if response.is_redirect and hop == 0:
                # Follow the 302 exactly once (the SWEB rule).
                rec.redirected = True
                node_id = int(response.headers["X-SWEB-Node"])
                if self.cluster.trace is not None:
                    self.cluster.trace.emit(sim.now, "http",
                                            f"client-{rec.req_id}",
                                            "follow_redirect", to=node_id)
                hop = 1
                continue
            self._end(root, outcome="ok", status=response.status,
                      served_by=rec.served_by)
            self.metrics.finish(rec, sim.now, response.status)
            if self.cluster.trace is not None:
                self.cluster.trace.emit(sim.now, "http",
                                        f"client-{rec.req_id}", "complete",
                                        status=response.status,
                                        node=node_id)
            return rec

    def _retry(self, rec: RequestRecord, failed_node: int, reason: str,
               root: Optional[Span] = None):
        """Back off exponentially, re-resolve DNS, and report the new node.

        The delay is ``retry_backoff * 2^k`` for the k-th retry of this
        request — bounded because the retry count itself is bounded by
        ``client_retries``.  Raises ``LookupError`` if the zone emptied.
        """
        sim = self.cluster.sim
        delay = self.cluster.params.retry_backoff * (2 ** rec.retries)
        rec.retries += 1
        self.metrics.counters.incr("retries")
        if self.cluster.trace is not None:
            self.cluster.trace.emit(sim.now, "http", f"client-{rec.req_id}",
                                    "retry", reason=reason, node=failed_node,
                                    backoff=round(delay, 3))
        t0 = sim.now
        span = self._span(root, "retry", "network", reason=reason,
                          failed_node=failed_node, backoff=round(delay, 6))
        if delay > 0:
            yield sim.timeout(delay)
        try:
            node_id = yield from self._resolve(span)
        finally:
            self._end(span)
        rec.add_phase("network", sim.now - t0)
        return node_id

    def _connection(self, request_text: str, rec: RequestRecord,
                    hop: int, body_bytes: float = 0.0,
                    span: Optional[Span] = None) -> Connection:
        return Connection(
            raw_request=request_text,
            wan=self.profile.wan,
            record=rec,
            reply=Event(self.cluster.sim),
            redirects_left=max(0, self.cluster.params.max_redirects - hop),
            body_bytes=body_bytes,
            span=span,
        )
