"""Minimal HTML model: generation and link/image extraction.

§2: "the HTML language allows the information to be presented in a
platform-independent but still well-formatted manner."  The workload
model needs just enough HTML to be honest about it: pages are generated
as real markup, and the browser model *parses* that markup to discover
the inline images it must fetch — the paper's "number of simultaneous
connections … one for each graphics image on the page".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["HTMLPage", "render_page", "extract_images", "extract_links",
           "page_size_bytes"]

_IMG_RE = re.compile(r"<img\b[^>]*\bsrc=\"([^\"]+)\"", re.IGNORECASE)
_A_RE = re.compile(r"<a\b[^>]*\bhref=\"([^\"]+)\"", re.IGNORECASE)


@dataclass
class HTMLPage:
    """A generated HTML document."""

    path: str
    title: str
    images: list[str] = field(default_factory=list)
    links: list[str] = field(default_factory=list)
    text_bytes: int = 2048   # body prose, as padding

    def render(self) -> str:
        return render_page(self.title, self.images, self.links,
                           self.text_bytes)

    @property
    def size(self) -> int:
        return page_size_bytes(self)


def render_page(title: str, images: Iterable[str] = (),
                links: Iterable[str] = (), text_bytes: int = 2048) -> str:
    """Produce real 1996-vintage markup for a page."""
    if text_bytes < 0:
        raise ValueError(f"negative text_bytes: {text_bytes}")
    parts = [
        "<!DOCTYPE HTML PUBLIC \"-//IETF//DTD HTML 2.0//EN\">",
        "<html><head>",
        f"<title>{title}</title>",
        "</head><body>",
        f"<h1>{title}</h1>",
    ]
    for src in images:
        parts.append(f"<p><img src=\"{src}\" alt=\"map\"></p>")
    for href in links:
        parts.append(f"<p><a href=\"{href}\">{href}</a></p>")
    filler = "The Alexandria Digital Library provides spatially-indexed " \
             "access to maps and imagery. "
    body = (filler * (text_bytes // len(filler) + 1))[:text_bytes]
    parts.append(f"<p>{body}</p>")
    parts.append("</body></html>")
    return "\n".join(parts)


def extract_images(html: str) -> list[str]:
    """The image URLs a browser would fetch after loading this page."""
    return _IMG_RE.findall(html)


def extract_links(html: str) -> list[str]:
    """The anchor targets a user could navigate to next."""
    return _A_RE.findall(html)


def page_size_bytes(page: HTMLPage) -> int:
    """Wire size of the rendered page."""
    return len(page.render().encode("utf-8"))
