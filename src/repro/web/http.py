"""HTTP message model: the protocol layer of §2.

Requests and responses are real text (formatted and parsed character by
character, as NCSA httpd would), because the paper charges measurable CPU
time to "parsing the HTML commands" — 70 ms of preprocessing per request
and 4.4 % of the CPU at 16 rps.  Bodies are carried as byte *counts*, not
payloads: the simulator moves sizes, not content.

SWEB handles GET (and HEAD); POST and friends return 501, exactly as the
paper's footnote 1 scopes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "HTTPResponse",
    "STATUS_REASONS",
    "parse_url",
    "redirect_response",
]

#: Response codes used by SWEB (the paper's §2 examples plus redirection).
STATUS_REASONS: dict[int, str] = {
    200: "OK",
    302: "Moved Temporarily",       # URL redirection, the SWEB mechanism
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    501: "Not Implemented",         # POST etc. (paper footnote 1)
    503: "Service Unavailable",
}

#: Methods SWEB fulfils; everything else is rejected with 501.
SUPPORTED_METHODS = ("GET", "HEAD")
KNOWN_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE")


class HTTPError(ValueError):
    """Malformed request or response text."""


def parse_url(url: str) -> tuple[str, int, str]:
    """Split ``http://host[:port]/path`` into (host, port, path).

    A bare path (``/index.html``) resolves to host ``""`` port 80.
    """
    if url.startswith("http://"):
        rest = url[len("http://"):]
        slash = rest.find("/")
        if slash < 0:
            authority, path = rest, "/"
        else:
            authority, path = rest[:slash], rest[slash:]
        if ":" in authority:
            host, _, port_text = authority.partition(":")
            if not port_text.isdigit():
                raise HTTPError(f"bad port in URL: {url!r}")
            port = int(port_text)
        else:
            host, port = authority, 80
        if not host:
            raise HTTPError(f"empty host in URL: {url!r}")
        return host, port, path
    if url.startswith("/"):
        return "", 80, url
    raise HTTPError(f"unsupported URL: {url!r}")


@dataclass
class HTTPRequest:
    """One parsed HTTP/1.0 request."""

    method: str
    path: str
    host: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    version: str = "HTTP/1.0"

    def format(self) -> str:
        """Serialise to wire text (what travels to the server)."""
        lines = [f"{self.method} {self.path} {self.version}"]
        if self.host and "Host" not in self.headers:
            lines.append(f"Host: {self.host}")
        for key, value in self.headers.items():
            lines.append(f"{key}: {value}")
        return "\r\n".join(lines) + "\r\n\r\n"

    @property
    def wire_bytes(self) -> int:
        """Size of the request on the wire."""
        return len(self.format().encode("utf-8"))

    @staticmethod
    def parse(text: str) -> "HTTPRequest":
        """Parse wire text; raises :class:`HTTPError` on malformed input."""
        head, _, _body = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        if not lines or not lines[0].strip():
            raise HTTPError("empty request")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise HTTPError(f"malformed request line: {lines[0]!r}")
        method, target, version = parts
        if method not in KNOWN_METHODS:
            raise HTTPError(f"unknown method: {method!r}")
        if not version.startswith("HTTP/"):
            raise HTTPError(f"bad version: {version!r}")
        host, _port, path = parse_url(target) if target.startswith("http://") \
            else ("", 80, target)
        if not path.startswith("/"):
            raise HTTPError(f"bad request target: {target!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise HTTPError(f"malformed header: {line!r}")
            key, _, value = line.partition(":")
            headers[key.strip()] = value.strip()
        host = headers.get("Host", host)
        return HTTPRequest(method=method, path=path, host=host,
                           headers=headers)

    @property
    def is_supported(self) -> bool:
        return self.method in SUPPORTED_METHODS


@dataclass
class HTTPResponse:
    """One HTTP/1.0 response.  ``body_bytes`` is a size, not a payload."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body_bytes: float = 0.0
    version: str = "HTTP/1.0"

    @property
    def reason(self) -> str:
        return STATUS_REASONS.get(self.status, "Unknown")

    @property
    def is_redirect(self) -> bool:
        return self.status == 302

    @property
    def location(self) -> Optional[str]:
        return self.headers.get("Location")

    def format_headers(self) -> str:
        lines = [f"{self.version} {self.status} {self.reason}"]
        headers = dict(self.headers)
        headers.setdefault("Server", "SWEB/1.0 (NCSA/1.3 derivative)")
        if self.body_bytes:
            headers.setdefault("Content-Length", str(int(self.body_bytes)))
        for key, value in headers.items():
            lines.append(f"{key}: {value}")
        return "\r\n".join(lines) + "\r\n\r\n"

    @property
    def wire_bytes(self) -> float:
        """Total bytes on the wire: header text plus the body size."""
        return len(self.format_headers().encode("utf-8")) + self.body_bytes

    @staticmethod
    def parse_headers(text: str) -> "HTTPResponse":
        head, _, _ = text.partition("\r\n\r\n")
        lines = head.split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise HTTPError(f"malformed status line: {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HTTPError(f"bad status code: {parts[1]!r}") from exc
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise HTTPError(f"malformed header: {line!r}")
            key, _, value = line.partition(":")
            headers[key.strip()] = value.strip()
        body = float(headers.get("Content-Length", 0))
        return HTTPResponse(status=status, headers=headers, body_bytes=body,
                            version=parts[0])


def redirect_response(target_host: str, path: str) -> HTTPResponse:
    """The 302 reply SWEB uses to move a request to another node.

    "URL redirection gives us excellent compatibility with current
    browsers and near-invisibility to users" (§3.1).
    """
    return HTTPResponse(status=302,
                        headers={"Location": f"http://{target_host}{path}"})
