"""Per-request records and aggregate metrics.

The paper reports: response time ("from when a request is initiated until
all the requested information arrives at the client"), drop rate, maximum
sustained rps, the Table 5 per-phase cost breakdown, and the §4.3
server-side CPU shares.  Everything here exists to produce those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import LATENCY_BUCKETS, MetricsRegistry, percentile
from ..sim import PhaseAccumulator, Summary, Tally

__all__ = ["RequestRecord", "Metrics", "PHASE_NAMES"]

#: Canonical phase keys, matching Table 5's row labels.
PHASE_NAMES = (
    "preprocessing",    # fork + parsing HTTP commands + pathname/permissions
    "analysis",         # SWEB: broker cost estimation
    "redirection",      # SWEB: generating the 302 + the extra client trip
    "data_transfer",    # disk/cache/NFS read + pushing bytes to the client
    "network",          # DNS, connect, WAN latencies
)


@dataclass
class RequestRecord:
    """The life of one HTTP request, as the client experiences it."""

    req_id: int
    path: str
    start: float
    client: str = "local"
    size: float = 0.0
    end: Optional[float] = None
    status: Optional[int] = None
    ok: bool = False
    dropped: bool = False
    drop_reason: Optional[str] = None   # "refused" | "timeout" | "dns" | "reset"
    dns_node: Optional[int] = None      # where the DNS rotation sent it
    served_by: Optional[int] = None     # node that fulfilled it
    redirected: bool = False
    #: connection retries performed (graceful degradation only)
    retries: int = 0
    #: how the serving node produced the bytes: "cache" | "disk" | None
    #: (errors, drops and CGI output)
    source: Optional[str] = None
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def response_time(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def add_phase(self, phase: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative phase duration {phase!r}: {duration}")
        self.phases[phase] = self.phases.get(phase, 0.0) + duration


class Metrics:
    """Aggregates request records into the paper's reported quantities."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.records: list[RequestRecord] = []
        #: the run-wide metrics registry this aggregator publishes into;
        #: a private one is created for standalone Metrics() use
        #: (SWEBCluster always passes the cluster's shared registry)
        self.registry = registry if registry is not None else MetricsRegistry()
        #: request-lifecycle counters, registered as the ``http.*``
        #: namespace of :attr:`registry` (same incr/[]/as_dict API the
        #: old ad-hoc ``sim.stats.Counter`` had)
        self.counters = self.registry.counters("http")
        #: completed-request latency histogram (fixed buckets, so p50 /
        #: p95 / p99 are available without rescanning the records)
        self.response_histogram = self.registry.histogram(
            "http.response_time_s", bounds=LATENCY_BUCKETS)
        self._next_id = 0
        #: node id -> page-cache counters, installed post-run by
        #: :func:`repro.experiments.runner.run_scenario` via
        #: :meth:`record_page_cache` (the caches live in the cluster
        #: layer; metrics only aggregates what it is handed)
        self.page_cache: dict[int, dict[str, float]] = {}

    # -- record lifecycle -------------------------------------------------
    def new_record(self, path: str, start: float, client: str = "local",
                   size: float = 0.0) -> RequestRecord:
        rec = RequestRecord(req_id=self._next_id, path=path, start=start,
                            client=client, size=size)
        self._next_id += 1
        self.records.append(rec)
        self.counters.incr("requests")
        return rec

    def finish(self, rec: RequestRecord, end: float, status: int) -> None:
        rec.end = end
        rec.status = status
        rec.ok = status == 200
        self.counters.incr(f"status_{status}")
        if rec.ok:
            self.counters.incr("completed")
            response_time = rec.response_time
            if response_time is not None:
                self.response_histogram.record(response_time)
        if rec.redirected:
            self.counters.incr("redirected")

    def drop(self, rec: RequestRecord, end: float, reason: str) -> None:
        rec.end = end
        rec.dropped = True
        rec.drop_reason = reason
        self.counters.incr("dropped")
        self.counters.incr(f"dropped_{reason}")

    # -- aggregates -------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return self.counters["completed"]

    @property
    def dropped(self) -> int:
        return self.counters["dropped"]

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.total if self.total else 0.0

    def response_times(self, only_ok: bool = True) -> Tally:
        tally = Tally("response_time")
        for rec in self.records:
            if rec.dropped or rec.end is None:
                continue
            if only_ok and not rec.ok:
                continue
            tally.record(rec.response_time)
        return tally

    def response_summary(self) -> Summary:
        return self.response_times().summary()

    def mean_response_time(self) -> float:
        return self.response_times().mean

    def response_percentile(self, q: float, only_ok: bool = True) -> float:
        """Exact response-time percentile over completed requests.

        Routes through the shared :mod:`repro.obs.percentiles` helper —
        the same math as :class:`Summary` — so reports quoting "p95"
        can never disagree with the summary table (``nan`` when no
        requests completed)."""
        return percentile(self.response_times(only_ok=only_ok).values, q)

    def throughput(self, duration: float) -> float:
        """Completed requests per second over ``duration``."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        return self.completed / duration

    def phase_breakdown(self, only_ok: bool = True) -> PhaseAccumulator:
        """Average per-phase costs across requests (Table 5)."""
        acc = PhaseAccumulator()
        for rec in self.records:
            if rec.dropped or (only_ok and not rec.ok):
                continue
            for phase, duration in rec.phases.items():
                acc.record(phase, duration)
        return acc

    # -- page cache (docs/CACHING.md) -------------------------------------
    def record_page_cache(self, node: int, hits: float, misses: float,
                          evictions: float, used_bytes: float = 0.0,
                          capacity_bytes: float = 0.0) -> None:
        """Install one node's page-cache counters for reporting."""
        self.page_cache[node] = {
            "hits": float(hits), "misses": float(misses),
            "evictions": float(evictions), "used_bytes": float(used_bytes),
            "capacity_bytes": float(capacity_bytes)}

    def page_cache_totals(self) -> dict[str, float]:
        """Cluster-wide hits/misses/evictions summed over nodes."""
        totals = {"hits": 0.0, "misses": 0.0, "evictions": 0.0}
        for stats in self.page_cache.values():
            for key in totals:
                totals[key] += stats.get(key, 0.0)
        return totals

    def page_cache_hit_rate(self) -> float:
        """Aggregate page-cache hit rate (0.0 when nothing recorded)."""
        totals = self.page_cache_totals()
        lookups = totals["hits"] + totals["misses"]
        return totals["hits"] / lookups if lookups else 0.0

    def served_from_cache(self) -> int:
        """Completed requests whose bytes came from RAM (record.source)."""
        return sum(1 for rec in self.records
                   if rec.ok and rec.source == "cache")

    def served_by_histogram(self) -> dict[int, int]:
        """How many completed requests each node fulfilled."""
        hist: dict[int, int] = {}
        for rec in self.records:
            if rec.ok and rec.served_by is not None:
                hist[rec.served_by] = hist.get(rec.served_by, 0) + 1
        return hist

    def __repr__(self) -> str:
        return (f"<Metrics total={self.total} completed={self.completed} "
                f"dropped={self.dropped}>")
