"""Round-robin DNS, the first-stage request distributor (§3.1, Figure 2).

"User requests are first evenly routed to SWEB processors via the DNS
rotation … The major advantages of this technique are simplicity, ease of
implementation, and reliability."  The paper also names its weaknesses,
both of which this model exposes:

* the rotation "assigns the requests without consulting dynamically-
  changing system load information";
* **DNS caching**: a local resolver caches the name→IP mapping for its
  TTL, so "all requests for a period of time from a DNS server's domain
  will go to a particular IP address" — modelled with a per-domain cache.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator

__all__ = ["RoundRobinDNS"]


class RoundRobinDNS:
    """Rotating name server over the cluster's node addresses."""

    def __init__(self, sim: Simulator, addresses: list[int],
                 ttl: float = 0.0, lookup_latency: float = 1e-3) -> None:
        if not addresses:
            raise ValueError("DNS needs at least one address")
        if ttl < 0:
            raise ValueError(f"negative TTL: {ttl}")
        self.sim = sim
        self.addresses = list(addresses)
        self.ttl = float(ttl)
        self.lookup_latency = float(lookup_latency)
        self._cursor = 0
        # domain -> (address, expiry time): the *client-side* resolver cache.
        self._cache: dict[str, tuple[int, float]] = {}
        self.queries = 0
        self.cache_hits = 0

    # -- zone management --------------------------------------------------
    def register(self, address: int) -> None:
        """Add a node to the rotation (a machine joining the pool)."""
        if address not in self.addresses:
            self.addresses.append(address)

    def deregister(self, address: int) -> None:
        """Drop a node from the rotation (a machine leaving the pool).

        Cached mappings keep pointing at it until they expire — the
        staleness problem the paper notes DNS cannot avoid.
        """
        try:
            self.addresses.remove(address)
        except ValueError:
            pass

    # -- resolution -----------------------------------------------------------
    def resolve(self, domain: str = "default") -> int:
        """Resolve the server name as seen from ``domain``'s local resolver."""
        return self.resolve_ex(domain)[0]

    def resolve_ex(self, domain: str = "default") -> tuple[int, bool]:
        """Like :meth:`resolve`, but also report whether the answer came
        from ``domain``'s cache — ``(address, from_cache)``.  Tracing
        uses the flag to tag DNS spans without re-deriving cache state."""
        self.queries += 1
        if self.ttl > 0:
            cached = self._cache.get(domain)
            if cached is not None and cached[1] > self.sim.now:
                self.cache_hits += 1
                return cached[0], True
        if not self.addresses:
            raise LookupError("no addresses registered")
        address = self.addresses[self._cursor % len(self.addresses)]
        self._cursor += 1
        if self.ttl > 0:
            self._cache[domain] = (address, self.sim.now + self.ttl)
        return address, False

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    def __repr__(self) -> str:
        return (f"<RoundRobinDNS addresses={self.addresses} ttl={self.ttl} "
                f"hit_rate={self.cache_hit_rate:.2f}>")
