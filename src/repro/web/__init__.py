"""WWW substrate: HTTP messages, DNS, CGI, clients, and the httpd."""

from .cgi import CGIProgram, CGIRegistry
from .browser import BrowserSession, PageLoad
from .client import Client, ClientProfile, RUTGERS_CLIENT, UCSB_CLIENT
from .dns import RoundRobinDNS
from .html import (
    HTMLPage,
    extract_images,
    extract_links,
    render_page,
)
from .http import (
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    STATUS_REASONS,
    parse_url,
    redirect_response,
)
from .metrics import Metrics, PHASE_NAMES, RequestRecord
from .resolver import AuthoritativeDNS, LocalResolver
from .server import Connection, HTTPServer

__all__ = [
    "AuthoritativeDNS",
    "BrowserSession",
    "CGIProgram",
    "CGIRegistry",
    "Client",
    "ClientProfile",
    "Connection",
    "HTMLPage",
    "HTTPError",
    "HTTPRequest",
    "HTTPResponse",
    "HTTPServer",
    "LocalResolver",
    "Metrics",
    "PHASE_NAMES",
    "PageLoad",
    "RUTGERS_CLIENT",
    "RequestRecord",
    "RoundRobinDNS",
    "STATUS_REASONS",
    "UCSB_CLIENT",
    "extract_images",
    "extract_links",
    "parse_url",
    "redirect_response",
    "render_page",
]
