"""Unit tests for HTTP messages (repro.web.http)."""

import pytest

from repro.web import (
    HTTPError,
    HTTPRequest,
    HTTPResponse,
    parse_url,
    redirect_response,
)


# ---------------------------------------------------------------- parse_url
def test_parse_url_full():
    assert parse_url("http://sweb0.cs.ucsb.edu/maps/x.gif") == \
        ("sweb0.cs.ucsb.edu", 80, "/maps/x.gif")


def test_parse_url_with_port():
    assert parse_url("http://host:8080/a") == ("host", 8080, "/a")


def test_parse_url_bare_path():
    assert parse_url("/index.html") == ("", 80, "/index.html")


def test_parse_url_no_path():
    assert parse_url("http://host") == ("host", 80, "/")


def test_parse_url_errors():
    with pytest.raises(HTTPError):
        parse_url("ftp://host/x")
    with pytest.raises(HTTPError):
        parse_url("http://host:bad/x")
    with pytest.raises(HTTPError):
        parse_url("http:///x")


# ------------------------------------------------------------------ request
def test_request_format_and_parse_roundtrip():
    req = HTTPRequest(method="GET", path="/docs/a.html",
                      host="sweb0.cs.ucsb.edu",
                      headers={"User-Agent": "Mosaic/2.6"})
    parsed = HTTPRequest.parse(req.format())
    assert parsed.method == "GET"
    assert parsed.path == "/docs/a.html"
    assert parsed.host == "sweb0.cs.ucsb.edu"
    assert parsed.headers["User-Agent"] == "Mosaic/2.6"


def test_request_parse_absolute_url_target():
    text = "GET http://h.example/a/b HTTP/1.0\r\n\r\n"
    parsed = HTTPRequest.parse(text)
    assert parsed.path == "/a/b"
    assert parsed.host == "h.example"


def test_request_wire_bytes_positive():
    req = HTTPRequest(method="GET", path="/x")
    assert req.wire_bytes == len(req.format().encode())
    assert req.wire_bytes > 10


def test_request_parse_rejects_malformed():
    for bad in ("", "GET\r\n\r\n", "GET /x\r\n\r\n", "FROB /x HTTP/1.0\r\n\r\n",
                "GET /x FTP/1.0\r\n\r\n", "GET x HTTP/1.0\r\n\r\n",
                "GET /x HTTP/1.0\r\nNoColonHere\r\n\r\n"):
        with pytest.raises(HTTPError):
            HTTPRequest.parse(bad)


def test_post_is_parsed_but_unsupported():
    parsed = HTTPRequest.parse("POST /form HTTP/1.0\r\n\r\n")
    assert parsed.method == "POST"
    assert not parsed.is_supported


def test_head_is_supported():
    assert HTTPRequest.parse("HEAD /x HTTP/1.0\r\n\r\n").is_supported


# ------------------------------------------------------------------ response
def test_response_reason_lookup():
    assert HTTPResponse(status=200).reason == "OK"
    assert HTTPResponse(status=404).reason == "Not Found"
    assert HTTPResponse(status=999).reason == "Unknown"


def test_response_headers_roundtrip():
    resp = HTTPResponse(status=200, body_bytes=1.5e6)
    parsed = HTTPResponse.parse_headers(resp.format_headers())
    assert parsed.status == 200
    assert parsed.body_bytes == pytest.approx(1.5e6)


def test_response_wire_bytes_includes_headers_and_body():
    resp = HTTPResponse(status=200, body_bytes=1000.0)
    assert resp.wire_bytes > 1000.0


def test_redirect_response_shape():
    resp = redirect_response("sweb3.cs.ucsb.edu", "/maps/x.gif")
    assert resp.is_redirect
    assert resp.location == "http://sweb3.cs.ucsb.edu/maps/x.gif"
    assert resp.body_bytes == 0.0


def test_response_parse_rejects_malformed():
    with pytest.raises(HTTPError):
        HTTPResponse.parse_headers("BANANA\r\n\r\n")
    with pytest.raises(HTTPError):
        HTTPResponse.parse_headers("HTTP/1.0 abc Huh\r\n\r\n")
