"""Additional topology tests: custom clusters and build validation."""

import pytest

from repro.cluster import NodeSpec, custom_cluster, meiko_cs2, sun_now
from repro.cluster.topology import ClusterSpec
from repro.sim import Simulator


def test_custom_cluster_heterogeneous_hardware():
    spec = custom_cluster(
        "lab",
        [NodeSpec(cpu_speed=50e6, disk_bandwidth=8e6),
         NodeSpec(cpu_speed=10e6, disk_bandwidth=2e6)],
        network_kind="bus", network_bandwidth=1.25e6, nfs_penalty=0.5)
    built = spec.build(Simulator())
    assert built.nodes[0].cpu_speed == 50e6
    assert built.nodes[1].disk.bandwidth == 2e6
    assert built.fs.remote_penalty == 0.5


def test_unknown_network_kind_rejected():
    spec = ClusterSpec(name="x", nodes=(NodeSpec(),), network_kind="torus")
    with pytest.raises(ValueError):
        spec.build(Simulator())


def test_shared_nic_requires_bus():
    spec = ClusterSpec(name="x", nodes=(NodeSpec(),),
                       network_kind="fat-tree", shared_nic_is_bus=True)
    with pytest.raises(ValueError):
        spec.build(Simulator())


def test_with_nodes_preserves_hardware():
    spec = sun_now(4).with_nodes(2)
    assert spec.num_nodes == 2
    assert spec.nodes[0].cpu_speed == sun_now().nodes[0].cpu_speed
    assert spec.network_kind == "bus"


def test_meiko_and_now_have_paper_constants():
    meiko = meiko_cs2()
    assert meiko.nodes[0].disk_bandwidth == pytest.approx(5e6)    # b1
    assert meiko.network_bandwidth == pytest.approx(40e6)         # fat-tree
    assert meiko.nfs_penalty == pytest.approx(0.10)
    now = sun_now()
    assert now.network_bandwidth == pytest.approx(1.25e6)         # 10 Mb/s
    assert now.nfs_penalty == pytest.approx(0.60)
    assert now.nodes[0].ram_bytes == pytest.approx(16e6)


def test_built_cluster_alive_nodes():
    built = meiko_cs2(3).build(Simulator())
    assert len(built.alive_nodes()) == 3
    built.nodes[1].leave()
    assert [n.id for n in built.alive_nodes()] == [0, 2]
    assert built.num_nodes == 3
