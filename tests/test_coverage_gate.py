"""Tests for the obs coverage gate (scripts/coverage_gate.py).

Runs the stdlib settrace fallback in-process and enforces the 90 %
floor on ``repro.obs`` — so the floor holds in tier-1 even when
pytest-cov is not installed (the container has no network access).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "coverage_gate.py"

spec = importlib.util.spec_from_file_location("coverage_gate", SCRIPT)
coverage_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(coverage_gate)


def test_obs_files_enumerates_the_package():
    files = coverage_gate.obs_files()
    names = {p.name for p in files}
    assert {"__init__.py", "spans.py", "registry.py", "export.py",
            "percentiles.py"} <= names
    assert all(p.suffix == ".py" for p in files)


def test_statement_lines_maps_compound_headers(tmp_path):
    src = tmp_path / "snippet.py"
    src.write_text(
        "x = (1 +\n"
        "     2)\n"
        "if x:\n"
        "    y = 0\n"
    )
    stmts = coverage_gate.statement_lines(src)
    # multi-line simple statement spans its full range...
    assert stmts[1] == 2
    # ...compound statements count their header line only
    assert stmts[3] == 3
    assert stmts[4] == 4


def test_runnable_tests_skips_fixtures_and_marked_callables():
    import types

    module = types.ModuleType("m")
    module.test_plain = lambda: None
    module.test_fixture = lambda tmp_path: None
    marked = lambda: None
    marked.__coverage_gate_skip__ = True
    module.test_marked = marked
    module.helper = lambda: None
    names = [name for name, _ in coverage_gate._runnable_tests(module)]
    assert names == ["test_plain"]


def test_fallback_measurement_meets_the_floor():
    """The gate itself: repro.obs >= 90 % covered by tests/test_obs_*."""
    report = coverage_gate.measure_fallback()
    if report is None:
        pytest.skip("a trace function is already installed "
                    "(debugger or pytest-cov run)")
    assert set(report) > {"TOTAL"}
    total = report.pop("TOTAL")
    for rel, pct in report.items():
        assert 0.0 <= pct <= 100.0, rel
    assert total >= coverage_gate.FLOOR, (
        f"repro.obs statement coverage {total:.1f}% fell below the "
        f"{coverage_gate.FLOOR:.0f}% floor — add tests to tests/test_obs_*")


test_fallback_measurement_meets_the_floor.__coverage_gate_skip__ = True


def test_main_fallback_exit_code(capsys):
    if sys.gettrace() is not None:
        pytest.skip("a trace function is already installed")
    rc = coverage_gate.main(["--fallback"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "TOTAL" in out and "OK" in out


test_main_fallback_exit_code.__coverage_gate_skip__ = True
