"""Tests for the HTML model and the browser-session workload."""

import pytest

from repro import SWEBCluster, meiko_cs2
from repro.web import BrowserSession, HTMLPage, extract_images, extract_links, render_page
from repro.workload import html_site_corpus


# --------------------------------------------------------------------- HTML
def test_render_page_contains_images_and_links():
    html = render_page("Sheet 1", images=["/a.gif", "/b.gif"],
                       links=["/next.html"], text_bytes=100)
    assert "<title>Sheet 1</title>" in html
    assert '<img src="/a.gif"' in html
    assert '<a href="/next.html">' in html


def test_extract_images_roundtrip():
    html = render_page("t", images=["/x.gif", "/y.gif", "/z.gif"])
    assert extract_images(html) == ["/x.gif", "/y.gif", "/z.gif"]


def test_extract_links_roundtrip():
    html = render_page("t", links=["/p1.html", "/p2.html"])
    assert extract_links(html) == ["/p1.html", "/p2.html"]


def test_extract_handles_arbitrary_attribute_order():
    html = '<IMG alt="m" SRC="/weird.gif">'
    assert extract_images(html) == ["/weird.gif"]


def test_page_size_scales_with_text():
    small = HTMLPage(path="/p", title="t", text_bytes=100)
    big = HTMLPage(path="/p", title="t", text_bytes=10_000)
    assert big.size > small.size + 9000


def test_render_page_rejects_negative_text():
    with pytest.raises(ValueError):
        render_page("t", text_bytes=-1)


# -------------------------------------------------------------- site corpus
def test_html_site_corpus_structure():
    corpus = html_site_corpus(5, n_nodes=3, images_per_page=2)
    pages = [d for d in corpus.documents if d.path.endswith(".html")]
    images = [d for d in corpus.documents if d.path.endswith(".gif")]
    assert len(pages) == 5 and len(images) == 10
    assert set(corpus.markup) == {p.path for p in pages}
    # Page sizes are the real markup sizes.
    for page in pages:
        assert page.size == len(corpus.markup[page.path].encode())


def test_html_site_corpus_markup_references_real_images():
    corpus = html_site_corpus(3, n_nodes=2, images_per_page=3)
    paths = set(corpus.paths)
    for markup in corpus.markup.values():
        for src in extract_images(markup):
            assert src in paths


def test_html_site_corpus_validation():
    with pytest.raises(ValueError):
        html_site_corpus(0, 1)
    with pytest.raises(ValueError):
        html_site_corpus(1, 1, images_per_page=-1)


# ---------------------------------------------------------- browser session
def make_site_cluster(**kw):
    cluster = SWEBCluster(meiko_cs2(3), policy="sweb", seed=5, **kw)
    corpus = html_site_corpus(4, n_nodes=3, images_per_page=3,
                              image_size=50e3, seed=2)
    corpus.install(cluster)
    return cluster, corpus


def test_browser_loads_page_and_all_images():
    cluster, corpus = make_site_cluster()
    browser = BrowserSession(cluster)
    proc = browser.open("/site/page0000.html")
    load = cluster.run(until=proc)
    assert load.page_ok
    assert load.images_requested == 3
    assert load.images_ok == 3
    assert load.complete
    assert load.load_time > 0
    # 1 page + 3 images = 4 requests in the metrics.
    assert cluster.metrics.total == 4


def test_browser_respects_parallel_connection_cap():
    cluster, _ = make_site_cluster()
    browser = BrowserSession(cluster, max_parallel_images=2)
    proc = browser.open("/site/page0001.html")
    load = cluster.run(until=proc)
    assert load.complete
    # Image fetches happened in two waves: first batch finished strictly
    # before the second started.
    image_recs = [r for r in cluster.metrics.records
                  if r.path.endswith(".gif")]
    starts = sorted(r.start for r in image_recs)
    assert starts[2] > starts[0]


def test_browser_missing_page_reports_failure():
    cluster, _ = make_site_cluster()
    browser = BrowserSession(cluster)
    proc = browser.open("/site/no-such-page.html")
    load = cluster.run(until=proc)
    assert not load.page_ok and not load.complete
    assert load.images_requested == 0


def test_browser_statistics():
    cluster, _ = make_site_cluster()
    browser = BrowserSession(cluster)
    procs = [browser.open("/site/page0000.html"),
             browser.open("/site/page0002.html")]
    for p in procs:
        cluster.run(until=p)
    assert browser.complete_fraction() == 1.0
    assert browser.mean_page_load_time() > 0


def test_browser_validation():
    cluster, _ = make_site_cluster()
    with pytest.raises(ValueError):
        BrowserSession(cluster, max_parallel_images=0)
