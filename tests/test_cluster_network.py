"""Unit tests for interconnect models (repro.cluster.network)."""

import pytest

from repro.cluster import FatTreeNetwork, Internet, Link, SharedBusNetwork, WANPath
from repro.sim import FairShareServer, Simulator


# --------------------------------------------------------------------- Link
def test_link_latency_plus_service():
    sim = Simulator()
    link = Link(sim, bandwidth=10e6, latency=0.1)
    log = []

    def go():
        yield link.transfer(5e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(0.6)]


def test_link_shares_bandwidth():
    sim = Simulator()
    link = Link(sim, bandwidth=10e6, latency=0.0)
    log = []

    def go(tag):
        yield link.transfer(10e6)
        log.append((tag, sim.now))

    sim.spawn(go(1))
    sim.spawn(go(2))
    sim.run()
    assert [t for _, t in log] == [pytest.approx(2.0), pytest.approx(2.0)]
    assert link.bytes_sent == pytest.approx(20e6)


# ------------------------------------------------------------------ FatTree
def test_fattree_disjoint_transfers_do_not_contend():
    sim = Simulator()
    net = FatTreeNetwork(sim, nodes=4, bandwidth=10e6, latency=0.0)
    log = []

    def go(src, dst):
        yield net.transfer(src, dst, 10e6)
        log.append(sim.now)

    sim.spawn(go(0, 1))
    sim.spawn(go(2, 3))
    sim.run()
    # Different port pairs: both complete in 1s (non-blocking fabric).
    assert log == [pytest.approx(1.0), pytest.approx(1.0)]


def test_fattree_same_destination_contends():
    sim = Simulator()
    net = FatTreeNetwork(sim, nodes=4, bandwidth=10e6, latency=0.0)
    log = []

    def go(src):
        yield net.transfer(src, 3, 10e6)
        log.append(sim.now)

    sim.spawn(go(0))
    sim.spawn(go(1))
    sim.run()
    # Destination port 3 is shared: both take ~2 s.
    assert log == [pytest.approx(2.0), pytest.approx(2.0)]


def test_fattree_loopback_is_free():
    sim = Simulator()
    net = FatTreeNetwork(sim, nodes=2, bandwidth=1.0, latency=5.0)
    ev = net.transfer(1, 1, 1e9)
    assert ev.triggered
    assert net.bytes_sent == 0.0


def test_fattree_node_load_and_effective_bandwidth():
    sim = Simulator()
    net = FatTreeNetwork(sim, nodes=3, bandwidth=10e6, latency=0.0)
    net.transfer(0, 1, 10e6)
    sim.run(until=0.001)
    assert net.node_load(0) == 1
    assert net.node_load(1) == 1
    assert net.node_load(2) == 0
    assert net.effective_bandwidth(2) == pytest.approx(10e6)


def test_fattree_rejects_bad_endpoints():
    sim = Simulator()
    net = FatTreeNetwork(sim, nodes=2, bandwidth=1.0)
    with pytest.raises(ValueError):
        net.transfer(0, 5, 1.0)


# ---------------------------------------------------------------------- Bus
def test_bus_all_transfers_contend():
    sim = Simulator()
    net = SharedBusNetwork(sim, bandwidth=10e6, latency=0.0)
    log = []

    def go(src, dst):
        yield net.transfer(src, dst, 10e6)
        log.append(sim.now)

    # Disjoint node pairs STILL share the medium (unlike the fat-tree).
    sim.spawn(go(0, 1))
    sim.spawn(go(2, 3))
    sim.run()
    assert log == [pytest.approx(2.0), pytest.approx(2.0)]


def test_bus_background_load_shrinks_bandwidth():
    sim = Simulator()
    net = SharedBusNetwork(sim, bandwidth=10e6, latency=0.0, background_load=0.5)
    assert net.bandwidth == pytest.approx(5e6)
    log = []

    def go():
        yield net.transfer(0, 1, 5e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(1.0)]


def test_bus_node_load_is_global():
    sim = Simulator()
    net = SharedBusNetwork(sim, bandwidth=10e6, latency=0.0)
    net.transfer(0, 1, 10e6)
    sim.run(until=0.001)
    assert net.node_load(0) == net.node_load(3) == 1


def test_bus_rejects_bad_background_load():
    sim = Simulator()
    with pytest.raises(ValueError):
        SharedBusNetwork(sim, bandwidth=1.0, background_load=1.0)


# ----------------------------------------------------------------- Internet
def test_internet_send_capped_by_client_path():
    sim = Simulator()
    internet = Internet(sim)
    nic = FairShareServer(sim, rate=100e6, name="nic")
    slow_path = WANPath(latency=0.0, bandwidth=1e6)
    log = []

    def go():
        yield internet.send(nic, slow_path, 2e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(2.0)]


def test_internet_slow_client_does_not_starve_fast_one():
    sim = Simulator()
    internet = Internet(sim)
    nic = FairShareServer(sim, rate=10e6, name="nic")
    slow = WANPath(latency=0.0, bandwidth=1e6)
    fast = WANPath(latency=0.0, bandwidth=100e6)
    log = {}

    def go(tag, path, size):
        yield internet.send(nic, path, size)
        log[tag] = sim.now

    sim.spawn(go("slow", slow, 1e6))
    sim.spawn(go("fast", fast, 9e6))
    sim.run()
    # Slow client capped at 1 MB/s; fast client gets the other 9 MB/s.
    assert log["slow"] == pytest.approx(1.0)
    assert log["fast"] == pytest.approx(1.0)


def test_internet_latency_applied():
    sim = Simulator()
    internet = Internet(sim)
    nic = FairShareServer(sim, rate=1e6, name="nic")
    path = WANPath(latency=0.04, bandwidth=1e6)  # east-coast client
    log = []

    def go():
        yield internet.send(nic, path, 1e6)
        log.append(sim.now)

    sim.spawn(go())
    sim.run()
    assert log == [pytest.approx(1.04)]


def test_wanpath_validation():
    with pytest.raises(ValueError):
        WANPath(latency=-1.0, bandwidth=1.0)
    with pytest.raises(ValueError):
        WANPath(latency=0.0, bandwidth=0.0)
