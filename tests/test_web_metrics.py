"""Tests for the metrics layer (repro.web.metrics)."""

import math

import pytest

from repro.web.metrics import Metrics, PHASE_NAMES, RequestRecord


def test_phase_names_match_table5_rows():
    assert PHASE_NAMES == ("preprocessing", "analysis", "redirection",
                           "data_transfer", "network")


def test_record_lifecycle_finish():
    metrics = Metrics()
    rec = metrics.new_record("/a", start=1.0, client="ucsb", size=10.0)
    assert rec.req_id == 0
    metrics.finish(rec, end=3.5, status=200)
    assert rec.ok and rec.response_time == pytest.approx(2.5)
    assert metrics.completed == 1
    assert metrics.counters["status_200"] == 1


def test_record_lifecycle_drop():
    metrics = Metrics()
    rec = metrics.new_record("/a", start=0.0)
    metrics.drop(rec, end=5.0, reason="timeout")
    assert rec.dropped and rec.drop_reason == "timeout"
    assert metrics.dropped == 1
    assert metrics.counters["dropped_timeout"] == 1
    assert metrics.drop_rate == 1.0


def test_non_200_is_not_completed():
    metrics = Metrics()
    rec = metrics.new_record("/a", start=0.0)
    metrics.finish(rec, end=1.0, status=404)
    assert not rec.ok
    assert metrics.completed == 0
    assert metrics.counters["status_404"] == 1


def test_redirected_counter():
    metrics = Metrics()
    rec = metrics.new_record("/a", start=0.0)
    rec.redirected = True
    metrics.finish(rec, end=1.0, status=200)
    assert metrics.counters["redirected"] == 1


def test_response_times_filtering():
    metrics = Metrics()
    ok = metrics.new_record("/a", start=0.0)
    metrics.finish(ok, end=2.0, status=200)
    bad = metrics.new_record("/b", start=0.0)
    metrics.finish(bad, end=9.0, status=404)
    dropped = metrics.new_record("/c", start=0.0)
    metrics.drop(dropped, end=1.0, reason="refused")
    only_ok = metrics.response_times(only_ok=True)
    assert only_ok.count == 1 and only_ok.mean == pytest.approx(2.0)
    with_errors = metrics.response_times(only_ok=False)
    assert with_errors.count == 2


def test_throughput_and_validation():
    metrics = Metrics()
    for _ in range(6):
        rec = metrics.new_record("/a", start=0.0)
        metrics.finish(rec, end=1.0, status=200)
    assert metrics.throughput(3.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        metrics.throughput(0.0)


def test_phase_breakdown_aggregates():
    metrics = Metrics()
    for duration in (1.0, 3.0):
        rec = metrics.new_record("/a", start=0.0)
        rec.add_phase("data_transfer", duration)
        metrics.finish(rec, end=duration, status=200)
    acc = metrics.phase_breakdown()
    assert acc.mean("data_transfer") == pytest.approx(2.0)
    assert acc.count("data_transfer") == 2


def test_served_by_histogram_counts_only_ok():
    metrics = Metrics()
    a = metrics.new_record("/a", start=0.0)
    a.served_by = 2
    metrics.finish(a, end=1.0, status=200)
    b = metrics.new_record("/b", start=0.0)
    b.served_by = 2
    metrics.finish(b, end=1.0, status=404)
    assert metrics.served_by_histogram() == {2: 1}


def test_record_phase_validation():
    rec = RequestRecord(req_id=0, path="/a", start=0.0)
    with pytest.raises(ValueError):
        rec.add_phase("x", -1.0)
    rec.add_phase("x", 1.0)
    rec.add_phase("x", 0.5)
    assert rec.phases["x"] == pytest.approx(1.5)


def test_pending_record_response_time_none():
    rec = RequestRecord(req_id=0, path="/a", start=0.0)
    assert rec.response_time is None


def test_empty_metrics_summaries():
    metrics = Metrics()
    assert metrics.drop_rate == 0.0
    assert math.isnan(metrics.mean_response_time())
    assert metrics.response_summary().count == 0
