"""The substream-name registry: collision-free, consistent, and exactly
what the static audit sees.

``RandomStreams`` seeds each substream from ``crc32(name)``; the
registry in ``sim/streamnames.py`` is the auditable namespace.  These
tests pin the registry's invariants directly (the deep lint gate pins
the used ↔ registered bijection on top).
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import STREAM_NAMES, crc32_key, stream_collisions
from repro.sim.rng import RandomStreams
from repro.sim.streamnames import registered_names


def test_registry_is_crc32_collision_free():
    assert stream_collisions() == ()


def test_registry_keys_are_plain_nonempty_names():
    for name, purpose in STREAM_NAMES.items():
        assert name == name.strip() and name
        assert purpose.strip(), f"{name!r} has no documented purpose"


def test_registered_names_sorted_and_complete():
    names = registered_names()
    assert list(names) == sorted(STREAM_NAMES)
    assert len(names) == len(set(names))


def test_crc32_key_matches_randomstreams_derivation():
    # the registry's key function must be the exact seed derivation the
    # kernel uses, or the collision proof proves the wrong thing
    for name in registered_names():
        assert crc32_key(name) == zlib.crc32(name.encode("utf-8"))


def test_adversary_and_fuzz_streams_are_registered():
    # the fuzz layer (generator draws), the adversarial actors and the
    # geo tier each own audited substreams; pin their presence so a
    # rename cannot silently decouple the code from the registry
    expected = {"adv-hotspot", "adv-cachebust", "adv-slowdrip",
                "adv-dnsskew", "fuzz-shape", "fuzz-workload",
                "fuzz-faults", "fuzz-knobs", "fuzz-geo", "geo-affinity"}
    assert expected <= set(STREAM_NAMES)


def test_distinct_registered_names_yield_distinct_streams():
    rng = RandomStreams(seed=7)
    draws = {name: rng.stream(name).random() for name in registered_names()}
    assert len(set(draws.values())) == len(draws)


# -- hypothesis: stream_collisions() is a sound collision oracle ----------

_names = st.text(
    st.characters(min_codepoint=33, max_codepoint=126), min_size=1,
    max_size=12)


@given(st.lists(_names, min_size=0, max_size=30))
@settings(max_examples=200, deadline=None)
def test_collision_oracle_round_trips(names):
    pool = tuple(set(names) | set(STREAM_NAMES))
    reported = stream_collisions(pool)
    keys = [crc32_key(n) for n in pool]
    # sound and complete: pairs are reported iff distinct names share a key
    assert (len(reported) > 0) == (len(set(keys)) < len(keys))
    for a, b in reported:
        assert a != b and crc32_key(a) == crc32_key(b)
        assert a in pool and b in pool


@given(_names, _names)
@settings(max_examples=200, deadline=None)
def test_two_name_pools_collide_iff_keys_match(a, b):
    reported = stream_collisions((a, b))
    if a == b:
        assert reported == ()
    elif crc32_key(a) == crc32_key(b):
        assert reported == (tuple(sorted((a, b))),)
    else:
        assert reported == ()
