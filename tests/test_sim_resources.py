"""Unit tests for repro.sim.resources (Resource, Store, Container)."""

import pytest

from repro.sim import Resource, Simulator, Store, Container


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.available == 0


def test_resource_fifo_queueing():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            order.append(("got", tag, sim.now))
            yield sim.timeout(hold)

    sim.spawn(user("a", 2.0))
    sim.spawn(user("b", 1.0))
    sim.spawn(user("c", 1.0))
    sim.run()
    assert order == [("got", "a", 0.0), ("got", "b", 2.0), ("got", "c", 3.0)]


def test_resource_release_grants_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r3 = res.request()
    r2.cancel()
    res.release(r1)
    assert r3.triggered and not r2.triggered


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_double_release_is_error():
    from repro.sim import SimulationError
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r = res.request()
    res.release(r)
    with pytest.raises(SimulationError):
        res.release(r)


# ------------------------------------------------------------------- Store
def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((sim.now, item))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert [item for _, item in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(5.0)
        yield store.put("x")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(5.0, "x")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(3.0)
        item = yield store.get()
        events.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 3.0) in events


def test_store_try_put_respects_capacity():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert len(store) == 2


def test_store_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


# --------------------------------------------------------------- Container
def test_container_levels():
    sim = Simulator()
    box = Container(sim, capacity=10.0, init=5.0)
    box.put(3.0)
    assert box.level == pytest.approx(8.0)
    box.get(6.0)
    assert box.level == pytest.approx(2.0)


def test_container_get_blocks_until_available():
    sim = Simulator()
    box = Container(sim, capacity=10.0)
    log = []

    def taker():
        yield box.get(4.0)
        log.append(sim.now)

    def filler():
        yield sim.timeout(2.0)
        yield box.put(4.0)

    sim.spawn(taker())
    sim.spawn(filler())
    sim.run()
    assert log == [2.0]


def test_container_put_blocks_when_full():
    sim = Simulator()
    box = Container(sim, capacity=5.0, init=5.0)
    log = []

    def putter():
        yield box.put(2.0)
        log.append(sim.now)

    def drainer():
        yield sim.timeout(3.0)
        yield box.get(2.0)

    sim.spawn(putter())
    sim.spawn(drainer())
    sim.run()
    assert log == [3.0]


def test_container_rejects_bad_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=1.0, init=2.0)
    box = Container(sim, capacity=1.0)
    with pytest.raises(ValueError):
        box.put(-1.0)
    with pytest.raises(ValueError):
        box.get(-1.0)
