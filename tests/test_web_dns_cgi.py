"""Unit tests for DNS rotation and the CGI registry."""

import pytest

from repro.sim import Simulator
from repro.web import CGIProgram, CGIRegistry, RoundRobinDNS


# ---------------------------------------------------------------------- DNS
def test_round_robin_rotation():
    dns = RoundRobinDNS(Simulator(), [0, 1, 2])
    assert [dns.resolve() for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_register_deregister():
    dns = RoundRobinDNS(Simulator(), [0, 1])
    dns.register(2)
    assert 2 in dns.addresses
    dns.register(2)  # idempotent
    assert dns.addresses.count(2) == 1
    dns.deregister(0)
    assert set(dns.resolve() for _ in range(4)) == {1, 2}
    dns.deregister(0)  # idempotent


def test_empty_zone_raises():
    dns = RoundRobinDNS(Simulator(), [0])
    dns.deregister(0)
    with pytest.raises(LookupError):
        dns.resolve()


def test_ttl_caching_pins_a_domain():
    sim = Simulator()
    dns = RoundRobinDNS(sim, [0, 1, 2], ttl=10.0)
    first = dns.resolve("rutgers.edu")
    # All queries from the same domain within the TTL hit the cache.
    assert all(dns.resolve("rutgers.edu") == first for _ in range(5))
    assert dns.cache_hits == 5
    # A different domain gets the next rotation slot.
    other = dns.resolve("mit.edu")
    assert other != first


def test_ttl_expiry_rotates_again():
    sim = Simulator()
    dns = RoundRobinDNS(sim, [0, 1], ttl=5.0)
    first = dns.resolve("d")

    def advance():
        yield sim.timeout(6.0)

    sim.spawn(advance())
    sim.run()
    second = dns.resolve("d")
    assert second != first


def test_no_ttl_means_pure_rotation_per_query():
    dns = RoundRobinDNS(Simulator(), [0, 1], ttl=0.0)
    assert dns.resolve("d") != dns.resolve("d")
    assert dns.cache_hit_rate == 0.0


def test_dns_validation():
    with pytest.raises(ValueError):
        RoundRobinDNS(Simulator(), [])
    with pytest.raises(ValueError):
        RoundRobinDNS(Simulator(), [0], ttl=-1.0)


# ---------------------------------------------------------------------- CGI
def test_cgi_prefix_detection():
    reg = CGIRegistry()
    assert reg.is_cgi("/cgi-bin/query")
    assert not reg.is_cgi("/docs/query.html")


def test_cgi_register_and_lookup():
    reg = CGIRegistry()
    reg.add("/cgi-bin/spatial", cpu_ops=5e6, output_bytes=1e4)
    prog = reg.lookup("/cgi-bin/spatial")
    assert prog.cpu_ops == 5e6
    assert "/cgi-bin/spatial" in reg
    assert len(reg) == 1


def test_cgi_unregistered_gets_default_profile():
    reg = CGIRegistry(default_ops=123.0, default_output=456.0)
    prog = reg.lookup("/cgi-bin/unknown")
    assert prog.cpu_ops == 123.0
    assert prog.output_bytes == 456.0


def test_cgi_lookup_non_cgi_raises():
    reg = CGIRegistry()
    with pytest.raises(KeyError):
        reg.lookup("/docs/a.html")


def test_cgi_register_outside_prefix_rejected():
    reg = CGIRegistry()
    with pytest.raises(ValueError):
        reg.register(CGIProgram(path="/docs/a", cpu_ops=1.0, output_bytes=1.0))


def test_cgi_program_validation():
    with pytest.raises(ValueError):
        CGIProgram(path="/cgi-bin/x", cpu_ops=-1.0, output_bytes=1.0)
    with pytest.raises(ValueError):
        CGIProgram(path="/cgi-bin/x", cpu_ops=1.0, output_bytes=-1.0)
